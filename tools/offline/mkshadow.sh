#!/usr/bin/env bash
# Assemble a buildable shadow of this workspace for network-less
# environments (no crates.io / registry mirror reachable).
#
#   tools/offline/mkshadow.sh [dest]     # default dest: /tmp/tagwatch-shadow
#
# The shadow replaces the three external runtime dependencies (rand,
# serde, serde_json) with the functional stubs in tools/offline/stubs/,
# and drops the dev-only proptest/criterion surface (property tests and
# criterion benches are driver/CI-only). Everything else — every crate,
# unit test, integration test, binary — builds and runs offline.
#
# `cargo test` in the shadow is NOT the tier-1 gate (that runs with the
# real dependencies); it is a high-fidelity local approximation. The rand
# stub reproduces rand 0.8.5's StdRng stream bit-for-bit (see its
# value-stability self-test), so seeded workloads — including the
# BENCH_*.json reference numbers — match the real build.
set -euo pipefail

repo="$(cd "$(dirname "$0")/../.." && pwd)"
dest="${1:-/tmp/tagwatch-shadow}"

# Refresh the shadow but keep its target/ so rebuilds stay incremental.
mkdir -p "$dest"
find "$dest" -mindepth 1 -maxdepth 1 ! -name target -exec rm -rf {} +
tar -C "$repo" \
    --exclude=./.git \
    --exclude=./target \
    --exclude=./tools/offline \
    --exclude=./Cargo.lock \
    -cf - . | tar -C "$dest" -xf -

# The stubs become workspace members under stubs/.
mkdir -p "$dest/stubs"
tar -C "$repo/tools/offline/stubs" -cf - . | tar -C "$dest/stubs" -xf -

python3 - "$dest" <<'PY'
import glob
import os
import re
import sys

dest = sys.argv[1]


def rewrite(path, fn):
    with open(path) as fh:
        text = fh.read()
    new = fn(text)
    if new != text:
        with open(path, "w") as fh:
            fh.write(new)


def patch_root(text):
    text = text.replace(
        'members = ["crates/*"]', 'members = ["crates/*", "stubs/*"]'
    )
    text = re.sub(
        r'^rand = .*$',
        'rand = { path = "stubs/rand" }',
        text,
        flags=re.M,
    )
    text = re.sub(
        r'^serde = .*$',
        'serde = { path = "stubs/serde", features = ["derive"] }',
        text,
        flags=re.M,
    )
    text = re.sub(
        r'^serde_json = .*$',
        'serde_json = { path = "stubs/serde_json", features = ["float_roundtrip"] }',
        text,
        flags=re.M,
    )
    text = re.sub(r'^(proptest|criterion) = .*\n', "", text, flags=re.M)
    text = re.sub(r'^(proptest|criterion)\.workspace = true\n', "", text, flags=re.M)
    # Drop the tools/offline workspace exclude (the dir is not copied).
    text = re.sub(r'^exclude = \["tools/offline.*\n', "", text, flags=re.M)
    return text


def patch_member(text):
    text = re.sub(r'^(proptest|criterion)\.workspace = true\n', "", text, flags=re.M)
    # Drop [[bench]] sections (criterion harnesses).
    text = re.sub(r'\n\[\[bench\]\]\n(?:[^\[]*?)(?=\n\[|\Z)', "", text, flags=re.S)
    return text


rewrite(os.path.join(dest, "Cargo.toml"), patch_root)
for manifest in glob.glob(os.path.join(dest, "crates", "*", "Cargo.toml")):
    rewrite(manifest, patch_member)

# proptest-only test files and criterion benches can't build offline.
for path in glob.glob(os.path.join(dest, "tests", "prop_*")):
    os.remove(path)
for path in glob.glob(os.path.join(dest, "crates", "bench", "benches", "*.rs")):
    os.remove(path)

print(f"shadow workspace ready at {dest}")
PY
