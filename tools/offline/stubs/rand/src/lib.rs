//! Offline stand-in for the `rand 0.8` surface this workspace uses.
//!
//! Unlike a typecheck-only shim, this is a *functional* reimplementation:
//! `StdRng` is ChaCha12 seeded through the PCG32-based `seed_from_u64`
//! expansion, and `gen`/`gen_range`/`gen_bool` follow the same algorithms
//! rand 0.8.5 uses (53-bit float construction, widening-multiply integer
//! rejection sampling, Bernoulli by 64-bit integer threshold). The intent
//! is that a seeded run produces the *same stream* as the real crate, so
//! bench baselines recorded offline stay valid when the real dependency
//! is available. A value-stability self-test below pins the known
//! `StdRng` vector from rand's own test suite.
//!
//! Only what the workspace calls is implemented. Never published; wired
//! in by `tools/offline/mkshadow.sh` via a path override.

#![forbid(unsafe_code)]

#![allow(clippy::all)]

// ---------------------------------------------------------------------------
// Core traits.
// ---------------------------------------------------------------------------

/// Minimal `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Minimal `rand::Rng`, blanket-implemented exactly like the real crate.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        T: StandardSample,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli(p). Matches rand 0.8: `p == 1.0` consumes no randomness;
    /// every other probability consumes one `u64`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p={p} outside [0, 1]"
        );
        if p == 1.0 {
            return true;
        }
        // SCALE = 2^64 as f64; p_int = floor(p * 2^64).
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rand::SeedableRng` with the rand_core 0.6 `seed_from_u64`
/// default: a PCG32 stream expands the `u64` into the full seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

// ---------------------------------------------------------------------------
// The `Standard` distribution (`rng.gen()`).
// ---------------------------------------------------------------------------

/// Types `rng.gen()` can produce, with rand 0.8's `Standard` algorithms.
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_from_u32 {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $ty
            }
        }
    )*};
}
standard_from_u32!(u8, u16, u32, i8, i16, i32);

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Low half first, matching rand.
        let x = u128::from(rng.next_u64());
        let y = u128::from(rng.next_u64());
        (y << 64) | x
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand: sign bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit multiply: uniform on [0, 1) with 2^-53 resolution.
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

// ---------------------------------------------------------------------------
// `gen_range` (`UniformSampler::sample_single`).
// ---------------------------------------------------------------------------

/// Types usable with `gen_range`.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
        -> Self;
}

/// Range shapes `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $widen:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let range =
                    (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_add(1) as $u_large;
                if range == 0 {
                    // Full integer domain.
                    return <$u_large as StandardSample>::sample_standard(rng) as $ty;
                }
                // rand 0.8's "conservative but fast approximation" zone.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = <$u_large as StandardSample>::sample_standard(rng);
                    let m = (v as $widen) * (range as $widen);
                    let lo = m as $u_large;
                    let hi = (m >> <$u_large>::BITS) as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}
uniform_int_impl!(u32, u32, u32, u64);
uniform_int_impl!(i32, u32, u32, u64);
uniform_int_impl!(u64, u64, u64, u128);
uniform_int_impl!(i64, u64, u64, u128);
uniform_int_impl!(usize, usize, u64, u128);

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_bits:expr, $exp_bias:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let scale = high - low;
                loop {
                    // Value in [1, 2), then shift to [0, 1).
                    let bits = <$uty as StandardSample>::sample_standard(rng);
                    let value1_2 = <$ty>::from_bits(
                        (bits >> $bits_to_discard) | (($exp_bias as $uty) << $exp_bits),
                    );
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                // Floats: inclusive upper bound degenerates to the same
                // construction (measure-zero boundary).
                assert!(low <= high, "gen_range: low > high");
                if low == high {
                    return low;
                }
                Self::sample_single(low, high, rng)
            }
        }
    };
}
uniform_float_impl!(f64, u64, 12, 52, 1023u64);
uniform_float_impl!(f32, u32, 9, 23, 127u32);

// ---------------------------------------------------------------------------
// ChaCha12 core (rand 0.8's StdRng).
// ---------------------------------------------------------------------------

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (12 for StdRng).
fn chacha_block(input: &[u32; 16], rounds: u32) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input.iter()) {
        *o = o.wrapping_add(*i);
    }
    x
}

pub mod rngs {
    use super::*;

    /// ChaCha12 with rand_chacha's state layout: 64-bit block counter in
    /// words 12–13, 64-bit stream id (always 0 here) in words 14–15, and a
    /// 4-block (64-word) output buffer consumed through rand_core's
    /// `BlockRng` word/pair indexing, which this reproduces exactly.
    #[derive(Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; 64],
        index: usize,
    }

    impl std::fmt::Debug for StdRng {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("StdRng").finish_non_exhaustive()
        }
    }

    impl StdRng {
        fn generate(&mut self) {
            for block in 0..4u64 {
                let ctr = self.counter.wrapping_add(block);
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CHACHA_CONSTANTS);
                state[4..12].copy_from_slice(&self.key);
                state[12] = ctr as u32;
                state[13] = (ctr >> 32) as u32;
                // words 14-15: stream id, fixed 0.
                let out = chacha_block(&state, 12);
                self.buf[block as usize * 16..block as usize * 16 + 16].copy_from_slice(&out);
            }
            self.counter = self.counter.wrapping_add(4);
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *k = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; 64],
                index: 64,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 64 {
                self.generate();
                self.index = 0;
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        fn next_u64(&mut self) -> u64 {
            // rand_core BlockRng::next_u64 indexing, len = 64.
            let read = |buf: &[u32; 64], i: usize| -> u64 {
                u64::from(buf[i + 1]) << 32 | u64::from(buf[i])
            };
            if self.index < 63 {
                let v = read(&self.buf, self.index);
                self.index += 2;
                v
            } else if self.index >= 64 {
                self.generate();
                self.index = 2;
                read(&self.buf, 0)
            } else {
                // index == 63: straddle the refill.
                let lo = u64::from(self.buf[63]);
                self.generate();
                self.index = 1;
                let hi = u64::from(self.buf[0]);
                (hi << 32) | lo
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(4);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u32().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u32().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// rand's deterministic mock: yields `initial`, then keeps adding
        /// `increment` (wrapping).
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    step: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                let mut chunks = dest.chunks_exact_mut(8);
                for chunk in &mut chunks {
                    chunk.copy_from_slice(&self.next_u64().to_le_bytes());
                }
                let rem = chunks.into_remainder();
                if !rem.is_empty() {
                    let bytes = self.next_u64().to_le_bytes();
                    rem.copy_from_slice(&bytes[..rem.len()]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn rfc7539_quarter_round_vector() {
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    #[test]
    fn stdrng_value_stability_vector() {
        // rand 0.8's own StdRng stability test vector
        // (rand/src/rngs/std.rs::test_stdrng_construction).
        let seed: [u8; 32] = [
            1, 0, 0, 0, 23, 0, 0, 0, 200, 1, 0, 0, 210, 30, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
            0, 0, 0, 0, 0, 0,
        ];
        let mut rng = StdRng::from_seed(seed);
        assert_eq!(rng.next_u64(), 10719222850664546238);
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_nontrivial() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xa = a.next_u64();
        assert_eq!(xa, b.next_u64());
        assert_ne!(xa, c.next_u64());
    }

    #[test]
    fn float_standard_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_respects_bounds_and_uniformity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            let v: u32 = rng.gen_range(0..8u32);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let mut heads = 0;
        for _ in 0..1000 {
            if rng.gen_bool(0.25) {
                heads += 1;
            }
        }
        assert!((150..350).contains(&heads), "p=0.25 gave {heads}/1000");
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = rngs::mock::StepRng::new(0, 0);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 0);
        let mut rng = rngs::mock::StepRng::new(5, 3);
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 8);
    }
}
