//! Offline stand-in for the `serde_json 1` surface this workspace uses:
//! `to_string`, `to_string_pretty`, `to_writer`, `from_str`,
//! `from_reader`, `Error`, and `Value`. Functional — a real recursive
//! descent parser and a compact/pretty printer over the mini-serde
//! [`Value`] model, with serde_json-compatible string escaping and float
//! formatting (Rust's shortest-round-trip `{:?}`).
//!
//! Never published; wired in by `tools/offline/mkshadow.sh`.

#![forbid(unsafe_code)]

#![allow(clippy::all)]
use serde::de::DeserializeOwned;
use serde::{DeError, Serialize};

pub use serde::value::{Number, Value};

/// Error type covering both serialization and deserialization failures.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message())
    }
}

// ---------------------------------------------------------------------------
// Printing.
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: &Number) -> Result<String, Error> {
    match n {
        Number::PosInt(v) => Ok(v.to_string()),
        Number::NegInt(v) => Ok(v.to_string()),
        Number::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{:?}` is Rust's shortest round-trip formatting with a
            // trailing `.0` for integral values — same shape ryu emits.
            Ok(format!("{f:?}"))
        }
    }
}

fn write_compact(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(n)?),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out)?;
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) -> Result<(), Error> {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out)?,
    }
    Ok(())
}

/// Compact JSON encoding.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Two-space-indented JSON encoding (serde_json's pretty layout).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out)?;
    Ok(out)
}

/// Compact encoding straight into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(chunk, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u128>() {
                    let signed =
                        i128::try_from(v).map_err(|_| self.err("integer overflow"))?;
                    return Ok(Value::Number(Number::NegInt(-signed)));
                }
            } else if let Ok(v) = text.parse::<u128>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !f.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Value::Number(Number::Float(f)))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a complete JSON document (trailing garbage is an error).
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parse + deserialize.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::deserialize_value(&v)?)
}

/// Read everything, then parse + deserialize.
pub fn from_reader<R: std::io::Read, T: DeserializeOwned>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::new(format!("read failed: {e}")))?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "123456789012345678901234567890",
            "0.5",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
            "\"he\\\"llo\\n\\u00e9\"",
        ] {
            let v = parse_value(text).unwrap();
            let back = parse_value(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
    }

    #[test]
    fn float_formatting_matches_serde_json_shapes() {
        assert_eq!(to_string(&0.0f64).unwrap(), "0.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3u64).unwrap(), "3");
    }

    #[test]
    fn escapes_control_and_quote_chars() {
        let s = "a\"b\\c\nd\u{1}e";
        let enc = to_string(&s).unwrap();
        assert_eq!(enc, "\"a\\\"b\\\\c\\nd\\u0001e\"");
        let back: String = from_str(&enc).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v = parse_value("{\"a\":1,\"b\":{}}").unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": {}\n}");
    }

    #[test]
    fn u128_integers_survive() {
        let big = (0xFEED_u128 << 112) | 1;
        let text = to_string(&big).unwrap();
        let back: u128 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }
}
