//! The JSON-shaped data model shared by the `serde` and `serde_json`
//! stubs. Objects preserve insertion order (struct field declaration
//! order), matching how real serde_json streams struct fields.

/// A JSON number wide enough for the workspace's `u128` EPC fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u128),
    NegInt(i128),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(n) => *n as f64,
            Number::NegInt(n) => *n as f64,
            Number::Float(f) => *f,
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Key/value pairs in insertion order; duplicate keys keep the last
    /// occurrence on lookup (matching serde_json's insert semantics).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (last occurrence wins, like serde_json's map
    /// insert). Returns `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Field lookup on a raw pair slice — used by derive-generated code.
pub fn get_key<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
}
