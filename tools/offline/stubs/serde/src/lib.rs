//! Offline stand-in for the `serde 1` surface this workspace uses.
//!
//! A *functional* mini-serde: instead of the visitor machinery, the model
//! is a single JSON-shaped [`Value`] tree. `Serialize` renders into it,
//! `Deserialize` reads back out of it, and the derive macros (from the
//! sibling `serde_derive` stub) generate those impls for the attribute
//! subset the workspace uses: `rename`, `rename_all = "snake_case"`,
//! `tag = "..."` (internal tagging), `default`, and `default = "path"`.
//!
//! Never published; wired in by `tools/offline/mkshadow.sh`.

#![forbid(unsafe_code)]

#![allow(clippy::all)]
pub use serde_derive_stub::{Deserialize, Serialize};

pub mod value;
pub use value::{Number, Value};

/// Deserialization error: a message, optionally wrapped by `serde_json`.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Mini-serde `Serialize`: render self as a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Mini-serde `Deserialize`: rebuild self from a [`Value`]. The `'de`
/// lifetime is vestigial (kept so `derive` output and `DeserializeOwned`
/// bounds read like real serde).
pub trait Deserialize<'de>: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

pub mod de {
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u128))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! ser_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u128))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys: serde_json stringifies integer (and integer-newtype) keys.
fn key_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(Number::PosInt(n)) => n.to_string(),
        Value::Number(Number::NegInt(n)) => n.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

fn key_value(s: &str) -> Value {
    if let Ok(n) = s.parse::<u128>() {
        Value::Number(Number::PosInt(n))
    } else if let Ok(n) = s.parse::<i128>() {
        Value::Number(Number::NegInt(n))
    } else {
        Value::String(s.to_string())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        // HashMap iteration order is arbitrary; sort for deterministic
        // output (callers cannot rely on real serde_json's order either).
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Already ordered by K; stringified keys preserve that order for
        // every key shape the workspace uses (integers, strings).
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! de_uint {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$ty>::try_from(*n)
                        .map_err(|_| DeError::custom(format!(
                            "integer {n} out of range for {}", stringify!($ty)))),
                    other => Err(DeError::custom(format!(
                        "expected unsigned integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! de_int {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Number(Number::PosInt(n)) => i128::try_from(*n)
                        .map_err(|_| DeError::custom("integer overflow"))?,
                    Value::Number(Number::NegInt(n)) => *n,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}", other.kind())))
                    }
                };
                <$ty>::try_from(wide).map_err(|_| DeError::custom(format!(
                    "integer {wide} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, i128, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T> Deserialize<'de> for Option<T>
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<'de, T> Deserialize<'de> for Vec<T>
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T, const N: usize> Deserialize<'de> for [T; N]
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::deserialize_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

impl<'de, A, B> Deserialize<'de> for (A, B)
where
    A: for<'a> Deserialize<'a>,
    B: for<'a> Deserialize<'a>,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
            )),
            _ => Err(DeError::custom("expected 2-element array")),
        }
    }
}

impl<'de, A, B, C> Deserialize<'de> for (A, B, C)
where
    A: for<'a> Deserialize<'a>,
    B: for<'a> Deserialize<'a>,
    C: for<'a> Deserialize<'a>,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
                C::deserialize_value(&items[2])?,
            )),
            _ => Err(DeError::custom("expected 3-element array")),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: for<'a> Deserialize<'a> + Ord,
    V: for<'a> Deserialize<'a>,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| {
                    // JSON object keys are strings. Try the key as a
                    // string first (K = String, including numeric-looking
                    // keys), then fall back to its numeric reading
                    // (integer and integer-newtype keys).
                    let key = K::deserialize_value(&Value::String(k.clone()))
                        .or_else(|_| K::deserialize_value(&key_value(k)))?;
                    Ok((key, V::deserialize_value(v)?))
                })
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T> Deserialize<'de> for std::collections::VecDeque<T>
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::deserialize_value(v)?.into())
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V>
where
    K: for<'a> Deserialize<'a> + std::hash::Hash + Eq,
    V: for<'a> Deserialize<'a>,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| {
                    Ok((
                        K::deserialize_value(&key_value(k))?,
                        V::deserialize_value(v)?,
                    ))
                })
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
