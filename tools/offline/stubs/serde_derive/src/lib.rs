//! Derive macros for the offline mini-serde stub.
//!
//! Hand-rolled over raw `proc_macro` token trees (no syn/quote in this
//! network-less environment). Supports exactly the shapes and attributes
//! the workspace uses:
//!
//! - named-field structs, newtype structs, tuple structs
//! - enums with unit / newtype / struct variants
//! - `#[serde(rename = "...")]` on fields
//! - `#[serde(rename_all = "snake_case")]` on containers
//! - `#[serde(tag = "...")]` internally tagged enums
//! - `#[serde(default)]` / `#[serde(default = "path")]` on fields,
//!   `#[serde(default)]` on containers
//! - `#[serde(skip)]` on fields (omitted on serialize, defaulted on
//!   deserialize)
//!
//! Anything else panics at compile time so unsupported schema creep is
//! caught immediately.

#![forbid(unsafe_code)]

#![allow(clippy::all)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model.
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    rename: Option<String>,
    rename_all: Option<String>,
    tag: Option<String>,
    /// `Some(None)` = `#[serde(default)]`, `Some(Some(path))` = path fn.
    default: Option<Option<String>>,
    /// `#[serde(skip)]`: field is never serialized and deserializes to
    /// its `Default::default()`.
    skip: bool,
}

#[derive(Debug)]
struct FieldDef {
    ident: String,
    attrs: SerdeAttrs,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<FieldDef>),
}

#[derive(Debug)]
struct VariantDef {
    ident: String,
    attrs: SerdeAttrs,
    shape: VariantShape,
}

#[derive(Debug)]
enum ItemKind {
    NamedStruct(Vec<FieldDef>),
    TupleStruct(usize),
    Enum(Vec<VariantDef>),
}

#[derive(Debug)]
struct ItemDef {
    name: String,
    attrs: SerdeAttrs,
    kind: ItemKind,
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

fn parse_serde_attr_body(tokens: Vec<TokenTree>, out: &mut SerdeAttrs) {
    // Comma-separated `key` or `key = "literal"` entries.
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => panic!("serde stub: unexpected attr token `{other}`"),
        };
        i += 1;
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Literal(lit)) => {
                        let s = lit.to_string();
                        value = Some(s.trim_matches('"').to_string());
                        i += 1;
                    }
                    other => panic!("serde stub: expected string after `{key} =`, got {other:?}"),
                }
            }
        }
        match (key.as_str(), value) {
            ("rename", Some(v)) => out.rename = Some(v),
            ("rename_all", Some(v)) => {
                assert_eq!(
                    v, "snake_case",
                    "serde stub: only rename_all = \"snake_case\" is supported"
                );
                out.rename_all = Some(v);
            }
            ("tag", Some(v)) => out.tag = Some(v),
            ("default", v) => out.default = Some(v),
            ("skip", None) => out.skip = true,
            (k, _) => panic!("serde stub: unsupported serde attribute `{k}`"),
        }
    }
}

/// Consumes leading `#[...]` attributes from `tokens[*i]`, folding any
/// `#[serde(...)]` contents into the returned attrs.
fn parse_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let group = match &tokens[*i + 1] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => g,
                    other => panic!("serde stub: expected [...] after #, got {other:?}"),
                };
                let inner: Vec<TokenTree> = group.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        match inner.get(1) {
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                                parse_serde_attr_body(g.stream().into_iter().collect(), &mut attrs)
                            }
                            other => panic!("serde stub: malformed serde attr: {other:?}"),
                        }
                    }
                }
                *i += 2;
            }
            _ => break,
        }
    }
    attrs
}

/// Skips an optional `pub` / `pub(...)` visibility prefix.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skips tokens until a top-level comma (tracking `<`/`>` depth so commas
/// inside generics don't terminate early), consuming the comma.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            },
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<FieldDef> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let ident = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub: expected field name, got {other:?}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub: expected `:` after field `{ident}`, got {other:?}"),
        }
        skip_to_comma(&tokens, &mut i);
        fields.push(FieldDef { ident, attrs });
    }
    fields
}

/// Counts top-level comma-separated entries in a tuple body.
fn tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_to_comma(&tokens, &mut i);
        arity += 1;
    }
    arity
}

fn parse_variants(group: TokenStream) -> Vec<VariantDef> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let ident = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                assert_eq!(
                    arity, 1,
                    "serde stub: only newtype tuple variants are supported ({ident})"
                );
                i += 1;
                VariantShape::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        skip_to_comma(&tokens, &mut i);
        variants.push(VariantDef {
            ident,
            attrs,
            shape,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> ItemDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = parse_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub: generic types are not supported ({name})");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(tuple_arity(g.stream()))
            }
            other => panic!("serde stub: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub: unsupported enum body for {name}: {other:?}"),
        },
        kw => panic!("serde stub: cannot derive for `{kw}`"),
    };
    ItemDef { name, attrs, kind }
}

// ---------------------------------------------------------------------------
// Name mangling.
// ---------------------------------------------------------------------------

fn snake_case(ident: &str) -> String {
    let mut out = String::with_capacity(ident.len() + 4);
    for (k, ch) in ident.chars().enumerate() {
        if ch.is_uppercase() {
            if k > 0 {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn field_json_name(field: &FieldDef, container: &SerdeAttrs) -> String {
    if let Some(r) = &field.attrs.rename {
        return r.clone();
    }
    let ident = field.ident.strip_prefix("r#").unwrap_or(&field.ident);
    if container.rename_all.is_some() {
        snake_case(ident)
    } else {
        ident.to_string()
    }
}

fn variant_json_name(variant: &VariantDef, container: &SerdeAttrs) -> String {
    if let Some(r) = &variant.attrs.rename {
        return r.clone();
    }
    if container.rename_all.is_some() {
        snake_case(&variant.ident)
    } else {
        variant.ident.clone()
    }
}

fn quote_str(s: &str) -> String {
    format!("{s:?}")
}

// ---------------------------------------------------------------------------
// Serialize codegen.
// ---------------------------------------------------------------------------

fn gen_push_fields(fields: &[FieldDef], container: &SerdeAttrs, access_prefix: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let json = field_json_name(f, container);
        out.push_str(&format!(
            "__o.push(({}.to_string(), ::serde::Serialize::to_value(&{}{})));\n",
            quote_str(&json),
            access_prefix,
            f.ident
        ));
    }
    out
}

fn gen_serialize_impl(item: &ItemDef) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            format!(
                "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{}::serde::Value::Object(__o)",
                gen_push_fields(fields, &item.attrs, "self.")
            )
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let json = quote_str(&variant_json_name(v, &item.attrs));
                let arm = match (&v.shape, &item.attrs.tag) {
                    (VariantShape::Unit, None) => format!(
                        "{name}::{v} => ::serde::Value::String({json}.to_string()),\n",
                        v = v.ident
                    ),
                    (VariantShape::Unit, Some(tag)) => format!(
                        "{name}::{v} => ::serde::Value::Object(vec![({t}.to_string(), \
                         ::serde::Value::String({json}.to_string()))]),\n",
                        v = v.ident,
                        t = quote_str(tag)
                    ),
                    (VariantShape::Newtype, None) => format!(
                        "{name}::{v}(__x) => ::serde::Value::Object(vec![({json}.to_string(), \
                         ::serde::Serialize::to_value(__x))]),\n",
                        v = v.ident
                    ),
                    (VariantShape::Newtype, Some(tag)) => format!(
                        "{name}::{v}(__x) => match ::serde::Serialize::to_value(__x) {{\n\
                         ::serde::Value::Object(__pairs) => {{\n\
                         let mut __o = vec![({t}.to_string(), \
                         ::serde::Value::String({json}.to_string()))];\n\
                         __o.extend(__pairs);\n\
                         ::serde::Value::Object(__o)\n\
                         }}\n\
                         _ => panic!(\"internally tagged newtype variant must serialize to an \
                         object\"),\n\
                         }},\n",
                        v = v.ident,
                        t = quote_str(tag)
                    ),
                    (VariantShape::Struct(fields), tag) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.ident.as_str()).collect();
                        let pushes = gen_push_fields(fields, &item.attrs, "*");
                        match tag {
                            None => format!(
                                "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut __o: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = ::std::vec::Vec::new();\n{pushes}\
                                 ::serde::Value::Object(vec![({json}.to_string(), \
                                 ::serde::Value::Object(__o))])\n}},\n",
                                v = v.ident,
                                binds = binds.join(", ")
                            ),
                            Some(tag) => format!(
                                "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut __o: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = vec![({t}.to_string(), \
                                 ::serde::Value::String({json}.to_string()))];\n{pushes}\
                                 ::serde::Value::Object(__o)\n}},\n",
                                v = v.ident,
                                t = quote_str(tag),
                                binds = binds.join(", ")
                            ),
                        }
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen.
// ---------------------------------------------------------------------------

/// Expression rebuilding one named field from `__pairs`.
fn gen_field_expr(f: &FieldDef, container: &SerdeAttrs, use_container_default: bool) -> String {
    if f.attrs.skip {
        return format!(
            "{ident}: ::std::default::Default::default(),\n",
            ident = f.ident
        );
    }
    let json = quote_str(&field_json_name(f, container));
    let missing = if let Some(default) = &f.attrs.default {
        match default {
            Some(path) => format!("{path}()"),
            None => "::std::default::Default::default()".to_string(),
        }
    } else if use_container_default {
        format!("__d.{}", f.ident)
    } else {
        // Deserializing from Null lets `Option` fields fall back to None
        // (matching serde); everything else reports the missing field.
        format!(
            "::serde::Deserialize::deserialize_value(&::serde::Value::Null).map_err(|_| \
             ::serde::DeError::custom(::std::format!(\"missing field `{{}}`\", {json})))?"
        )
    };
    format!(
        "{ident}: match ::serde::value::get_key(__pairs, {json}) {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize_value(__x)?,\n\
         ::std::option::Option::None => {missing},\n\
         }},\n",
        ident = f.ident
    )
}

fn gen_struct_literal(
    path: &str,
    fields: &[FieldDef],
    container: &SerdeAttrs,
    use_container_default: bool,
) -> String {
    let mut out = format!("{path} {{\n");
    for f in fields {
        out.push_str(&gen_field_expr(f, container, use_container_default));
    }
    out.push('}');
    out
}

fn gen_deserialize_impl(item: &ItemDef) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let container_default = item.attrs.default.is_some();
            let prelude = if container_default {
                format!("let __d: {name} = ::std::default::Default::default();\n")
            } else {
                String::new()
            };
            format!(
                "let __pairs = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 {prelude}::std::result::Result::Ok({})",
                gen_struct_literal(name, fields, &item.attrs, container_default)
            )
        }
        ItemKind::TupleStruct(1) => {
            format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
            )
        }
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize_value(&__items[{k}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::custom(\
                 \"wrong tuple arity for {name}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        ItemKind::Enum(variants) => match &item.attrs.tag {
            Some(tag) => {
                let mut arms = String::new();
                for v in variants {
                    let json = quote_str(&variant_json_name(v, &item.attrs));
                    let arm = match &v.shape {
                        VariantShape::Unit => format!(
                            "{json} => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.ident
                        ),
                        VariantShape::Newtype => format!(
                            "{json} => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::deserialize_value(__v)?)),\n",
                            v = v.ident
                        ),
                        VariantShape::Struct(fields) => format!(
                            "{json} => ::std::result::Result::Ok({}),\n",
                            gen_struct_literal(
                                &format!("{name}::{}", v.ident),
                                fields,
                                &item.attrs,
                                false
                            )
                        ),
                    };
                    arms.push_str(&arm);
                }
                format!(
                    "let __pairs = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                     let __tag = ::serde::value::get_key(__pairs, {t})\
                     .and_then(|__t| __t.as_str())\
                     .ok_or_else(|| ::serde::DeError::custom(\
                     \"missing `{tag}` tag for {name}\"))?;\n\
                     match __tag {{\n{arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n}}",
                    t = quote_str(tag)
                )
            }
            None => {
                let mut unit_arms = String::new();
                let mut keyed_arms = String::new();
                for v in variants {
                    let json = quote_str(&variant_json_name(v, &item.attrs));
                    match &v.shape {
                        VariantShape::Unit => unit_arms.push_str(&format!(
                            "{json} => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.ident
                        )),
                        VariantShape::Newtype => keyed_arms.push_str(&format!(
                            "{json} => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::deserialize_value(__inner)?)),\n",
                            v = v.ident
                        )),
                        VariantShape::Struct(fields) => keyed_arms.push_str(&format!(
                            "{json} => {{\n\
                             let __pairs = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object variant body\"))?;\n\
                             ::std::result::Result::Ok({})\n}},\n",
                            gen_struct_literal(
                                &format!("{name}::{}", v.ident),
                                fields,
                                &item.attrs,
                                false
                            )
                        )),
                    }
                }
                format!(
                    "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n}},\n\
                     ::serde::Value::Object(__kv) if __kv.len() == 1 => {{\n\
                     let (__k, __inner) = &__kv[0];\n\
                     match __k.as_str() {{\n{keyed_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n}}\n}},\n\
                     _ => ::std::result::Result::Err(::serde::DeError::custom(\
                     \"expected string or single-key object for {name}\")),\n}}"
                )
            }
        },
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize_impl(&item);
    code.parse()
        .unwrap_or_else(|e| panic!("serde stub: generated invalid Serialize code: {e:?}\n{code}"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize_impl(&item);
    code.parse()
        .unwrap_or_else(|e| panic!("serde stub: generated invalid Deserialize code: {e:?}\n{code}"))
}
