//! Umbrella crate for the Tagwatch reproduction: hosts the runnable
//! examples, the cross-crate integration tests, and the declarative
//! [`scenario`] runner behind the `tagwatch-sim` binary.

#![forbid(unsafe_code)]
pub mod scenario;
