//! Umbrella crate for the Tagwatch reproduction: hosts the runnable
//! examples, the cross-crate integration tests, and the declarative
//! [`scenario`] runner behind the `tagwatch-sim` binary.

pub mod scenario;
