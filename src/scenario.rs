//! Declarative simulation scenarios.
//!
//! A scenario is a JSON document describing a scene preset, reader
//! configuration, and Tagwatch configuration; [`run`] assembles the stack
//! and executes it, returning per-cycle summaries. The `tagwatch-sim`
//! binary is a thin CLI over this module; see
//! `examples/scenarios/*.json` for ready-made inputs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tagwatch::prelude::*;
use tagwatch::ScheduleMode;
use tagwatch_gen2::Epc;
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_rf::ChannelPlan;
use tagwatch_scene::{presets, Scene};

/// Which pre-built scene the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "preset", rename_all = "snake_case")]
pub enum ScenePreset {
    /// `n` tags, `mobile` of them on a spinning turntable.
    Turntable { n: usize, mobile: usize },
    /// `n` stationary tags with `people` walking around.
    Office { n: usize, people: usize },
    /// `n` stationary tags, no clutter.
    RandomRoom { n: usize },
    /// One toy train + `statics` companion tags, four corner antennas.
    TrackingStudy { statics: usize },
}

impl ScenePreset {
    fn build(&self, seed: u64) -> Scene {
        match *self {
            ScenePreset::Turntable { n, mobile } => presets::turntable(n, mobile, seed),
            ScenePreset::Office { n, people } => presets::office_monitoring(n, people, seed),
            ScenePreset::RandomRoom { n } => presets::random_room(n, seed),
            ScenePreset::TrackingStudy { statics } => presets::tracking_study(statics, seed),
        }
    }

    fn tag_count(&self) -> usize {
        match *self {
            ScenePreset::Turntable { n, .. } => n,
            ScenePreset::Office { n, .. } => n,
            ScenePreset::RandomRoom { n } => n,
            ScenePreset::TrackingStudy { statics } => statics + 1,
        }
    }
}

/// Reader knobs exposed to scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ReaderSpec {
    /// Number of hop channels (1 = fixed frequency; 16 = China-band plan).
    pub channels: u8,
    /// Decode-failure injection probability.
    pub decode_fail_prob: f64,
    /// Forward-field range in metres (None = unlimited).
    pub field_range_m: Option<f64>,
}

impl Default for ReaderSpec {
    fn default() -> Self {
        ReaderSpec {
            channels: 1,
            decode_fail_prob: 0.0,
            field_range_m: None,
        }
    }
}

/// The full scenario document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Master seed (scene layout, EPCs, protocol randomness).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// The scene.
    pub scene: ScenePreset,
    /// Reader configuration.
    #[serde(default)]
    pub reader: ReaderSpec,
    /// Tagwatch middleware configuration (paper defaults when omitted).
    #[serde(default)]
    pub tagwatch: TagwatchConfig,
    /// Number of two-phase cycles to run.
    #[serde(default = "default_cycles")]
    pub cycles: usize,
}

fn default_seed() -> u64 {
    7
}

fn default_cycles() -> usize {
    20
}

/// One cycle's summary, as emitted on the CLI's JSONL output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleSummary {
    pub cycle: u64,
    pub t_start: f64,
    pub t_end: f64,
    /// "selective" or "read_all".
    pub mode: String,
    pub census: usize,
    pub mobile: usize,
    pub targets: usize,
    /// Number of Phase-II bitmasks (0 for read-all).
    pub masks: usize,
    pub phase1_reads: usize,
    pub phase2_reads: usize,
    /// Ground-truth movers among the targets (uses simulator knowledge).
    pub true_movers_targeted: usize,
    pub compute_ms: f64,
}

/// Parses a scenario from JSON.
pub fn parse(json: &str) -> Result<Scenario, serde_json::Error> {
    serde_json::from_str(json)
}

/// Runs a scenario to completion, returning the per-cycle summaries.
pub fn run(scenario: &Scenario) -> Result<Vec<CycleSummary>, String> {
    scenario
        .tagwatch
        .validate()
        .map_err(|e| format!("invalid tagwatch config: {e}"))?;
    if scenario.reader.channels == 0 {
        return Err("reader.channels must be ≥ 1".into());
    }

    let scene = scenario.scene.build(scenario.seed);
    let n = scenario.scene.tag_count();
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x5CEA);
    let epcs: Vec<Epc> = (0..n).map(|_| Epc::random(&mut rng)).collect();

    let rcfg = ReaderConfig {
        channel_plan: if scenario.reader.channels == 1 {
            ChannelPlan::single(922.5e6)
        } else {
            ChannelPlan::evenly_spaced(920.625e6, 250e3, scenario.reader.channels, 2.0)
        },
        decode_fail_prob: scenario.reader.decode_fail_prob,
        field_range_m: scenario.reader.field_range_m,
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(scene.clone(), &epcs, rcfg, scenario.seed ^ 0xF00D);

    let mut ctl = Controller::new(scenario.tagwatch.clone());
    let mut out = Vec::with_capacity(scenario.cycles);
    for _ in 0..scenario.cycles {
        let rep = ctl
            .run_cycle(&mut reader)
            .map_err(|e| format!("cycle failed: {e}"))?;
        let mid = (rep.t_start + rep.t_end) / 2.0;
        let true_movers_targeted = rep
            .targets
            .iter()
            .filter(|t| {
                epcs.iter()
                    .position(|e| e == *t)
                    .is_some_and(|idx| scene.tag_moving(idx, mid, 1e-3))
            })
            .count();
        out.push(CycleSummary {
            cycle: rep.cycle,
            t_start: rep.t_start,
            t_end: rep.t_end,
            mode: match rep.mode {
                ScheduleMode::Selective => "selective".to_string(),
                ScheduleMode::ReadAll => "read_all".to_string(),
            },
            census: rep.census.len(),
            mobile: rep.mobile.len(),
            targets: rep.targets.len(),
            masks: rep.plan.as_ref().map_or(0, |p| p.masks.len()),
            phase1_reads: rep.phase1.len(),
            phase2_reads: rep.phase2.len(),
            true_movers_targeted,
            compute_ms: rep.compute_time * 1e3,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn turntable_json() -> &'static str {
        r#"{
            "seed": 7,
            "scene": {"preset": "turntable", "n": 25, "mobile": 1},
            "reader": {"channels": 1},
            "cycles": 3
        }"#
    }

    #[test]
    // Exact equality: the default is a literal, not a computed value.
    #[allow(clippy::float_cmp)]
    fn parse_minimal_scenario() {
        let s = parse(turntable_json()).unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.cycles, 3);
        assert_eq!(s.scene, ScenePreset::Turntable { n: 25, mobile: 1 });
        // Tagwatch defaults filled in.
        assert_eq!(s.tagwatch.phase2_len, 5.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{}").is_err());
        assert!(parse(r#"{"scene": {"preset": "nope"}}"#).is_err());
    }

    #[test]
    fn run_produces_cycle_summaries() {
        let mut s = parse(turntable_json()).unwrap();
        s.tagwatch.phase2_len = 0.5;
        let cycles = run(&s).unwrap();
        assert_eq!(cycles.len(), 3);
        for (i, c) in cycles.iter().enumerate() {
            assert_eq!(c.cycle, i as u64);
            assert_eq!(c.census, 25);
            assert!(c.t_end > c.t_start);
            assert!(c.phase1_reads > 0);
            assert!(c.phase2_reads > 0);
        }
    }

    #[test]
    // Exact float equality is the property under test (bit-identical
    // identical-seed runs).
    #[allow(clippy::float_cmp)]
    fn run_is_deterministic() {
        let mut s = parse(turntable_json()).unwrap();
        s.tagwatch.phase2_len = 0.5;
        let a = run(&s).unwrap();
        let b = run(&s).unwrap();
        // compute_ms is wall clock; compare everything else.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mode, y.mode);
            assert_eq!(x.targets, y.targets);
            assert_eq!(x.phase2_reads, y.phase2_reads);
            assert_eq!(x.t_end, y.t_end);
        }
    }

    #[test]
    fn invalid_configs_are_reported() {
        let mut s = parse(turntable_json()).unwrap();
        s.reader.channels = 0;
        assert!(run(&s).is_err());
        let mut s = parse(turntable_json()).unwrap();
        s.tagwatch.phase2_len = -1.0;
        assert!(run(&s).is_err());
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let s = parse(turntable_json()).unwrap();
        let text = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&text).unwrap();
        assert_eq!(s, back);
    }
}
