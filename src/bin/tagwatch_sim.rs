//! `tagwatch-sim` — run a declarative simulation scenario.
//!
//! ```text
//! tagwatch-sim <scenario.json>           # JSONL, one line per cycle
//! tagwatch-sim <scenario.json> --table   # human-readable table
//! ```
//!
//! Scenario documents are described in `tagwatch_repro::scenario`; see
//! `examples/scenarios/` for ready-made inputs.

use std::process::ExitCode;
use tagwatch_repro::scenario;

fn main() -> ExitCode {
    let mut path = None;
    let mut table = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--table" => table = true,
            "--help" | "-h" => {
                eprintln!("usage: tagwatch-sim <scenario.json> [--table]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other:?}");
                return ExitCode::FAILURE;
            }
            file => path = Some(file.to_string()),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: tagwatch-sim <scenario.json> [--table]");
        return ExitCode::FAILURE;
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match scenario::parse(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cycles = match scenario::run(&spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if table {
        println!(
            "{:>5} {:>9} {:>10} {:>7} {:>7} {:>7} {:>6} {:>9} {:>9} {:>7}",
            "cycle",
            "t (s)",
            "mode",
            "census",
            "mobile",
            "target",
            "masks",
            "p1 reads",
            "p2 reads",
            "ms"
        );
        for c in &cycles {
            println!(
                "{:>5} {:>9.1} {:>10} {:>7} {:>7} {:>7} {:>6} {:>9} {:>9} {:>7.2}",
                c.cycle,
                c.t_start,
                c.mode,
                c.census,
                c.mobile,
                c.targets,
                c.masks,
                c.phase1_reads,
                c.phase2_reads,
                c.compute_ms
            );
        }
    } else {
        for c in &cycles {
            match serde_json::to_string(c) {
                Ok(line) => println!("{line}"),
                Err(e) => {
                    eprintln!("serialization failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
