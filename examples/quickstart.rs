//! Quickstart: stand up a simulated RFID deployment, run Tagwatch on it,
//! and watch the mobile tag's reading rate climb.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The scene is the paper's core scenario in miniature: 40 tags covered by
//! one reader antenna, two of them riding a turntable. Plain reading gives
//! every tag the same (low) individual reading rate; Tagwatch's two-phase
//! cycle detects the movers from their backscatter phase and reads them
//! almost exclusively in Phase II.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch_reader::{LlrpError, Reader, ReaderConfig, RoSpec};
use tagwatch_rf::ChannelPlan;
use tagwatch_scene::presets;

fn main() -> Result<(), LlrpError> {
    let seed = 7;
    let n_tags = 40;
    let n_mobile = 2;

    // --- Build the physical deployment --------------------------------
    // A turntable scene: tags 0..2 spin on a platter, the rest sit still.
    let scene = presets::turntable(n_tags, n_mobile, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let epcs: Vec<Epc> = (0..n_tags).map(|_| Epc::random(&mut rng)).collect();
    // Single frequency keeps the immobility models' warm-up short for the
    // demo; production plans hop over 16 channels.
    let reader_cfg = ReaderConfig {
        channel_plan: ChannelPlan::single(922.5e6),
        ..ReaderConfig::default()
    };

    // --- Baseline: plain "read everything" ----------------------------
    let mut reader = Reader::new(scene.clone(), &epcs, reader_cfg.clone(), seed);
    let spec = RoSpec::read_all(1, vec![1]);
    let reports = reader.run_for(&spec, 10.0)?;
    let mover_reads = reports.iter().filter(|r| r.tag_idx == 0).count();
    let baseline_irr = mover_reads as f64 / reader.now();
    println!("baseline (read all): mover IRR = {baseline_irr:.1} Hz");

    // --- Tagwatch: rate-adaptive two-phase reading ---------------------
    let mut reader = Reader::new(scene, &epcs, reader_cfg, seed);
    let cfg = TagwatchConfig {
        phase2_len: 2.0,
        ..TagwatchConfig::default()
    };
    let mut tagwatch = Controller::new(cfg);

    // Warm up: the self-learning immobility models need a few cycles of
    // history before the stationary majority drops out of scheduling.
    println!("\nwarming up immobility models…");
    for cycle in 0..30 {
        let report = tagwatch.run_cycle(&mut reader)?;
        if cycle % 5 == 0 {
            println!(
                "  cycle {cycle:>2}: {:?}, {} mobile of {} present",
                report.mode,
                report.mobile.len(),
                report.census.len()
            );
        }
    }

    // Measure the steady state.
    let t0 = reader.now();
    let mut mover_reads = 0;
    let mut masks_used = Vec::new();
    for _ in 0..5 {
        let report = tagwatch.run_cycle(&mut reader)?;
        mover_reads += report
            .phase1
            .iter()
            .chain(report.phase2.iter())
            .filter(|r| r.tag_idx == 0)
            .count();
        if let Some(plan) = &report.plan {
            masks_used = plan.masks.iter().map(ToString::to_string).collect();
        }
    }
    let tagwatch_irr = mover_reads as f64 / (reader.now() - t0);

    println!("\nTagwatch: mover IRR = {tagwatch_irr:.1} Hz");
    println!(
        "IRR gain = {:.1}x  (paper: ~3.2x at 5% mobile)",
        tagwatch_irr / baseline_irr
    );
    println!("last Phase-II bitmasks: {masks_used:?}");
    Ok(())
}
