//! Motion dashboard: a live view of what Phase I believes about every
//! tag, cycle by cycle — useful for building intuition about the
//! self-learning immobility models.
//!
//! ```text
//! cargo run --release --example motion_dashboard
//! ```
//!
//! The scene mixes behaviours deliberately: a turntable mover, a tag that
//! gets picked up mid-run (stationary → moving → stationary somewhere
//! else), a tag that leaves the field, and a stationary majority under
//! walking-people multipath. The dashboard prints each cycle's verdicts
//! against ground truth.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch_reader::{LlrpError, Reader, ReaderConfig};
use tagwatch_rf::{ChannelPlan, Vec3};
use tagwatch_scene::{presets, SceneTag, Trajectory};

fn main() -> Result<(), LlrpError> {
    let seed = 11;
    // Base: 12 stationary tags + 1 person walking.
    let mut scene = presets::office_monitoring(12, 1, seed);
    let n_static = scene.tags.len();

    // Tag 12: rides a turntable the whole time.
    scene.add_tag(SceneTag::new(
        100,
        Trajectory::Circle {
            center: Vec3::new(1.0, 1.0, 0.8),
            radius: 0.15,
            speed: 0.5,
            phase0: 0.0,
        },
    ));
    // Tag 13: picked up at t = 60 s and carried 2 m away over 4 s.
    scene.add_tag(SceneTag::new(
        101,
        Trajectory::Waypoints {
            points: vec![
                (0.0, Vec3::new(-1.5, 0.5, 0.8)),
                (60.0, Vec3::new(-1.5, 0.5, 0.8)),
                (64.0, Vec3::new(0.5, 1.0, 0.8)),
            ],
        },
    ));
    // Tag 14: leaves the field at t = 90 s.
    scene.add_tag(SceneTag::fixed(102, Vec3::new(2.0, -1.0, 0.8)).with_presence(0.0, 90.0));
    let n = scene.tags.len();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xD);
    let epcs: Vec<Epc> = (0..n).map(|_| Epc::random(&mut rng)).collect();
    let rcfg = ReaderConfig {
        channel_plan: ChannelPlan::single(922.5e6),
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(scene, &epcs, rcfg, seed ^ 0xC);

    let cfg = TagwatchConfig {
        phase2_len: 2.0,
        eviction_timeout: 20.0,
        ..TagwatchConfig::default()
    };
    let mut tagwatch = Controller::new(cfg);

    println!("legend: . stationary   M mobile   - unseen this cycle   (columns are tags)");
    println!(
        "tags 0..{} static | {} turntable | {} picked up @60s | {} departs @90s\n",
        n_static - 1,
        n_static,
        n_static + 1,
        n_static + 2
    );

    let mut header = String::from("  t(s)  mode       ");
    for i in 0..n {
        header.push_str(&format!("{:>2}", i % 100));
    }
    println!("{header}");

    for _cycle in 0..50 {
        let rep = tagwatch.run_cycle(&mut reader)?;
        let mut row = format!("{:>6.1}  {:<9} ", rep.t_start, format!("{:?}", rep.mode));
        for epc in epcs.iter() {
            let symbol = if !rep.census.contains(epc) {
                " -"
            } else if rep.mobile.contains(epc) {
                " M"
            } else {
                " ."
            };
            row.push_str(symbol);
        }
        if !rep.evicted.is_empty() {
            row.push_str(&format!("   evicted {} tag(s)", rep.evicted.len()));
        }
        println!("{row}");
    }

    println!(
        "\nexpected: column {} flags M every cycle (turntable);",
        n_static
    );
    println!(
        "column {} flips to M around t=60 then settles; column {} goes '-' after 90 s and is evicted.",
        n_static + 1,
        n_static + 2
    );
    Ok(())
}
