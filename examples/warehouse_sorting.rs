//! Warehouse sorting gate: the paper's §2.4 motivating deployment.
//!
//! ```text
//! cargo run --release --example warehouse_sorting
//! ```
//!
//! A TrackPoint-style gate watches a conveyor. Sorted packages pile up
//! near the gate and soak up air time; the packages actually moving on
//! the belt are the ones that *need* reads (for localization) and get
//! almost none. This example synthesises the trace, prints the pathology
//! (Figs. 3/4), and then shows what a rate-adaptive reader would have
//! done with the same air time using the paper's cost model.

use tagwatch_gen2::CostModel;
use tagwatch_trace::{generate, read_counts, summarize, timeline, TraceConfig};

fn main() {
    // A 1-hour shift at a medium gate (the paper's trace is 4 h / 527
    // tags; scaled down so the example finishes instantly).
    let cfg = TraceConfig {
        duration: 3600.0,
        total_tags: 200,
        parked_tags: 60,
        ..Default::default()
    };
    let trace = generate(&cfg, 7);
    let summary = summarize(&trace);

    println!("=== gate trace ({} h) ===", cfg.duration / 3600.0);
    println!(
        "{} readings from {} tags; busiest parked tag read {} times",
        summary.total_readings, summary.total_tags, summary.max_reads
    );
    println!(
        "top 20% of tags read ≥ {} times; top 10% ≥ {} times",
        summary.reads_at_top20, summary.reads_at_top10
    );
    println!(
        "peak simultaneous movers: {} ({:.1}% of tags)",
        summary.peak_simultaneous_movers,
        100.0 * summary.peak_simultaneous_movers as f64 / summary.total_tags as f64
    );
    println!(
        "mean reads per conveyor transit: {:.1}  ← the tags that actually needed reading",
        summary.mean_mover_reads
    );

    println!("\nreadings per 10 minutes:");
    for (i, b) in timeline(&trace, 600.0).iter().enumerate() {
        let bar = "#".repeat(b / 200);
        println!("  [{:>2}0 min] {b:>7} {bar}", i);
    }

    // --- What rate-adaptive reading buys ------------------------------
    // With ~60 parked tags contending, a moving piece shares a full
    // inventory; selectively read, it shares only the gate's mover set.
    let cost = CostModel::paper();
    let movers_at_once = summary.peak_simultaneous_movers.max(1);
    let irr_all = cost.irr(cfg.parked_tags + movers_at_once);
    let irr_selective = cost.irr(movers_at_once);
    let transit = 5.0; // seconds on the belt within read range
    println!("\n=== cost-model projection for one transit ({transit} s) ===");
    println!(
        "reading all {} tags:   {:>5.1} Hz → ~{:.0} reads per transit",
        cfg.parked_tags + movers_at_once,
        irr_all,
        irr_all * transit
    );
    println!(
        "selective ({} movers): {:>5.1} Hz → ~{:.0} reads per transit",
        movers_at_once,
        irr_selective,
        irr_selective * transit
    );
    println!(
        "→ {:.1}x more position samples for every package on the belt",
        irr_selective / irr_all
    );

    // Count-distribution tail for the curious.
    let mut counts = read_counts(&trace);
    counts.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\ntop-10 read counts: {:?}",
        &counts[..10.min(counts.len())]
    );
}
