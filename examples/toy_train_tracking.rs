//! Toy-train tracking: the paper's Fig. 1 application, end to end.
//!
//! ```text
//! cargo run --release --example toy_train_tracking
//! ```
//!
//! A tag rides a toy train on a circular track inside a four-antenna
//! cell; four stationary tags sit beside the track and steal air time.
//! The example recovers the train's trajectory with the phase-hologram
//! tracker under (a) traditional read-everything and (b) Tagwatch, and
//! prints the recovered path and accuracy for both.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch_gen2::LinkTiming;
use tagwatch_reader::{LlrpError, Reader, ReaderConfig, RoSpec, TagReport};
use tagwatch_rf::{ChannelPlan, LinkGeometry, Vec3};
use tagwatch_scene::presets;
use tagwatch_tracking::{accuracy, HologramConfig, Localizer, Tracker};

/// Ground truth of the train (matches `presets::tracking_study`).
fn truth(t: f64) -> Vec3 {
    let omega = 0.7 / 0.2;
    Vec3::new(0.2 * (omega * t).cos(), 0.2 * (omega * t).sin(), 0.8)
}

fn tracking_reader(n_static: usize, seed: u64) -> (Reader, Vec<Epc>) {
    let scene = presets::tracking_study(n_static, seed);
    let n = scene.tags.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE);
    let epcs: Vec<Epc> = (0..n).map(|_| Epc::random(&mut rng)).collect();
    let cfg = ReaderConfig {
        channel_plan: ChannelPlan::single(922.5e6),
        link: LinkTiming::r420_tracking(),
        ..ReaderConfig::default()
    };
    (Reader::new(scene, &epcs, cfg, seed ^ 0xF), epcs)
}

/// Calibrates per-link offsets from a burst at the known start position.
fn calibrate(reader: &Reader) -> Localizer {
    let ants: Vec<(u8, Vec3)> = reader
        .scene
        .antennas
        .iter()
        .map(|a| (a.port, a.position))
        .collect();
    let mut loc = Localizer::new(&ants, HologramConfig::default());
    let model = reader.config().channel_model;
    let chan = ChannelPlan::single(922.5e6).channel_at(0.0);
    let mut rng = rand::rngs::mock::StepRng::new(0, 0);
    let mut cal = Vec::new();
    for &(port, apos) in &ants {
        for _ in 0..25 {
            let link = LinkGeometry {
                antenna: apos,
                tag: truth(0.0),
                reflectors: &[],
            };
            let rf = model.observe(&link, 0, port, chan, 0.0, &mut rng);
            cal.push(TagReport {
                epc: Epc::from_bits(0),
                tag_idx: 0,
                rf,
            });
        }
    }
    loc.calibrate(truth(0.0), &cal);
    loc
}

fn track_and_report(label: &str, reader: &mut Reader, mover: &[TagReport], duration: f64) {
    let localizer = calibrate(reader);
    let t_first = mover.first().map_or(0.0, |r| r.rf.t);
    let mut tracker = Tracker::new(localizer, truth(t_first), 0.1);
    tracker.min_score = 0.55;
    tracker.min_reads = 3;
    let fixes = tracker.track(mover);
    let (mean, std) = accuracy(&fixes, truth);
    println!(
        "{label:<22} IRR {:>6.1} Hz   error {:>5.1} ± {:>4.1} cm   ({} fixes)",
        mover.len() as f64 / duration,
        mean * 100.0,
        std * 100.0,
        fixes.len()
    );
    // A coarse 12-point sketch of the recovered loop.
    if fixes.len() >= 12 {
        print!("  path: ");
        for fix in fixes.iter().step_by(fixes.len() / 12) {
            print!("({:>5.2},{:>5.2}) ", fix.position.x, fix.position.y);
        }
        println!();
    }
}

fn main() -> Result<(), LlrpError> {
    let duration = 15.0;
    let antennas = vec![1, 2, 3, 4];

    println!("tracking a toy train (0.7 m/s, r = 20 cm) with 4 companion static tags\n");

    // --- Traditional: read everything ----------------------------------
    let (mut reader, _) = tracking_reader(4, 7);
    let spec = RoSpec::read_all_continuous(1, antennas.clone(), 0.05);
    reader.run_for(&spec, 2.0)?;
    let reports = reader.run_for(&spec, duration)?;
    let mover: Vec<TagReport> = reports.into_iter().filter(|r| r.tag_idx == 0).collect();
    track_and_report("read-all (1+4):", &mut reader, &mover, duration);

    // --- Tagwatch: rate-adaptive -----------------------------------------
    let (mut reader, _) = tracking_reader(4, 7);
    let mut cfg = TagwatchConfig::with_antennas(antennas);
    cfg.phase2_len = 2.0;
    cfg.phase2_dwell = Some(0.05);
    let mut tagwatch = Controller::new(cfg);
    for _ in 0..14 {
        tagwatch.run_cycle(&mut reader)?;
    }
    let t0 = reader.now();
    let mut collected: Vec<TagReport> = Vec::new();
    while reader.now() - t0 < duration {
        let rep = tagwatch.run_cycle(&mut reader)?;
        collected.extend(rep.phase1);
        collected.extend(rep.phase2);
    }
    let elapsed = reader.now() - t0;
    let mover: Vec<TagReport> = collected.into_iter().filter(|r| r.tag_idx == 0).collect();
    track_and_report("Tagwatch (1+4):", &mut reader, &mover, elapsed);

    println!("\npaper anchors: read-all (1+4) ≈ 10.6 cm; Tagwatch (1+4) ≈ 3.3 cm");
    Ok(())
}
