//! Rule orchestration: test-region tracking, escape comments, and the
//! per-file linting entry points.
//!
//! Escapes are plain `//` comments of the form
//! `lint:allow(rule-name): reason`. An escape suppresses findings of
//! that rule on its own line when it trails code, or on the next code
//! line when it stands alone. Doc comments (`///`, `//!`) are never
//! parsed as escapes, so documentation may quote the syntax freely.
//! Malformed, unknown-rule, and unused escapes are themselves findings
//! (rule `lint-escape`) — a stale escape is as misleading as a stale
//! suppression in any other linter.

use std::fs;
use std::path::Path;

use crate::deep::{self, DeepFile, ReadinessReport};
use crate::diag::{sort_findings, Finding};
use crate::graph::{FileMeta, SymbolGraph};
use crate::items::{self, FileItems};
use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{self, FileCtx};
use crate::walker::{self, classify, FileKind};

/// Lints one file's source under its workspace-relative path. Returns
/// `None` when the path is outside the linter's jurisdiction (skipped
/// prefixes, non-Rust).
pub fn lint_source(rel: &str, source: &str) -> Option<Vec<Finding>> {
    let (kind, crate_name, is_crate_root) = classify(rel)?;
    Some(lint_classified(
        rel,
        kind,
        &crate_name,
        is_crate_root,
        source,
    ))
}

/// Lints already-classified source (shallow rules only). Fixture tests
/// use this to replay a file under a pretend path without touching the
/// real workspace.
pub fn lint_classified(
    rel: &str,
    kind: FileKind,
    crate_name: &str,
    is_crate_root: bool,
    source: &str,
) -> Vec<Finding> {
    let tokens = lex(source);
    let in_test = test_regions(&tokens);
    let ctx = FileCtx {
        rel,
        kind,
        crate_name,
        is_crate_root,
        tokens: &tokens,
        in_test: &in_test,
    };
    let raw = rules::check_file(&ctx);
    let (mut escapes, meta) = collect_escapes(rel, &tokens);
    let mut findings = suppress(&mut escapes, raw);
    // A per-file pass cannot tell whether a deep-rule escape is used —
    // only the workspace pass runs those rules — so it never reports
    // them unused.
    findings.extend(unused_escape_findings(rel, &escapes, false));
    findings.extend(meta);
    sort_findings(&mut findings);
    findings
}

/// One loaded, classified workspace file — the input unit of the
/// workspace-level (deep) pass.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    pub rel: String,
    pub kind: FileKind,
    pub crate_name: String,
    pub is_crate_root: bool,
    pub source: String,
}

/// Walks `root` and reads every classifiable source into memory, in
/// sorted path order.
pub fn load_workspace(root: &Path) -> Result<Vec<WorkspaceFile>, String> {
    let files = walker::walk(root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    files
        .into_iter()
        .map(|f| {
            let source = fs::read_to_string(&f.abs)
                .map_err(|e| format!("cannot read {}: {e}", f.abs.display()))?;
            Ok(WorkspaceFile {
                rel: f.rel,
                kind: f.kind,
                crate_name: f.crate_name,
                is_crate_root: f.is_crate_root,
                source,
            })
        })
        .collect()
}

/// Everything the workspace pass produces: combined shallow + deep
/// findings (escapes applied, canonically sorted), the symbol graph,
/// and the parallelism-readiness report.
pub struct WorkspaceAnalysis {
    pub findings: Vec<Finding>,
    pub graph: SymbolGraph,
    pub report: ReadinessReport,
}

/// Runs the shallow rules per file *and* the deep (graph-backed) rule
/// family across all of them, with full escape accounting: an escape may
/// suppress a deep finding, and unused escapes are reported for deep
/// rules too (unlike the per-file pass, this one knows).
pub fn lint_workspace(files: &[WorkspaceFile]) -> WorkspaceAnalysis {
    // Per-file lexical artifacts. Tokens borrow the sources in `files`,
    // which outlive this frame.
    let lexed: Vec<Vec<Token<'_>>> = files.iter().map(|f| lex(&f.source)).collect();
    let in_tests: Vec<Vec<bool>> = lexed.iter().map(|t| test_regions(t)).collect();
    let parsed: Vec<FileItems> = lexed
        .iter()
        .zip(&in_tests)
        .map(|(t, flags)| items::parse(t, flags))
        .collect();

    // Shallow findings, raw (escapes applied after the deep merge).
    let mut raw: Vec<Finding> = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let ctx = FileCtx {
            rel: &f.rel,
            kind: f.kind,
            crate_name: &f.crate_name,
            is_crate_root: f.is_crate_root,
            tokens: &lexed[i],
            in_test: &in_tests[i],
        };
        raw.extend(rules::check_file(&ctx));
    }

    // Deep pass over the whole workspace.
    let deep_inputs: Vec<DeepFile<'_>> = files
        .iter()
        .enumerate()
        .map(|(i, f)| DeepFile {
            meta: FileMeta {
                rel: f.rel.clone(),
                crate_name: f.crate_name.clone(),
                kind: f.kind,
            },
            tokens: &lexed[i],
            in_test: &in_tests[i],
            items: &parsed[i],
        })
        .collect();
    let analysis = deep::analyze(&deep_inputs);
    raw.extend(analysis.findings);

    // Escapes, per file, over the combined finding set.
    let mut findings: Vec<Finding> = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let (mut escapes, meta) = collect_escapes(&f.rel, &lexed[i]);
        let file_raw: Vec<Finding> = raw.iter().filter(|x| x.file == f.rel).cloned().collect();
        findings.extend(suppress(&mut escapes, file_raw));
        findings.extend(unused_escape_findings(&f.rel, &escapes, true));
        findings.extend(meta);
    }
    sort_findings(&mut findings);
    WorkspaceAnalysis {
        findings,
        graph: analysis.graph,
        report: analysis.report,
    }
}

fn is_code(tok: &Token<'_>) -> bool {
    !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment)
}

/// Marks every token that belongs to a `#[test]`- or `#[cfg(test)]`-gated
/// item (any attribute containing the bare ident `test`, which also
/// covers `#[cfg(all(test, …))]`). The gated extent runs from the
/// attribute through the item's matching closing brace (or terminating
/// semicolon).
fn test_regions(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(is_code(&tokens[i]) && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        // `#` then `[` (outer) or `!` `[` (inner) — inner attributes are
        // not treated as gates, but we still need to hop over them.
        let mut j = next_code(tokens, i);
        let inner = j.is_some_and(|j| tokens[j].text == "!");
        if inner {
            j = j.and_then(|j| next_code(tokens, j));
        }
        let Some(open) = j.filter(|&j| tokens[j].text == "[") else {
            i += 1;
            continue;
        };
        let Some(close) = match_delim(tokens, open, "[", "]") else {
            break; // unterminated attribute at EOF
        };
        let gates_test = !inner
            && tokens[open..=close]
                .iter()
                .any(|t| is_code(t) && t.kind == TokenKind::Ident && t.text == "test");
        if !gates_test {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = close + 1;
        while let Some(n) = seek_code(tokens, k) {
            if tokens[n].text != "#" {
                k = n;
                break;
            }
            let Some(nb) = next_code(tokens, n).filter(|&nb| tokens[nb].text == "[") else {
                k = n;
                break;
            };
            match match_delim(tokens, nb, "[", "]") {
                Some(e) => k = e + 1,
                None => {
                    k = tokens.len();
                    break;
                }
            }
        }
        // The item extends to its first top-level `{`…`}` block, or to a
        // `;` for block-less items (`#[cfg(test)] use …;`).
        let mut end = tokens.len().saturating_sub(1);
        let mut m = k;
        while m < tokens.len() {
            if is_code(&tokens[m]) {
                if tokens[m].text == "{" {
                    end =
                        match_delim(tokens, m, "{", "}").unwrap_or(tokens.len().saturating_sub(1));
                    break;
                }
                if tokens[m].text == ";" {
                    end = m;
                    break;
                }
            }
            m += 1;
        }
        for flag in flags.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    flags
}

/// Index of the next code token strictly after `i`.
fn next_code(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    tokens
        .iter()
        .enumerate()
        .skip(i + 1)
        .find(|(_, t)| is_code(t))
        .map(|(j, _)| j)
}

/// Index of the first code token at or after `i`.
fn seek_code(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    tokens
        .iter()
        .enumerate()
        .skip(i)
        .find(|(_, t)| is_code(t))
        .map(|(j, _)| j)
}

/// Matching close delimiter for the open delimiter at `i`, tracking
/// nesting. `None` when unbalanced at EOF.
fn match_delim(tokens: &[Token<'_>], i: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(i) {
        if !is_code(t) {
            continue;
        }
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// One parsed escape comment.
struct Escape {
    rule: String,
    /// The line whose findings this escape suppresses.
    target_line: u32,
    /// Position of the escape itself, for `lint-escape` diagnostics.
    line: u32,
    col: u32,
    used: bool,
}

const ESCAPE_MARKER: &str = "lint:allow(";

/// Parses every escape comment in one file. Returns the escapes plus
/// `lint-escape` findings for malformed/unknown ones.
fn collect_escapes(rel: &str, tokens: &[Token<'_>]) -> (Vec<Escape>, Vec<Finding>) {
    let mut escapes: Vec<Escape> = Vec::new();
    let mut meta: Vec<Finding> = Vec::new();

    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        // Plain `//` comments only — not `///` or `//!` doc comments.
        let body = tok.text.strip_prefix("//").unwrap_or(tok.text);
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(at) = body.find(ESCAPE_MARKER) else {
            continue;
        };
        let after = &body[at + ESCAPE_MARKER.len()..];
        let escape_col = tok.col + 2 + body[..at].chars().count() as u32;
        let Some((rule, rest)) = after.split_once(')') else {
            meta.push(Finding {
                file: rel.to_string(),
                line: tok.line,
                col: escape_col,
                rule: "lint-escape",
                message: "malformed escape: missing `)` after rule name".to_string(),
            });
            continue;
        };
        let rule = rule.trim();
        let reason = rest.strip_prefix(':').map(str::trim);
        if reason.is_none_or(str::is_empty) {
            meta.push(Finding {
                file: rel.to_string(),
                line: tok.line,
                col: escape_col,
                rule: "lint-escape",
                message: "escape needs a `: reason` explaining the exception".to_string(),
            });
            continue;
        }
        if !rules::is_known_rule(rule) {
            meta.push(Finding {
                file: rel.to_string(),
                line: tok.line,
                col: escape_col,
                rule: "lint-escape",
                message: format!("unknown rule `{rule}` in escape"),
            });
            continue;
        }
        // Trailing comment suppresses its own line; a standalone comment
        // suppresses the next line that has code on it.
        let code_on_same_line = tokens.iter().any(|t| is_code(t) && t.line == tok.line);
        let target_line = if code_on_same_line {
            tok.line
        } else {
            next_code(tokens, i).map_or(tok.line + 1, |j| tokens[j].line)
        };
        escapes.push(Escape {
            rule: rule.to_string(),
            target_line,
            line: tok.line,
            col: escape_col,
            used: false,
        });
    }
    (escapes, meta)
}

/// Drops findings matched by an escape, marking those escapes used.
fn suppress(escapes: &mut [Escape], raw: Vec<Finding>) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let suppressed = f.rule != "lint-escape"
            && escapes.iter_mut().any(|e| {
                if e.rule == f.rule && e.target_line == f.line {
                    e.used = true;
                    true
                } else {
                    false
                }
            });
        if !suppressed {
            out.push(f);
        }
    }
    out
}

/// `lint-escape` findings for escapes that suppressed nothing. When
/// `deep_aware` is false (a shallow, per-file pass), escapes naming
/// deep rules are skipped — only the workspace pass runs those rules,
/// so only it can judge them.
fn unused_escape_findings(rel: &str, escapes: &[Escape], deep_aware: bool) -> Vec<Finding> {
    escapes
        .iter()
        .filter(|e| !e.used && (deep_aware || !rules::is_deep_rule(&e.rule)))
        .map(|e| Finding {
            file: rel.to_string(),
            line: e.line,
            col: e.col,
            rule: "lint-escape",
            message: format!("escape for `{}` suppressed nothing; remove it", e.rule),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<String> {
        lint_source(rel, src)
            .expect("classifiable path")
            .into_iter()
            .map(|f| f.to_string())
            .collect()
    }

    #[test]
    fn wallclock_flagged_in_sim_crate() {
        let got = lint(
            "crates/core/src/injected.rs",
            "pub fn t() -> std::time::Instant {\n    Instant::now()\n}\n",
        );
        assert_eq!(got.len(), 1);
        assert!(got[0].starts_with("crates/core/src/injected.rs:2:5: determinism-wallclock:"));
    }

    #[test]
    fn wallclock_allowed_only_in_clock_module() {
        let src = "pub fn wall_now() -> Instant { Instant::now() }\n";
        assert!(lint("crates/telemetry/src/clock.rs", src).is_empty());
        assert_eq!(lint("crates/telemetry/src/span.rs", src).len(), 1);
    }

    #[test]
    fn hash_order_skips_tests_and_non_sim_crates() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\n\
                   mod tests {\n    use std::collections::HashMap;\n}\n";
        let got = lint("crates/gen2/src/x.rs", src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains(":1:23: determinism-hash-order:"));
        assert!(lint("crates/obs/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_policy_spares_tests_bins_and_unwrap_or() {
        let lib = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n\
                   #[test]\nfn t() { Some(1).unwrap(); }\n";
        let got = lint("crates/rf/src/y.rs", lib);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains(":2:7: panic-policy:"));
        assert!(lint(
            "crates/rf/src/bin/tool.rs",
            lib.replace("#[test]\n", "").as_str()
        )
        .is_empty());
        assert!(lint(
            "crates/rf/src/y.rs",
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n"
        )
        .is_empty());
    }

    #[test]
    fn banned_names_in_strings_and_comments_are_fine() {
        let src = "pub const HELP: &str = \"call unwrap() or panic!\";\n\
                   // mentions Instant::now() and HashMap in prose\n";
        assert!(lint("crates/core/src/doc.rs", src).is_empty());
    }

    #[test]
    fn escape_suppresses_same_line_and_next_line() {
        let trailing = "pub fn f(m: &std::sync::Mutex<u8>) -> u8 {\n    \
                        *m.lock().expect(\"poisoned\") // lint:allow(panic-policy): poisoning is unrecoverable here\n}\n";
        assert!(lint("crates/telemetry/src/s.rs", trailing).is_empty());
        let standalone = "pub fn f(x: Option<u8>) -> u8 {\n    \
                          // lint:allow(panic-policy): checked by caller\n    \
                          x.unwrap()\n}\n";
        assert!(lint("crates/telemetry/src/s.rs", standalone).is_empty());
    }

    #[test]
    fn unused_unknown_and_reasonless_escapes_are_findings() {
        let unused = "// lint:allow(panic-policy): nothing here\npub fn f() {}\n";
        let got = lint("crates/core/src/z.rs", unused);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("lint-escape: escape for `panic-policy` suppressed nothing"));

        let unknown = "// lint:allow(no-such-rule): hm\npub fn f() {}\n";
        let got = lint("crates/core/src/z.rs", unknown);
        assert!(got[0].contains("unknown rule `no-such-rule`"), "{got:?}");

        let reasonless =
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(panic-policy)\n";
        let got = lint("crates/core/src/z.rs", reasonless);
        assert!(
            got.iter().any(|g| g.contains("escape needs a `: reason`")),
            "{got:?}"
        );
        // And the unescaped finding survives.
        assert!(got.iter().any(|g| g.contains("panic-policy: `.unwrap()`")));
    }

    #[test]
    fn doc_comments_do_not_parse_as_escapes() {
        let src = "/// Write `lint:allow(panic-policy): reason` to escape.\npub fn f() {}\n";
        assert!(lint("crates/core/src/z.rs", src).is_empty());
    }

    #[test]
    fn crate_root_must_forbid_unsafe() {
        let got = lint("crates/rf/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(got.len(), 1);
        assert!(got[0].starts_with("crates/rf/src/lib.rs:1:1: unsafe-free: crate root is missing"));
        assert!(lint(
            "crates/rf/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_token_flagged_even_in_tests() {
        let src = "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    \
                   fn t() { unsafe { } }\n}\n";
        let got = lint("crates/rf/src/lib.rs", src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("unsafe-free: `unsafe` is banned"));
    }

    #[test]
    fn todo_needs_roadmap_reference() {
        let got = lint(
            "crates/core/src/w.rs",
            "// TODO: finish this\npub fn f() {}\n",
        );
        assert_eq!(got.len(), 1);
        assert!(got[0].contains(":1:4: todo-tracker:"));
        assert!(lint(
            "crates/core/src/w.rs",
            "// TODO(ROADMAP.md item 4): finish this\npub fn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn debug_leak_only_in_library_code() {
        let src = "pub fn f() { println!(\"x\"); }\n";
        assert_eq!(lint("crates/scene/src/p.rs", src).len(), 1);
        assert!(lint("crates/scene/src/bin/p.rs", src).is_empty());
        assert!(lint("examples/p.rs", src).is_empty());
    }

    #[test]
    fn findings_sorted_by_position() {
        let src = "pub fn f(x: Option<u8>) { x.unwrap(); println!(\"late\"); }\n\
                   pub fn g(y: Option<u8>) { y.unwrap(); }\n";
        let got = lint("crates/tracking/src/m.rs", src);
        let lines: Vec<&str> = got.iter().map(String::as_str).collect();
        let mut sorted = lines.clone();
        sorted.sort();
        // Position sort and lexical sort agree here; mainly assert order is stable.
        assert_eq!(got.len(), 3);
        assert!(lines[0].contains(":1:29:"), "{lines:?}");
        assert!(lines[1].contains(":1:39:"), "{lines:?}");
        assert!(lines[2].contains(":2:29:"), "{lines:?}");
    }
}
