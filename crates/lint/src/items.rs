//! Item-model parser: from the lexical token stream to a per-file list
//! of items (fns, impls, structs/enums/traits, statics, use-trees) with
//! the dataflow facts the deep rules need — parameter lists, body spans,
//! and call sites.
//!
//! This is deliberately *not* a Rust parser. It recognizes item heads by
//! keyword, tracks delimiter nesting, and harvests call-shaped token
//! sequences from bodies. Anything it does not understand it skips, so
//! the same totality guarantees as the lexer hold (property-tested in
//! `tests/prop_lint.rs`): never panics, always terminates, for arbitrary
//! token streams — including token soup that is not Rust at all.
//!
//! The trade-off is approximation. Names are resolved later (in
//! [`crate::graph`]) against the whole workspace, so a missed item means
//! a missed edge, never a crash; the deep rules are written to fail
//! toward *more* audit findings, not fewer, under approximation.

use crate::lexer::{Token, TokenKind};

/// One parameter of a `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The binding name (`rng`, `self`, `cfg`); `_` for wildcard or
    /// unrecognized patterns.
    pub name: String,
    /// The type, as flattened source text (`&mut R`, `Option<u8>`).
    /// Empty for `self` receivers without an explicit type.
    pub ty: String,
}

/// A call-shaped site harvested from a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments: `["StdRng", "seed_from_u64"]` for a path call,
    /// one segment for a method call (`["gen_bool"]`).
    pub path: Vec<String>,
    /// True for `.name(...)` method-call position.
    pub method: bool,
    /// Up to three code-token texts immediately before the call's `.`,
    /// newest last — enough to see `self . rng` receivers. Empty for
    /// path calls.
    pub receiver: Vec<String>,
    pub line: u32,
    pub col: u32,
}

/// A `fn` item (free fn, inherent/trait method, or default trait method).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Bare name (`run_round`).
    pub name: String,
    /// `Type::name` when declared inside `impl Type`/`trait Type`.
    pub type_qualified: String,
    /// Module path within the file (inline `mod`s), outermost first.
    pub module: Vec<String>,
    pub line: u32,
    pub col: u32,
    /// Inside a `#[test]`/`#[cfg(test)]`-gated region.
    pub in_test: bool,
    pub params: Vec<Param>,
    /// Original token-index range of the body `{ ... }`, inclusive of
    /// the braces. `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    pub calls: Vec<CallSite>,
}

/// A `static` or `const` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticItem {
    pub name: String,
    pub module: Vec<String>,
    /// True for `static`, false for `const`.
    pub is_static: bool,
    /// True for `static mut`.
    pub mutable: bool,
    /// The declared type, as flattened source text.
    pub ty: String,
    pub line: u32,
    pub col: u32,
    pub in_test: bool,
}

/// A named type definition (`struct` / `enum` / `trait` / `union`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeItem {
    pub name: String,
    pub module: Vec<String>,
    pub line: u32,
    pub col: u32,
}

/// One leaf of a `use` tree: local name → full path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseEntry {
    /// The name the import binds locally (rightmost segment, or the
    /// alias after `as`); `*` for glob imports.
    pub local: String,
    /// Full path segments, e.g. `["tagwatch_telemetry", "clock",
    /// "wall_now"]`.
    pub path: Vec<String>,
    pub line: u32,
    pub col: u32,
    pub in_test: bool,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub statics: Vec<StaticItem>,
    pub types: Vec<TypeItem>,
    pub uses: Vec<UseEntry>,
}

/// Parses one file's token stream. `in_test` is the per-token flag from
/// the engine's test-region pass and must be the same length as
/// `tokens`; when it is not (hostile callers), missing entries read as
/// `false`.
pub fn parse(tokens: &[Token<'_>], in_test: &[bool]) -> FileItems {
    // Work over code tokens only, via an index map back into `tokens`.
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let mut p = Parser {
        tokens,
        in_test,
        code: &code,
        out: FileItems::default(),
    };
    let end = code.len();
    p.items(0, end, &mut Vec::new(), None);
    p.out
}

struct Parser<'a, 'b> {
    tokens: &'a [Token<'b>],
    in_test: &'a [bool],
    /// Indices of code tokens within `tokens`.
    code: &'a [usize],
    out: FileItems,
}

impl Parser<'_, '_> {
    /// The token behind code position `ci`.
    fn tok(&self, ci: usize) -> &Token<'_> {
        &self.tokens[self.code[ci]]
    }

    fn text(&self, ci: usize) -> &str {
        self.tok(ci).text
    }

    fn is_test(&self, ci: usize) -> bool {
        self.in_test.get(self.code[ci]).copied().unwrap_or(false)
    }

    /// Code position of the matching close delimiter for the open
    /// delimiter at `ci`, scanning no further than `hi` (exclusive).
    /// `None` when unbalanced.
    fn close_of(&self, ci: usize, hi: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0usize;
        let mut j = ci;
        while j < hi {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(j);
                }
            }
            j += 1;
        }
        None
    }

    /// Skips a balanced `<...>` generics block starting at `ci` (which
    /// must be `<`); returns the position after the closing `>`. Rust
    /// generics never contain bare `<`/`>` comparisons at item-head
    /// position, so plain depth counting suffices; `None` on unbalanced
    /// input (totality fallback).
    fn skip_generics(&self, ci: usize, hi: usize) -> Option<usize> {
        let mut depth = 0i64;
        let mut j = ci;
        while j < hi {
            match self.text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        return Some(j + 1);
                    }
                }
                // `->` lexes as two puncts `-` `>`; the `>` would
                // miscount, so treat `- >` as neutral.
                "-" if j + 1 < hi && self.text(j + 1) == ">" => j += 1,
                ";" | "{" => return None, // ran off the generics
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Flattened source text of code positions `lo..hi`.
    fn span_text(&self, lo: usize, hi: usize) -> String {
        let mut s = String::new();
        for ci in lo..hi.min(self.code.len()) {
            let t = self.text(ci);
            if !s.is_empty() && needs_space(s.as_bytes().last().copied(), t) {
                s.push(' ');
            }
            s.push_str(t);
        }
        s
    }

    /// Parses items in code-position range `lo..hi` under `module` with
    /// an optional `impl`/`trait` self type. Every iteration advances
    /// `i`, so this always terminates.
    fn items(&mut self, lo: usize, hi: usize, module: &mut Vec<String>, self_ty: Option<&str>) {
        let mut i = lo;
        while i < hi {
            match self.text(i) {
                "use" => i = self.use_tree(i, hi),
                "mod" => i = self.module(i, hi, module, self_ty),
                "fn" => i = self.fn_item(i, hi, module, self_ty),
                "struct" | "enum" | "union" => i = self.type_item(i, hi, module),
                "trait" => i = self.trait_item(i, hi, module),
                "impl" => i = self.impl_item(i, hi, module),
                "static" | "const" => i = self.static_item(i, hi, module),
                // An unexpected block at item position (extern blocks,
                // macro bodies): hop over it whole.
                "{" => match self.close_of(i, hi, "{", "}") {
                    Some(c) => i = c + 1,
                    None => i += 1,
                },
                _ => i += 1,
            }
        }
    }

    /// `mod name;` or `mod name { ...items... }`.
    fn module(
        &mut self,
        i: usize,
        hi: usize,
        module: &mut Vec<String>,
        self_ty: Option<&str>,
    ) -> usize {
        let Some(name_ci) = self.ident_at(i + 1, hi) else {
            return i + 1;
        };
        let name = self.text(name_ci).to_string();
        let mut j = name_ci + 1;
        while j < hi {
            match self.text(j) {
                ";" => return j + 1, // out-of-line module: nothing here
                "{" => {
                    let close = self.close_of(j, hi, "{", "}");
                    let end = close.unwrap_or(hi);
                    module.push(name);
                    self.items(j + 1, end, module, self_ty);
                    module.pop();
                    return end + 1;
                }
                _ => j += 1,
            }
        }
        hi
    }

    /// Position of an identifier at `ci` (skipping nothing), or `None`.
    fn ident_at(&self, ci: usize, hi: usize) -> Option<usize> {
        (ci < hi && self.tok(ci).kind == TokenKind::Ident && is_plain_ident(self.text(ci)))
            .then_some(ci)
    }

    /// `fn name [<generics>] ( params ) [-> ty] [where ...] { body } | ;`
    fn fn_item(&mut self, i: usize, hi: usize, module: &[String], self_ty: Option<&str>) -> usize {
        let Some(name_ci) = self.ident_at(i + 1, hi) else {
            return i + 1;
        };
        let name = self.text(name_ci).to_string();
        let mut j = name_ci + 1;
        if j < hi && self.text(j) == "<" {
            match self.skip_generics(j, hi) {
                Some(after) => j = after,
                None => return name_ci + 1,
            }
        }
        if j >= hi || self.text(j) != "(" {
            return name_ci + 1;
        }
        let Some(params_close) = self.close_of(j, hi, "(", ")") else {
            return name_ci + 1;
        };
        let params = self.params(j + 1, params_close);
        // Scan past return type / where clause to the body or `;`.
        let mut k = params_close + 1;
        let mut body = None;
        while k < hi {
            match self.text(k) {
                ";" => break,
                "{" => {
                    let close = self
                        .close_of(k, hi, "{", "}")
                        .unwrap_or(hi.saturating_sub(1));
                    body = Some((k, close));
                    break;
                }
                _ => k += 1,
            }
        }
        let calls = match body {
            Some((blo, bhi)) => self.calls_in(blo + 1, bhi),
            None => Vec::new(),
        };
        let head = self.tok(name_ci);
        let type_qualified = match self_ty {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        let item = FnItem {
            name,
            type_qualified,
            module: module.to_vec(),
            line: head.line,
            col: head.col,
            in_test: self.is_test(name_ci),
            params,
            body: body.map(|(blo, bhi)| (self.code[blo], self.code[bhi.min(self.code.len() - 1)])),
            calls,
        };
        self.out.fns.push(item);
        match body {
            Some((_, bhi)) => bhi + 1,
            None => (params_close + 1).max(i + 1),
        }
    }

    /// Parameters between the parens of a fn signature.
    fn params(&self, lo: usize, hi: usize) -> Vec<Param> {
        let mut out = Vec::new();
        let mut start = lo;
        let mut depth = 0i64;
        let mut j = lo;
        while j <= hi {
            let at_end = j == hi;
            let t = if at_end { "," } else { self.text(j) };
            match t {
                "(" | "[" | "{" | "<" if !at_end => depth += 1,
                ")" | "]" | "}" | ">" if !at_end => depth -= 1,
                "," if depth <= 0 => {
                    if start < j {
                        if let Some(p) = self.param(start, j) {
                            out.push(p);
                        }
                    }
                    start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        out
    }

    /// One parameter: `pattern : type` (or a bare `self` receiver).
    fn param(&self, lo: usize, hi: usize) -> Option<Param> {
        // Split at the first top-level `:`.
        let mut depth = 0i64;
        let mut colon = None;
        for j in lo..hi {
            match self.text(j) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" if depth <= 0 => {
                    // `::` is not a pattern/type separator.
                    if (j + 1 < hi && self.text(j + 1) == ":")
                        || (j > lo && self.text(j - 1) == ":")
                    {
                        continue;
                    }
                    colon = Some(j);
                    break;
                }
                _ => {}
            }
        }
        match colon {
            Some(c) => {
                // Binding name: last plain ident of the pattern side
                // (`mut rng` → rng, `&mut self` → self).
                let name = (lo..c)
                    .rev()
                    .find_map(|j| {
                        let t = self.text(j);
                        (self.tok(j).kind == TokenKind::Ident
                            && !matches!(t, "mut" | "ref" | "box"))
                        .then(|| t.to_string())
                    })
                    .unwrap_or_else(|| "_".to_string());
                Some(Param {
                    name,
                    ty: self.span_text(c + 1, hi),
                })
            }
            None => {
                // Receiver shorthand: `self`, `&self`, `&mut self`.
                let has_self = (lo..hi).any(|j| self.text(j) == "self");
                has_self.then(|| Param {
                    name: "self".to_string(),
                    ty: String::new(),
                })
            }
        }
    }

    /// Harvests call sites from a body range. Recognizes
    /// `seg(::seg)* (` path calls and `.name(` method calls; nested
    /// calls are found because the scan is linear over every token.
    fn calls_in(&self, lo: usize, hi: usize) -> Vec<CallSite> {
        let mut out = Vec::new();
        let mut j = lo;
        while j < hi.min(self.code.len()) {
            if self.tok(j).kind != TokenKind::Ident || !is_plain_ident(self.text(j)) {
                j += 1;
                continue;
            }
            // Extend the path: ident (:: ident)*.
            let start = j;
            let mut segs = vec![self.text(j).to_string()];
            let mut k = j + 1;
            while k + 2 < hi
                && self.text(k) == ":"
                && self.text(k + 1) == ":"
                && self.tok(k + 2).kind == TokenKind::Ident
                && is_plain_ident(self.text(k + 2))
            {
                segs.push(self.text(k + 2).to_string());
                k += 3;
            }
            // Skip a turbofish between the path and the parens:
            // `sum::<f64>()` arrives here with segs=[sum] at `<`.
            let mut call_paren = k;
            if k < hi && self.text(k) == ":" && k + 1 < hi && self.text(k + 1) == ":" {
                // `path::<...>` — generic args after the path.
                if k + 2 < hi && self.text(k + 2) == "<" {
                    match self.skip_generics(k + 2, hi) {
                        Some(after) => call_paren = after,
                        None => {
                            j = k + 2;
                            continue;
                        }
                    }
                }
            }
            let is_call = call_paren < hi && self.text(call_paren) == "(";
            if is_call {
                let method = start > 0 && self.text(start - 1) == ".";
                let receiver = if method {
                    let rlo = start.saturating_sub(4).max(lo.saturating_sub(1));
                    (rlo..start.saturating_sub(1))
                        .map(|r| self.text(r).to_string())
                        .collect()
                } else {
                    Vec::new()
                };
                let head = self.tok(start);
                out.push(CallSite {
                    path: if method {
                        vec![segs.last().cloned().unwrap_or_default()]
                    } else {
                        segs
                    },
                    method,
                    receiver,
                    line: head.line,
                    col: head.col,
                });
            }
            j = k.max(j + 1);
        }
        out
    }

    /// `struct|enum|union Name ...` — records the name, skips the body.
    fn type_item(&mut self, i: usize, hi: usize, module: &[String]) -> usize {
        let Some(name_ci) = self.ident_at(i + 1, hi) else {
            return i + 1;
        };
        let head = self.tok(name_ci);
        self.out.types.push(TypeItem {
            name: self.text(name_ci).to_string(),
            module: module.to_vec(),
            line: head.line,
            col: head.col,
        });
        self.skip_item_body(name_ci + 1, hi)
    }

    /// `trait Name { default methods }` — methods get `Name::method`.
    fn trait_item(&mut self, i: usize, hi: usize, module: &mut Vec<String>) -> usize {
        let Some(name_ci) = self.ident_at(i + 1, hi) else {
            return i + 1;
        };
        let name = self.text(name_ci).to_string();
        let head = self.tok(name_ci);
        self.out.types.push(TypeItem {
            name: name.clone(),
            module: module.clone(),
            line: head.line,
            col: head.col,
        });
        let mut j = name_ci + 1;
        while j < hi {
            match self.text(j) {
                ";" => return j + 1,
                "{" => {
                    let close = self.close_of(j, hi, "{", "}").unwrap_or(hi);
                    self.items(j + 1, close.min(hi), module, Some(&name));
                    return close.saturating_add(1).min(hi.max(j + 1));
                }
                _ => j += 1,
            }
        }
        hi
    }

    /// `impl [<G>] Type { ... }` or `impl [<G>] Trait for Type { ... }`.
    fn impl_item(&mut self, i: usize, hi: usize, module: &mut Vec<String>) -> usize {
        let mut j = i + 1;
        if j < hi && self.text(j) == "<" {
            match self.skip_generics(j, hi) {
                Some(after) => j = after,
                None => return i + 1,
            }
        }
        // Collect idents up to `{`; the self type is the last ident
        // before the brace (after `for` when present), ignoring generic
        // arguments.
        let mut self_ty: Option<String> = None;
        let mut depth = 0i64;
        while j < hi {
            match self.text(j) {
                "{" if depth <= 0 => break,
                ";" if depth <= 0 => return j + 1,
                "<" => depth += 1,
                ">" => depth -= 1,
                "-" if j + 1 < hi && self.text(j + 1) == ">" => j += 1,
                "where" if depth <= 0 => {}
                t if self.tok(j).kind == TokenKind::Ident && depth <= 0 && is_plain_ident(t) => {
                    self_ty = Some(t.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        if j >= hi {
            return hi;
        }
        let close = self.close_of(j, hi, "{", "}").unwrap_or(hi);
        let ty = self_ty.unwrap_or_else(|| "_impl".to_string());
        self.items(j + 1, close.min(hi), module, Some(&ty));
        close.saturating_add(1).min(hi.max(j + 1))
    }

    /// `static [mut] NAME: Ty = init;` / `const NAME: Ty = init;`
    /// (`const fn` is routed back to `fn_item`).
    fn static_item(&mut self, i: usize, hi: usize, module: &[String]) -> usize {
        let is_static = self.text(i) == "static";
        let mut j = i + 1;
        let mutable = j < hi && self.text(j) == "mut";
        if mutable {
            j += 1;
        }
        if j < hi && self.text(j) == "fn" {
            // `const fn` — a fn item wearing a qualifier.
            return self.fn_item(j, hi, module, None);
        }
        let Some(name_ci) = self.ident_at(j, hi) else {
            return i + 1;
        };
        // Type text: between `:` and the top-level `=` or `;`.
        let mut k = name_ci + 1;
        let mut ty_lo = None;
        let mut ty = String::new();
        let mut depth = 0i64;
        while k < hi {
            match self.text(k) {
                ":" if depth <= 0 && ty_lo.is_none() => ty_lo = Some(k + 1),
                "=" | ";" if depth <= 0 => {
                    if let Some(lo) = ty_lo {
                        ty = self.span_text(lo, k);
                    }
                    break;
                }
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let head = self.tok(name_ci);
        self.out.statics.push(StaticItem {
            name: self.text(name_ci).to_string(),
            module: module.to_vec(),
            is_static,
            mutable,
            ty,
            line: head.line,
            col: head.col,
            in_test: self.is_test(name_ci),
        });
        // Skip the initializer to the terminating `;` (delimiter-aware:
        // closure bodies may contain semicolons inside braces).
        let mut depth2 = 0i64;
        while k < hi {
            match self.text(k) {
                "(" | "[" | "{" => depth2 += 1,
                ")" | "]" | "}" => depth2 -= 1,
                ";" if depth2 <= 0 => return k + 1,
                _ => {}
            }
            k += 1;
        }
        hi
    }

    /// Skips a type body: to the matching `}` of the first top-level
    /// `{`, or to a top-level `;` (tuple structs end `);`).
    fn skip_item_body(&mut self, i: usize, hi: usize) -> usize {
        let mut j = i;
        let mut depth = 0i64;
        while j < hi {
            match self.text(j) {
                "{" if depth <= 0 => {
                    return match self.close_of(j, hi, "{", "}") {
                        Some(c) => c + 1,
                        None => hi,
                    };
                }
                ";" if depth <= 0 => return j + 1,
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "-" if j + 1 < hi && self.text(j + 1) == ">" => j += 1,
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// `use path::to::{a, b as c, nested::{d}, *};` — expands the tree
    /// into flat [`UseEntry`]s.
    fn use_tree(&mut self, i: usize, hi: usize) -> usize {
        // Find the terminating `;` first (delimiter-aware for `{}`).
        let mut end = i + 1;
        let mut depth = 0i64;
        while end < hi {
            match self.text(end) {
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {}
            }
            end += 1;
        }
        let head = self.tok(i);
        let in_test = self.is_test(i);
        let mut prefix = Vec::new();
        self.use_leaves(i + 1, end, &mut prefix, head.line, head.col, in_test);
        end + 1
    }

    /// Recursive walk of one use-tree level. `lo..hi` covers one
    /// `seg::seg::{...}` alternative (no top-level commas when called
    /// from `use_tree`; commas are split in the `{...}` branch).
    fn use_leaves(
        &mut self,
        lo: usize,
        hi: usize,
        prefix: &mut Vec<String>,
        line: u32,
        col: u32,
        in_test: bool,
    ) {
        let depth_guard = prefix.len();
        if depth_guard > 32 {
            return; // hostile nesting: bail, never recurse unboundedly
        }
        let mut segs: Vec<String> = Vec::new();
        let mut alias: Option<String> = None;
        let mut j = lo;
        while j < hi {
            let t = self.text(j);
            match t {
                "::" => {}
                ":" => {}
                "as" => {
                    if let Some(a) = self.ident_at(j + 1, hi) {
                        alias = Some(self.text(a).to_string());
                        j = a;
                    }
                }
                "*" => {
                    let mut path = prefix.clone();
                    path.extend(segs.iter().cloned());
                    self.out.uses.push(UseEntry {
                        local: "*".to_string(),
                        path,
                        line,
                        col,
                        in_test,
                    });
                }
                "{" => {
                    let close = self.close_of(j, hi, "{", "}").unwrap_or(hi);
                    // Split the group at top-level commas.
                    let added = segs.len();
                    prefix.append(&mut segs);
                    let mut part = j + 1;
                    let mut d = 0i64;
                    let mut k = j + 1;
                    while k <= close.min(hi) {
                        let at_end = k == close.min(hi);
                        let tk = if at_end { "," } else { self.text(k) };
                        match tk {
                            "{" if !at_end => d += 1,
                            "}" if !at_end => d -= 1,
                            "," if d <= 0 => {
                                if part < k {
                                    self.use_leaves(part, k, prefix, line, col, in_test);
                                }
                                part = k + 1;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    for _ in 0..added {
                        prefix.pop();
                    }
                    return;
                }
                _ if self.tok(j).kind == TokenKind::Ident && is_plain_ident(t) => {
                    segs.push(t.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        if !segs.is_empty() {
            let local = alias.unwrap_or_else(|| segs.last().cloned().unwrap_or_default());
            let mut path = prefix.clone();
            path.extend(segs);
            self.out.uses.push(UseEntry {
                local,
                path,
                line,
                col,
                in_test,
            });
        }
    }
}

/// Idents that can head a path (excludes keywords the item scanner
/// dispatches on, so `fn (` soup does not double-parse).
fn is_plain_ident(t: &str) -> bool {
    !matches!(
        t,
        "fn" | "struct"
            | "enum"
            | "trait"
            | "impl"
            | "mod"
            | "use"
            | "static"
            | "const"
            | "union"
            | "where"
            | "for"
            | "as"
            | "pub"
            | "let"
            | "mut"
            | "ref"
            | "if"
            | "else"
            | "match"
            | "while"
            | "loop"
            | "return"
            | "in"
            | "move"
            | "dyn"
            | "unsafe"
            | "async"
            | "await"
            | "self"
            | "Self"
            | "super"
            | "crate"
    )
}

/// Whether flattened text needs a separating space between `prev` (last
/// byte of accumulated text) and `next` token text.
fn needs_space(prev: Option<u8>, next: &str) -> bool {
    let p = match prev {
        Some(p) => p,
        None => return false,
    };
    let n = match next.bytes().next() {
        Some(n) => n,
        None => return false,
    };
    let word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    word(p) && word(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileItems {
        let toks = lex(src);
        let flags = vec![false; toks.len()];
        parse(&toks, &flags)
    }

    #[test]
    fn free_fn_with_params_and_calls() {
        let items = parse_src(
            "pub fn run<R: Rng + ?Sized>(tags: &mut [Tag], rng: &mut R) -> u32 {\n\
             let x = rng.gen_bool(0.5);\n\
             helper::go(x);\n\
             0\n}\n",
        );
        assert_eq!(items.fns.len(), 1);
        let f = &items.fns[0];
        assert_eq!(f.name, "run");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].name, "rng");
        assert_eq!(f.params[1].ty, "&mut R");
        let names: Vec<String> = f.calls.iter().map(|c| c.path.join("::")).collect();
        assert!(names.contains(&"gen_bool".to_string()), "{names:?}");
        assert!(names.contains(&"helper::go".to_string()), "{names:?}");
    }

    #[test]
    fn impl_methods_are_type_qualified() {
        let items = parse_src(
            "impl<R> Reader<R> {\n    pub fn execute(&mut self) { self.step(); }\n}\n\
             impl FrameSizer for QAdapt {\n    fn current_q(&self) -> u8 { 4 }\n}\n",
        );
        let quals: Vec<&str> = items
            .fns
            .iter()
            .map(|f| f.type_qualified.as_str())
            .collect();
        assert_eq!(quals, vec!["Reader::execute", "QAdapt::current_q"]);
        assert_eq!(items.fns[0].params[0].name, "self");
    }

    #[test]
    fn method_call_receiver_window_sees_self_rng() {
        let items = parse_src("fn f(&mut self) { self.rng.gen_bool(0.1); }\n");
        let call = items.fns[0]
            .calls
            .iter()
            .find(|c| c.path == ["gen_bool"])
            .expect("draw call");
        assert!(call.method);
        assert!(call.receiver.iter().any(|r| r == "rng"), "{call:?}");
    }

    #[test]
    fn nested_modules_compose_paths() {
        let items = parse_src("mod outer { mod inner { fn leaf() {} } fn mid() {} }\n");
        let by_name: Vec<(String, Vec<String>)> = items
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.module.clone()))
            .collect();
        assert!(by_name.contains(&("leaf".to_string(), vec!["outer".into(), "inner".into()])));
        assert!(by_name.contains(&("mid".to_string(), vec!["outer".into()])));
    }

    #[test]
    fn statics_and_consts() {
        let items = parse_src(
            "static GLOBAL: OnceLock<Telemetry> = OnceLock::new();\n\
             static mut COUNTER: u64 = 0;\n\
             const LIMIT: usize = 10;\n\
             const fn f() {}\n",
        );
        assert_eq!(items.statics.len(), 3);
        assert_eq!(items.statics[0].name, "GLOBAL");
        assert_eq!(items.statics[0].ty, "OnceLock<Telemetry>");
        assert!(items.statics[0].is_static && !items.statics[0].mutable);
        assert!(items.statics[1].is_static && items.statics[1].mutable);
        assert!(!items.statics[2].is_static);
        assert_eq!(items.fns.len(), 1, "const fn routed to fn_item");
    }

    #[test]
    fn use_trees_flatten() {
        let items = parse_src(
            "use std::sync::{Arc, Mutex as Lock};\n\
             use tagwatch_telemetry::clock::wall_now;\n\
             use rand::*;\n",
        );
        let have: Vec<(String, String)> = items
            .uses
            .iter()
            .map(|u| (u.local.clone(), u.path.join("::")))
            .collect();
        assert!(have.contains(&("Arc".into(), "std::sync::Arc".into())));
        assert!(have.contains(&("Lock".into(), "std::sync::Mutex".into())));
        assert!(have.contains(&(
            "wall_now".into(),
            "tagwatch_telemetry::clock::wall_now".into()
        )));
        assert!(have.contains(&("*".into(), "rand".into())));
    }

    #[test]
    fn turbofish_sum_is_a_call() {
        let items = parse_src("fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n");
        let names: Vec<String> = items.fns[0]
            .calls
            .iter()
            .map(|c| c.path.join("::"))
            .collect();
        assert!(names.contains(&"sum".to_string()), "{names:?}");
    }

    #[test]
    fn hostile_soup_terminates() {
        for src in [
            "fn fn fn (((",
            "impl impl for for { fn }",
            "use ::::{{{{",
            "mod m { mod m { mod m {",
            "static : = ;;; const const",
            "trait T { fn a(; }",
            "fn f(x: Vec<Vec<Vec<u8>>",
        ] {
            let _ = parse_src(src);
        }
    }

    #[test]
    fn trait_default_methods_qualify() {
        let items = parse_src("trait Sizer { fn q(&self) -> u8 { 0 } fn sized(&self); }\n");
        let quals: Vec<&str> = items
            .fns
            .iter()
            .map(|f| f.type_qualified.as_str())
            .collect();
        assert_eq!(quals, vec!["Sizer::q", "Sizer::sized"]);
        assert!(items.fns[1].body.is_none());
    }
}
