//! Workspace source discovery and file classification.
//!
//! Walks the workspace for `.rs` files in a deterministic (sorted) order
//! and classifies each by the role its path implies — the rule engine
//! keys applicability off [`FileKind`] and the owning crate.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What role a source file plays, by its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under some `src/` (not `src/bin/`).
    Library,
    /// Binary code under `src/bin/`.
    Bin,
    /// Integration tests under a `tests/` directory.
    Test,
    /// Criterion benches under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
    /// Dev-only tooling and offline shims under `tools/`. Linted for
    /// safety/determinism hygiene (unsafe-free, wallclock, todo-tracker)
    /// but exempt from the library panic/debug policies — shims
    /// legitimately stub with `panic!`.
    Tool,
}

/// One discovered source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Absolute path on disk.
    pub abs: PathBuf,
    pub kind: FileKind,
    /// Owning crate name (`core`, `gen2`, … for `crates/<name>/…`;
    /// `<root>` for the workspace root package).
    pub crate_name: String,
    /// Whether this file is a crate root (`src/lib.rs`).
    pub is_crate_root: bool,
}

/// Directories never walked into, anywhere in the tree.
const SKIP_DIRS: &[&str] = &["target", "out", ".git"];

/// Workspace-relative prefixes excluded from linting: the shadow-
/// workspace stub copy and the lint test fixtures — which *deliberately*
/// violate every rule. (`tools/` *is* linted, as [`FileKind::Tool`].)
const SKIP_PREFIXES: &[&str] = &["stubs/", "tests/lint/"];

/// Classifies a workspace-relative path. Returns `None` for files the
/// linter does not own (skipped prefixes, non-`.rs`).
pub fn classify(rel: &str) -> Option<(FileKind, String, bool)> {
    if !rel.ends_with(".rs") || SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return None;
    }
    if let Some(tail) = rel.strip_prefix("tools/") {
        // `tools/offline/stubs/rand/src/lib.rs` → crate `rand`; the
        // crate name is the path segment before `src/`.
        let crate_name = tail
            .split("/src/")
            .next()
            .and_then(|head| head.rsplit('/').next())
            .unwrap_or("tools")
            .to_string();
        let is_crate_root = tail.ends_with("/src/lib.rs");
        return Some((FileKind::Tool, crate_name, is_crate_root));
    }
    let (crate_name, tail) = match rel.strip_prefix("crates/") {
        Some(rest) => {
            let (name, tail) = rest.split_once('/')?;
            (name.to_string(), tail)
        }
        None => ("<root>".to_string(), rel),
    };
    let kind = if tail.starts_with("src/bin/") {
        FileKind::Bin
    } else if tail.starts_with("src/") {
        FileKind::Library
    } else if tail.starts_with("tests/") {
        FileKind::Test
    } else if tail.starts_with("benches/") {
        FileKind::Bench
    } else if tail.starts_with("examples/") {
        FileKind::Example
    } else {
        // build.rs and other stray roots: treat as bin-like (host-side).
        FileKind::Bin
    };
    let is_crate_root = tail == "src/lib.rs";
    Some((kind, crate_name, is_crate_root))
}

/// Recursively collects every classifiable `.rs` file under `root`,
/// sorted by relative path so diagnostics and exit codes are stable.
pub fn walk(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Some((kind, crate_name, is_crate_root)) = classify(&rel) {
                out.push(SourceFile {
                    rel,
                    abs: path.clone(),
                    kind,
                    crate_name,
                    is_crate_root,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        let cases = [
            ("crates/core/src/lib.rs", FileKind::Library, "core", true),
            ("crates/core/src/gmm.rs", FileKind::Library, "core", false),
            (
                "crates/bench/src/bin/repro.rs",
                FileKind::Bin,
                "bench",
                false,
            ),
            ("crates/obs/benches/b.rs", FileKind::Bench, "obs", false),
            ("src/lib.rs", FileKind::Library, "<root>", true),
            ("src/bin/tagwatch_sim.rs", FileKind::Bin, "<root>", false),
            ("tests/prop_gen2.rs", FileKind::Test, "<root>", false),
            ("examples/quickstart.rs", FileKind::Example, "<root>", false),
        ];
        for (rel, kind, name, root) in cases {
            let (k, n, r) = classify(rel).expect(rel);
            assert_eq!(k, kind, "{rel}");
            assert_eq!(n, name, "{rel}");
            assert_eq!(r, root, "{rel}");
        }
    }

    #[test]
    fn skips_fixtures_shims_and_non_rust() {
        assert!(classify("tests/lint/fixtures/panic_policy.rs").is_none());
        assert!(classify("stubs/rand/src/lib.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn tools_classify_as_tool_kind_with_crate_roots() {
        let (k, n, root) = classify("tools/offline/stubs/rand/src/lib.rs").expect("tool");
        assert_eq!(k, FileKind::Tool);
        assert_eq!(n, "rand");
        assert!(root);
        let (k, _, root) = classify("tools/offline/stubs/serde/src/de.rs").expect("tool");
        assert_eq!(k, FileKind::Tool);
        assert!(!root);
    }
}
