//! The workspace symbol + call graph.
//!
//! Built from every file's [`FileItems`], the graph gives each fn a
//! deterministic fully-qualified key (`crate::module::Type::fn`), links
//! call sites to candidate callees, and computes reachability from the
//! round-engine roots. Everything is ordered (`BTreeMap`/sorted `Vec`),
//! so two builds over the same sources are byte-identical — the
//! `lint graph --json` export is diffable and CI `cmp`s two runs.
//!
//! Resolution is heuristic and *over-approximate by design*:
//!
//! * path calls (`a::b::f(...)`) resolve by exact key match, then by
//!   `::`-boundary suffix match (so `round::run_round` finds
//!   `gen2::round::run_round`), with `tagwatch_*` crate-name prefixes
//!   normalized to workspace crate names;
//! * method calls (`.f(...)`) resolve to every impl/trait method of
//!   that name in the workspace — minus a stoplist of ubiquitous names
//!   (`new`, `clone`, `len`, …) that would connect everything to
//!   everything;
//! * unresolved calls (std, external crates) produce no edge; the deep
//!   rules scan those token-level, so nothing banned hides behind a
//!   missing edge.
//!
//! Over-approximation errs toward marking *more* symbols hot-path,
//! which errs toward *more* audit findings — the safe direction for a
//! parallelism-readiness gate.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::FileItems;
use crate::walker::FileKind;

/// Schema tag stamped into the `lint graph --json` export. Bump on any
/// field change.
pub const GRAPH_SCHEMA: &str = "tagwatch.lint.graph/v1";

/// Hot-path roots: the symbols fleet parallelism must treat as the
/// unit of per-thread work. A trailing `::` makes an entry a prefix
/// (every fn under that module/type); otherwise the match is exact.
pub const HOT_PATH_ROOTS: &[&str] = &[
    "gen2::round::",
    "reader::reader::Reader::execute",
    "reader::reader::Reader::run_for",
    "core::controller::Controller::run_cycle",
    "core::controller::Controller::run_cycles",
];

/// Method names too generic to resolve by name alone: linking these
/// would connect the whole workspace through `new`/`clone`/`len`.
const METHOD_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "clear",
    "as_str",
    "as_ref",
    "as_mut",
    "as_bytes",
    "to_string",
    "to_vec",
    "to_owned",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "min",
    "max",
    "abs",
    "sqrt",
    "floor",
    "ceil",
    "round",
    "clamp",
    "extend",
    "sort",
    "sort_by",
    "sort_by_key",
    "rev",
    "filter",
    "collect",
    "from",
    "into",
    "expect",
    "unwrap",
    "write",
    "read",
    "finish",
    "take",
    "replace",
    "with_capacity",
    "split",
    "join",
    "starts_with",
    "ends_with",
    "trim",
    "parse",
];

/// Identity and location of one fn symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Deterministic fully-qualified key:
    /// `crate::module::Type::fn` (`@line` suffix on collision).
    pub key: String,
    /// Bare fn name (last path segment).
    pub name: String,
    /// Owning workspace crate (`gen2`, `core`, …; `repro` for the root
    /// package).
    pub crate_name: String,
    /// Workspace-relative file.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Declared inside an `impl`/`trait` block (method position).
    pub is_method: bool,
    /// Inside a `#[test]`/`#[cfg(test)]` region.
    pub test: bool,
    /// Index of the owning file in the build input.
    pub file_idx: usize,
    /// Index into that file's `items.fns`.
    pub fn_idx: usize,
}

/// Per-file metadata the graph builder needs (a trimmed
/// [`crate::walker::SourceFile`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    pub rel: String,
    pub crate_name: String,
    pub kind: FileKind,
}

/// The built graph: symbols (sorted by key), call edges, reachability.
#[derive(Debug, Clone, Default)]
pub struct SymbolGraph {
    /// Sorted by `key`.
    pub symbols: Vec<Symbol>,
    /// Edges as (caller, callee) symbol indices, deduplicated + sorted.
    pub edges: BTreeSet<(usize, usize)>,
    /// Symbol indices matched by [`HOT_PATH_ROOTS`].
    pub roots: Vec<usize>,
    /// Per-symbol: reachable from the roots (roots included),
    /// traversing non-test symbols only.
    pub hot: Vec<bool>,
}

impl SymbolGraph {
    /// Builds the graph over `(meta, items)` per file, in input order.
    /// Input order only affects `@line` collision suffixes; symbol
    /// order is always the sorted key order.
    pub fn build(files: &[(FileMeta, &FileItems)]) -> SymbolGraph {
        let mut symbols: Vec<Symbol> = Vec::new();
        let mut taken: BTreeSet<String> = BTreeSet::new();
        for (file_idx, (meta, items)) in files.iter().enumerate() {
            let crate_disp = display_crate(&meta.crate_name);
            let file_mod = file_module(&meta.rel, &meta.crate_name);
            for (fn_idx, f) in items.fns.iter().enumerate() {
                let mut parts: Vec<&str> = Vec::new();
                parts.push(&crate_disp);
                parts.extend(file_mod.iter().map(String::as_str));
                parts.extend(f.module.iter().map(String::as_str));
                parts.push(&f.type_qualified);
                let mut key = parts.join("::");
                if taken.contains(&key) {
                    key = format!("{key}@{}", f.line);
                }
                // Rare double collision (same name, same line across
                // shadowed parses): make unique by index, still
                // deterministic.
                while taken.contains(&key) {
                    key.push('+');
                }
                taken.insert(key.clone());
                symbols.push(Symbol {
                    key,
                    name: f.name.clone(),
                    crate_name: crate_disp.clone(),
                    file: meta.rel.clone(),
                    line: f.line,
                    col: f.col,
                    is_method: f.type_qualified.contains("::"),
                    test: f.in_test,
                    file_idx,
                    fn_idx,
                });
            }
        }
        symbols.sort_by(|a, b| a.key.cmp(&b.key));

        // Name indexes for resolution.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, s) in symbols.iter().enumerate() {
            by_name.entry(s.name.as_str()).or_default().push(i);
        }

        // Per-file import maps: local name → full path (joined).
        let mut use_maps: Vec<BTreeMap<&str, String>> = Vec::with_capacity(files.len());
        for (_, items) in files {
            let mut m = BTreeMap::new();
            for u in &items.uses {
                if u.local != "*" {
                    m.insert(u.local.as_str(), u.path.join("::"));
                }
            }
            use_maps.push(m);
        }

        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (ci, s) in symbols.iter().enumerate() {
            if s.test {
                continue;
            }
            let (_, items) = &files[s.file_idx];
            let f = &items.fns[s.fn_idx];
            for call in &f.calls {
                for callee in resolve(
                    call.method,
                    &call.path,
                    &symbols,
                    &by_name,
                    &use_maps[s.file_idx],
                ) {
                    if !symbols[callee].test {
                        edges.insert((ci, callee));
                    }
                }
            }
        }

        // Roots.
        let mut roots = Vec::new();
        for (i, s) in symbols.iter().enumerate() {
            if s.test {
                continue;
            }
            let is_root = HOT_PATH_ROOTS.iter().any(|r| {
                if let Some(prefix) = r.strip_suffix("::") {
                    s.key.starts_with(prefix) && s.key[prefix.len()..].starts_with("::")
                } else {
                    s.key == *r || s.key.starts_with(&format!("{r}@"))
                }
            });
            if is_root {
                roots.push(i);
            }
        }

        // BFS reachability over the (sorted, deterministic) edge set.
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(a, b) in &edges {
            adj.entry(a).or_default().push(b);
        }
        let mut hot = vec![false; symbols.len()];
        let mut work: Vec<usize> = roots.clone();
        for &r in &roots {
            hot[r] = true;
        }
        while let Some(n) = work.pop() {
            if let Some(nexts) = adj.get(&n) {
                for &m in nexts {
                    if !hot[m] {
                        hot[m] = true;
                        work.push(m);
                    }
                }
            }
        }

        SymbolGraph {
            symbols,
            edges,
            roots,
            hot,
        }
    }

    /// Index of the symbol for (file_idx, fn_idx), if any.
    pub fn symbol_of(&self, file_idx: usize, fn_idx: usize) -> Option<usize> {
        self.symbols
            .iter()
            .position(|s| s.file_idx == file_idx && s.fn_idx == fn_idx)
    }

    /// Whether the fn at (file_idx, fn_idx) is hot-path reachable.
    pub fn is_hot(&self, file_idx: usize, fn_idx: usize) -> bool {
        self.symbol_of(file_idx, fn_idx)
            .is_some_and(|i| self.hot[i])
    }
}

/// Resolves one call site to candidate symbol indices. Deterministic:
/// candidates come from sorted indexes and stay sorted.
fn resolve(
    method: bool,
    path: &[String],
    symbols: &[Symbol],
    by_name: &BTreeMap<&str, Vec<usize>>,
    uses: &BTreeMap<&str, String>,
) -> Vec<usize> {
    let Some(last) = path.last() else {
        return Vec::new();
    };
    if method {
        if METHOD_STOPLIST.contains(&last.as_str()) {
            return Vec::new();
        }
        return by_name
            .get(last.as_str())
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| symbols[i].is_method)
                    .collect()
            })
            .unwrap_or_default();
    }
    // Expand a leading import alias, then normalize a crate-name head.
    let mut segs: Vec<String> = path.to_vec();
    if let Some(full) = uses.get(segs[0].as_str()) {
        let mut expanded: Vec<String> = full.split("::").map(str::to_string).collect();
        expanded.extend(segs.drain(1..));
        segs = expanded;
    }
    if let Some(head) = segs.first_mut() {
        *head = normalize_crate(head);
    }
    let joined = segs.join("::");
    // Exact, then `::`-boundary suffix, on the candidates sharing the
    // final segment.
    let candidates = by_name.get(last.as_str()).cloned().unwrap_or_default();
    let exact: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| symbols[i].key == joined)
        .collect();
    if !exact.is_empty() {
        return exact;
    }
    let suffix = format!("::{joined}");
    let matched: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| symbols[i].key.ends_with(&suffix))
        .collect();
    if !matched.is_empty() || path.len() > 1 {
        return matched;
    }
    // Bare single-segment call with no qualified match: any free fn of
    // that name (same-file helpers are the common case).
    candidates
        .into_iter()
        .filter(|&i| !symbols[i].is_method)
        .collect()
}

/// Workspace crate name as used in symbol keys.
fn display_crate(crate_name: &str) -> String {
    if crate_name == "<root>" {
        "repro".to_string()
    } else {
        crate_name.to_string()
    }
}

/// Normalizes a path head that spells a package name to the workspace
/// crate name used in symbol keys (`tagwatch_gen2` → `gen2`,
/// `tagwatch` → `core`).
fn normalize_crate(head: &str) -> String {
    if head == "tagwatch" {
        return "core".to_string();
    }
    if head == "tagwatch_repro" {
        return "repro".to_string();
    }
    match head.strip_prefix("tagwatch_") {
        Some(rest) => rest.to_string(),
        None => head.to_string(),
    }
}

/// Module path a file contributes (between the crate name and any
/// inline `mod`s): `crates/gen2/src/round.rs` → `["round"]`.
fn file_module(rel: &str, crate_name: &str) -> Vec<String> {
    let tail = match crate_name {
        "<root>" => rel,
        name => rel
            .strip_prefix("crates/")
            .and_then(|r| r.strip_prefix(name))
            .and_then(|r| r.strip_prefix('/'))
            .unwrap_or(rel),
    };
    let stem = tail.strip_suffix(".rs").unwrap_or(tail);
    let mut parts: Vec<&str> = stem.split('/').collect();
    // `src/lib.rs`, `src/main.rs` → crate root; drop the src prefix and
    // `mod.rs` leaves.
    if parts.first() == Some(&"src") {
        parts.remove(0);
    }
    if parts.last() == Some(&"lib") || parts.last() == Some(&"main") {
        parts.pop();
    }
    if parts.last() == Some(&"mod") {
        parts.pop();
    }
    parts
        .into_iter()
        .map(|p| p.replace(['-', '.'], "_"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::lexer::lex;

    fn file(rel: &str, crate_name: &str, src: &str) -> (FileMeta, FileItems) {
        let toks = lex(src);
        let flags = vec![false; toks.len()];
        (
            FileMeta {
                rel: rel.to_string(),
                crate_name: crate_name.to_string(),
                kind: FileKind::Library,
            },
            items::parse(&toks, &flags),
        )
    }

    fn build(files: &[(FileMeta, FileItems)]) -> SymbolGraph {
        let refs: Vec<(FileMeta, &FileItems)> = files.iter().map(|(m, i)| (m.clone(), i)).collect();
        SymbolGraph::build(&refs)
    }

    #[test]
    fn keys_are_crate_module_qualified() {
        let g = build(&[file(
            "crates/gen2/src/round.rs",
            "gen2",
            "pub fn run_round() { helper(); }\nfn helper() {}\n",
        )]);
        let keys: Vec<&str> = g.symbols.iter().map(|s| s.key.as_str()).collect();
        assert_eq!(keys, vec!["gen2::round::helper", "gen2::round::run_round"]);
    }

    #[test]
    fn cross_file_path_call_resolves_and_reaches() {
        let g = build(&[
            file(
                "crates/gen2/src/round.rs",
                "gen2",
                "pub fn run_round() { crate::epc::decode(); }\n",
            ),
            file(
                "crates/gen2/src/epc.rs",
                "gen2",
                "pub fn decode() { deep(); }\npub fn deep() {}\npub fn unrelated() {}\n",
            ),
        ]);
        let hot: Vec<&str> = g
            .symbols
            .iter()
            .enumerate()
            .filter(|&(i, _)| g.hot[i])
            .map(|(_, s)| s.key.as_str())
            .collect();
        assert!(hot.contains(&"gen2::round::run_round"), "{hot:?}");
        assert!(hot.contains(&"gen2::epc::decode"), "{hot:?}");
        assert!(hot.contains(&"gen2::epc::deep"), "{hot:?}");
        assert!(!hot.contains(&"gen2::epc::unrelated"), "{hot:?}");
    }

    #[test]
    fn method_calls_link_by_name_with_stoplist() {
        let g = build(&[
            file(
                "crates/gen2/src/round.rs",
                "gen2",
                "pub fn run_round(t: &mut Tag) { t.handle_query(); t.clone(); }\n",
            ),
            file(
                "crates/gen2/src/tag.rs",
                "gen2",
                "impl Tag { pub fn handle_query(&mut self) {} pub fn clone(&self) {} }\n",
            ),
        ]);
        let hot: Vec<&str> = g
            .symbols
            .iter()
            .enumerate()
            .filter(|&(i, _)| g.hot[i])
            .map(|(_, s)| s.key.as_str())
            .collect();
        assert!(hot.contains(&"gen2::tag::Tag::handle_query"), "{hot:?}");
        // `clone` is stoplisted: no edge even though an impl exists.
        assert!(!hot.contains(&"gen2::tag::Tag::clone"), "{hot:?}");
    }

    #[test]
    fn test_fns_are_never_hot() {
        let src = "pub fn run_round() { helper(); }\nfn helper() {}\n";
        let toks = lex(src);
        // Pretend everything is test-gated.
        let flags = vec![true; toks.len()];
        let items = items::parse(&toks, &flags);
        let meta = FileMeta {
            rel: "crates/gen2/src/round.rs".into(),
            crate_name: "gen2".into(),
            kind: FileKind::Library,
        };
        let g = SymbolGraph::build(&[(meta, &items)]);
        assert!(g.roots.is_empty());
        assert!(g.hot.iter().all(|&h| !h));
    }

    #[test]
    fn use_alias_expansion() {
        let g = build(&[
            file(
                "crates/core/src/controller.rs",
                "core",
                "use tagwatch_gen2::round::run_round;\n\
                 impl Controller { pub fn run_cycle(&mut self) { run_round(); } }\n",
            ),
            file(
                "crates/gen2/src/round.rs",
                "gen2",
                "pub fn run_round() {}\n",
            ),
        ]);
        let i = g
            .symbols
            .iter()
            .position(|s| s.key == "gen2::round::run_round")
            .expect("symbol");
        assert!(g.hot[i], "alias-resolved edge should mark callee hot");
    }

    #[test]
    fn build_is_deterministic() {
        let files = [
            file(
                "crates/gen2/src/round.rs",
                "gen2",
                "pub fn run_round() { a(); b(); }\nfn a() {}\nfn b() { a(); }\n",
            ),
            file("crates/rf/src/channel.rs", "rf", "pub fn evaluate() {}\n"),
        ];
        let g1 = build(&files);
        let g2 = build(&files);
        assert_eq!(g1.symbols, g2.symbols);
        assert_eq!(g1.edges, g2.edges);
        assert_eq!(g1.hot, g2.hot);
    }
}
