//! A minimal, panic-free Rust lexer.
//!
//! Just enough lexical structure to tell *code* apart from places where
//! banned names are harmless — line and block comments (nested), string
//! and byte-string literals, raw strings with any `#` count, char
//! literals, and lifetimes. No `syn`, no proc-macro machinery: the linter
//! must build std-only, offline, before everything else.
//!
//! Guarantees (property-tested in `tests/prop_lint.rs`):
//! * never panics, for arbitrary input — including invalid UTF-8 handed
//!   in as lossily-converted text, unterminated literals, and stray `\r`;
//! * always terminates: every loop iteration consumes at least one char;
//! * token spans are non-overlapping, in order, and line/column positions
//!   are 1-based and consistent with the input.

/// What a token is, at the granularity linting needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A single punctuation character.
    Punct,
    /// Numeric literal (approximate: digits plus alphanumeric suffix).
    Number,
    /// `// ...` including doc comments (`///`, `//!`), without the newline.
    LineComment,
    /// `/* ... */`, nested, possibly unterminated at EOF.
    BlockComment,
    /// `"..."`, `b"..."`, or `c"..."` with escapes; may be unterminated.
    Str,
    /// `r"..."`, `r#"..."#`, `br…`, `cr…`; may be unterminated.
    RawStr,
    /// `'x'`, including escaped chars.
    Char,
    /// `'ident` with no closing quote.
    Lifetime,
}

/// One lexed token with its position and text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokenKind,
    /// The token's text, sliced from the input.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based character column of the token's first character.
    pub col: u32,
}

/// Lexes `src` into tokens, skipping whitespace. Infallible: any byte
/// sequence produces *some* token stream.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars.get(idx).map_or(self.src.len(), |&(b, _)| b)
    }

    /// Consumes one char, maintaining line/column accounting.
    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let kind = self.scan_token(c);
            let text = &self.src[self.byte_at(start)..self.byte_at(self.pos)];
            out.push(Token {
                kind,
                text,
                line,
                col,
            });
        }
        out
    }

    /// Scans one token starting at `c`; always consumes ≥ 1 char.
    fn scan_token(&mut self, c: char) -> TokenKind {
        // Comments.
        if c == '/' {
            match self.peek(1) {
                Some('/') => return self.scan_line_comment(),
                Some('*') => return self.scan_block_comment(),
                _ => {
                    self.bump();
                    return TokenKind::Punct;
                }
            }
        }
        // String-literal prefixes: r"", r#""#, b"", br"", c"", cr"" — and
        // raw identifiers r#ident.
        if matches!(c, 'r' | 'b' | 'c') {
            if let Some(kind) = self.try_scan_prefixed_literal() {
                return kind;
            }
        }
        if c == '"' {
            return self.scan_str();
        }
        if c == '\'' {
            return self.scan_char_or_lifetime();
        }
        if c.is_ascii_digit() {
            return self.scan_number();
        }
        if is_ident_start(c) {
            self.scan_ident();
            return TokenKind::Ident;
        }
        self.bump();
        TokenKind::Punct
    }

    fn scan_line_comment(&mut self) -> TokenKind {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        TokenKind::LineComment
    }

    fn scan_block_comment(&mut self) -> TokenKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated at EOF
            }
        }
        TokenKind::BlockComment
    }

    /// `r` / `b` / `c` prefixes. Returns `None` when what follows is a
    /// plain identifier that merely starts with one of those letters.
    fn try_scan_prefixed_literal(&mut self) -> Option<TokenKind> {
        let c0 = self.peek(0)?;
        // Two-char prefixes `br` / `cr` first.
        let (raw, quote_at) = match (c0, self.peek(1)) {
            ('b' | 'c', Some('r')) => (true, 2),
            ('r', _) => (true, 1),
            ('b' | 'c', _) => (false, 1),
            _ => return None,
        };
        if raw {
            // r#ident (raw identifier, only bare `r`): `r` `#` ident-start.
            if c0 == 'r' && self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) {
                self.bump(); // r
                self.bump(); // #
                self.scan_ident();
                return Some(TokenKind::Ident);
            }
            // Count hashes after the prefix, then require a quote.
            let mut hashes = 0usize;
            while self.peek(quote_at + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(quote_at + hashes) != Some('"') {
                return None;
            }
            for _ in 0..quote_at + hashes + 1 {
                self.bump();
            }
            self.scan_raw_str_body(hashes);
            return Some(TokenKind::RawStr);
        }
        // b"..." / c"..." (and b'x').
        if self.peek(quote_at) == Some('"') {
            for _ in 0..quote_at {
                self.bump();
            }
            return Some(self.scan_str());
        }
        if c0 == 'b' && self.peek(quote_at) == Some('\'') {
            self.bump(); // b
            return Some(self.scan_char_or_lifetime());
        }
        None
    }

    /// Body of a raw string already past `r#*"`: runs to `"` + `hashes`
    /// `#`s, or EOF.
    fn scan_raw_str_body(&mut self, hashes: usize) {
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    /// A `"..."` string starting at the opening quote; handles `\"` and
    /// `\\`; tolerates EOF before the closing quote.
    fn scan_str(&mut self) -> TokenKind {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
        TokenKind::Str
    }

    /// `'` starts either a char literal or a lifetime. Heuristic (same as
    /// rustc's lexer): `'a` followed by another `'` is a char literal;
    /// `'a` followed by anything else is a lifetime; `'\` is always a
    /// char literal.
    fn scan_char_or_lifetime(&mut self) -> TokenKind {
        let next = self.peek(1);
        let lifetime = match next {
            Some(c) if is_ident_start(c) => self.peek(2) != Some('\''),
            _ => false,
        };
        self.bump(); // '
        if lifetime {
            self.scan_ident();
            return TokenKind::Lifetime;
        }
        // Char literal: consume escape or single char, then closing quote.
        if self.bump() == Some('\\') {
            self.bump();
            // Multi-char escapes (\x41, \u{..}) run to the quote.
            while let Some(c) = self.peek(0) {
                if c == '\'' || c == '\n' {
                    break;
                }
                self.bump();
            }
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        TokenKind::Char
    }

    fn scan_number(&mut self) -> TokenKind {
        self.bump();
        while let Some(c) = self.peek(0) {
            let continues = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !continues {
                break;
            }
            self.bump();
        }
        TokenKind::Number
    }

    fn scan_ident(&mut self) {
        self.bump();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("a.b()"),
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "b"),
                (TokenKind::Punct, "("),
                (TokenKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn comments_are_their_own_tokens() {
        let toks = kinds("x // unwrap() here\ny /* panic! *//*2*/ z");
        assert_eq!(toks[0], (TokenKind::Ident, "x"));
        assert_eq!(toks[1], (TokenKind::LineComment, "// unwrap() here"));
        assert_eq!(toks[2], (TokenKind::Ident, "y"));
        assert_eq!(toks[3], (TokenKind::BlockComment, "/* panic! */"));
        assert_eq!(toks[4], (TokenKind::BlockComment, "/*2*/"));
        assert_eq!(toks[5], (TokenKind::Ident, "z"));
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks[0], (TokenKind::BlockComment, "/* a /* b */ c */"));
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"f("unwrap()", 'x', "esc\"aped")"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || !t.contains("unwrap")));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"contains "quotes" and panic!"#;"###);
        let raw = toks.iter().find(|(k, _)| *k == TokenKind::RawStr).unwrap();
        assert!(raw.1.contains("panic!"));
        assert_eq!(*toks.last().unwrap(), (TokenKind::Punct, ";"));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"b"bytes" c"cstr" br"raw" cr#"raw"# b'x'"##);
        let kinds_only: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds_only,
            vec![
                TokenKind::Str,
                TokenKind::Str,
                TokenKind::RawStr,
                TokenKind::RawStr,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str; 'x'; '\\n'; 'static");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a"));
        assert!(toks.contains(&(TokenKind::Char, "'x'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\n'")));
        assert_eq!(*toks.last().unwrap(), (TokenKind::Lifetime, "'static"));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(kinds("r#type")[0], (TokenKind::Ident, "r#type"));
        // Plain idents starting with r/b/c are not literals.
        assert_eq!(kinds("rounds")[0], (TokenKind::Ident, "rounds"));
        assert_eq!(kinds("bits")[0], (TokenKind::Ident, "bits"));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b\"", "1.2.3"] {
            let _ = lex(src);
        }
    }
}
