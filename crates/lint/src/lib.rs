//! tagwatch-lint: the workspace's own static-analysis pass.
//!
//! Enforces the invariants the simulator's claims rest on — bit-identical
//! reruns under a fixed seed, panic-free library code, an `unsafe`-free
//! workspace — plus hygiene rules (no stray debug output, no to-do
//! markers unmoored from the roadmap). Rules operate on a hand-rolled
//! lexical token stream, not an
//! AST: that keeps the crate std-only and buildable before (and
//! independent of) everything else, at the cost of a little path-pattern
//! heuristics in the rules.
//!
//! Layout: [`lexer`] turns source into tokens, [`walker`] finds and
//! classifies workspace files, [`rules`] holds the per-file catalog,
//! [`items`] parses tokens into an item model, [`graph`] builds the
//! workspace symbol + call graph, [`deep`] runs the graph-backed rule
//! family and the parallelism-readiness report, [`engine`] orchestrates
//! regions and escape comments, [`diag`] renders findings. The `lint`
//! binary (`src/bin/lint.rs`) wires them to the filesystem.

#![forbid(unsafe_code)]

pub mod deep;
pub mod diag;
pub mod engine;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod walker;

pub use diag::{sort_findings, validate_json, Finding};
pub use engine::{
    lint_classified, lint_source, lint_workspace, load_workspace, WorkspaceAnalysis, WorkspaceFile,
};
pub use graph::{SymbolGraph, GRAPH_SCHEMA};
pub use walker::{classify, walk, FileKind, SourceFile};
