//! The rule catalog.
//!
//! Each rule walks the token stream of one file and yields [`Finding`]s.
//! Applicability is decided here, from the file's [`FileKind`], owning
//! crate, and path — the engine only orchestrates. The catalog is tuned
//! to this repository's invariants (see DESIGN.md "Static analysis"):
//! identical-seed runs must be bit-identical, library code must not
//! panic, and the whole workspace is `unsafe`-free.

use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::walker::FileKind;

/// The crates whose code runs inside the deterministic simulation loop.
/// Hash-ordered containers are banned here: iteration order would leak
/// `RandomState` into tag scheduling and break seed reproducibility.
pub const SIM_CRATES: &[&str] = &[
    "gen2", "core", "rf", "scene", "reader", "tracking", "monitor",
];

/// The one module allowed to read the host clock; everything else must go
/// through its `wall_now()`.
pub const CLOCK_MODULE: &str = "crates/telemetry/src/clock.rs";

/// A rule's identity and rationale, for `lint --list-rules`,
/// `lint --explain`, and docs.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    /// Why the rule exists — printed by `lint --explain <rule>` so
    /// `lint:allow` reasons can cite documented policy.
    pub rationale: &'static str,
    /// Deep (workspace-level, graph-backed) rules run only in the
    /// `--deep` pass; a per-file pass cannot tell whether their escapes
    /// are used.
    pub deep: bool,
}

/// Every rule the engine runs, in diagnostic order (shallow first, then
/// the deep family).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "determinism-wallclock",
        summary: "Instant::now / SystemTime::now / thread_rng / from_entropy \
                  only in the telemetry clock module",
        rationale: "Identical-seed runs must be bit-identical; any wall-clock or \
                    OS-entropy read outside telemetry's clock module injects host \
                    state into results. Route timing through \
                    tagwatch_telemetry::clock::wall_now() and seed StdRng explicitly.",
        deep: false,
    },
    RuleInfo {
        id: "determinism-hash-order",
        summary: "HashMap/HashSet banned in simulation crates (use BTreeMap/BTreeSet/Vec)",
        rationale: "std hash containers iterate in RandomState order, which leaks a \
                    per-process random seed into tag scheduling and breaks seed \
                    reproducibility. Sim crates use BTreeMap/BTreeSet/Vec.",
        deep: false,
    },
    RuleInfo {
        id: "panic-policy",
        summary: "unwrap/expect/panic!/unreachable!/todo!/unimplemented! \
                  banned in non-test library code and examples",
        rationale: "Library callers must get typed errors, not aborts; shipped \
                    examples are copied into downstream code, so they follow the \
                    same bar. Bins, tests, and benches may panic.",
        deep: false,
    },
    RuleInfo {
        id: "debug-leak",
        summary: "println!/eprintln!/print!/eprint!/dbg! banned outside bins, \
                  tests, benches, and examples",
        rationale: "Library code that prints corrupts machine-read pipeline output \
                    (JSONL traces, obs compare). Return data; the binaries print.",
        deep: false,
    },
    RuleInfo {
        id: "unsafe-free",
        summary: "crate roots must carry #![forbid(unsafe_code)]; no unsafe anywhere",
        rationale: "The workspace claims memory-safety by construction; one unsafe \
                    block invalidates the claim. The attribute enforces it at \
                    compile time, the token scan covers bins/tests/macros.",
        deep: false,
    },
    RuleInfo {
        id: "todo-tracker",
        summary: "TODO/FIXME comments must reference ROADMAP.md",
        rationale: "Unanchored to-do markers rot; tying each to a ROADMAP.md item \
                    keeps intentions findable and reviewable.",
        deep: false,
    },
    RuleInfo {
        id: "lint-escape",
        summary: "lint:allow escapes must be well-formed, reasoned, and used",
        rationale: "A stale or reasonless suppression is as misleading as a stale \
                    comment. Escapes name a rule, give a reason, and must actually \
                    suppress something.",
        deep: false,
    },
    RuleInfo {
        id: "work-counter-name",
        summary: "work counter names: exactly one snake_case unit after the perf.work. prefix",
        rationale: "work counter names (the `perf.work.` namespace) are a \
                    cross-crate contract (repro sums them, obs compare gates on \
                    them, the monitor labels by suffix); a malformed literal \
                    mints a counter no gate recognises.",
        deep: false,
    },
    RuleInfo {
        id: "twb-constants",
        summary: ".twb magic/version live in the telemetry binary module only; \
                  no shadow constants or raw magic literals elsewhere",
        rationale: "Two definitions of the container magic agree today and drift on \
                    the next version bump. One home: \
                    crates/telemetry/src/binary.rs; everyone else imports it.",
        deep: false,
    },
    RuleInfo {
        id: "rng-stream-discipline",
        summary: "RNG draws in sim crates must flow from a seeded stream; \
                  no fresh streams on the round hot path",
        rationale: "Fleet parallelism (ROADMAP item 1) gives each reader its own \
                    seeded RNG stream; a draw from anything else — or a stream \
                    minted inside the round loop — makes per-thread replay \
                    impossible. Draws need an rng receiver/parameter; \
                    seed_from_u64 and friends belong in setup code.",
        deep: true,
    },
    RuleInfo {
        id: "race-surface",
        summary: "Mutex/RwLock/RefCell/Cell/atomics, static mut, and thread \
                  spawns forbidden in sim crates; inventoried everywhere",
        rationale: "Bit-identical parallel traces require the per-thread unit of \
                    work to own all its state. Shared-state primitives are \
                    telemetry-side concerns behind the handle API; in sim crates \
                    they are latent races the fleet refactor would inherit.",
        deep: true,
    },
    RuleInfo {
        id: "float-reduction-order",
        summary: "f64 sum/fold over chunked or hash-ordered iteration banned \
                  in sim crates",
        rationale: "f64 addition is non-associative: a reduction over chunks or \
                    hash-ordered sources changes value with the chunk schedule, so \
                    a parallel split of the same work would diverge bitwise. \
                    Reduce over ordered sequences in a fixed order.",
        deep: true,
    },
    RuleInfo {
        id: "sim-boundary",
        summary: "sim crates use the telemetry handle API only — no clock \
                  or sink internals",
        rationale: "The Telemetry handle is the one concurrency-safe door into \
                    shared observability state. A sim crate importing clock/sink \
                    internals couples the round loop to wall time or I/O and \
                    bypasses the overhead controls.",
        deep: true,
    },
];

/// True iff `id` names a rule in the catalog.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// True iff `id` names a deep (workspace-level) rule.
pub fn is_deep_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id && r.deep)
}

/// Catalog entry for `id`, if any.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    pub kind: FileKind,
    pub crate_name: &'a str,
    pub is_crate_root: bool,
    /// The full token stream, comments included.
    pub tokens: &'a [Token<'a>],
    /// Per-token flag: inside a `#[cfg(test)]`/`#[test]`-gated item.
    pub in_test: &'a [bool],
}

impl FileCtx<'_> {
    fn finding(&self, tok: &Token<'_>, rule: &'static str, message: String) -> Finding {
        Finding {
            file: self.rel.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
        }
    }

    /// Code tokens only (comments carry no code), with original indices.
    fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token<'_>)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }

    /// The next code token after index `i`, if any.
    fn next_code(&self, i: usize) -> Option<&Token<'_>> {
        self.tokens[i + 1..]
            .iter()
            .find(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }

    /// The previous code token before index `i`, if any.
    fn prev_code(&self, i: usize) -> Option<&Token<'_>> {
        self.tokens[..i]
            .iter()
            .rev()
            .find(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }

    /// Whether the code-token window starting right after `i` spells
    /// `:: <ident>` for some ident in `names`.
    fn followed_by_path_seg(&self, i: usize, names: &[&str]) -> bool {
        let mut rest = self.tokens[i + 1..]
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment));
        let (Some(a), Some(b), Some(c)) = (rest.next(), rest.next(), rest.next()) else {
            return false;
        };
        a.text == ":" && b.text == ":" && c.kind == TokenKind::Ident && names.contains(&c.text)
    }
}

/// Runs every applicable rule over one file.
pub fn check_file(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    determinism_wallclock(ctx, &mut out);
    determinism_hash_order(ctx, &mut out);
    panic_policy(ctx, &mut out);
    debug_leak(ctx, &mut out);
    unsafe_free(ctx, &mut out);
    todo_tracker(ctx, &mut out);
    work_counter_name(ctx, &mut out);
    twb_constants(ctx, &mut out);
    out
}

/// `Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy`:
/// banned everywhere except [`CLOCK_MODULE`] — test code included, since
/// tests gate determinism claims.
fn determinism_wallclock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.rel == CLOCK_MODULE {
        return;
    }
    for (i, tok) in ctx.code_tokens() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text {
            "Instant" | "SystemTime" if ctx.followed_by_path_seg(i, &["now"]) => {
                out.push(ctx.finding(
                    tok,
                    "determinism-wallclock",
                    format!(
                        "`{}::now()` outside the telemetry clock module; \
                         use `tagwatch_telemetry::clock::wall_now()`",
                        tok.text
                    ),
                ));
            }
            "thread_rng" | "from_entropy" => {
                out.push(ctx.finding(
                    tok,
                    "determinism-wallclock",
                    format!(
                        "`{}` draws OS entropy; seed a `StdRng` explicitly instead",
                        tok.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// `HashMap`/`HashSet` in simulation crates: iteration order is
/// `RandomState`-dependent and leaks into scheduling decisions.
fn determinism_hash_order(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !SIM_CRATES.contains(&ctx.crate_name) || ctx.kind != FileKind::Library {
        return;
    }
    for (i, tok) in ctx.code_tokens() {
        if ctx.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        if tok.text == "HashMap" || tok.text == "HashSet" {
            let ordered = if tok.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(ctx.finding(
                tok,
                "determinism-hash-order",
                format!(
                    "`{}` in simulation crate `{}`: iteration order is random \
                     per process; use `{}` or a `Vec`",
                    tok.text, ctx.crate_name, ordered
                ),
            ));
        }
    }
}

/// `.unwrap()`, `.expect(…)`, and the panicking macros in non-test
/// library code and examples. Bins, tests, benches, and tool shims may
/// panic — library callers must get typed errors, and shipped examples
/// are copied into downstream code, so they follow the library bar.
fn panic_policy(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !matches!(ctx.kind, FileKind::Library | FileKind::Example) {
        return;
    }
    for (i, tok) in ctx.code_tokens() {
        if ctx.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text {
            "unwrap" | "expect" => {
                // Method call position only: `.unwrap(` / `.expect(`.
                let after_dot = ctx.prev_code(i).is_some_and(|t| t.text == ".");
                let called = ctx.next_code(i).is_some_and(|t| t.text == "(");
                if after_dot && called {
                    out.push(ctx.finding(
                        tok,
                        "panic-policy",
                        format!(
                            "`.{}()` in library code: return a typed error, or \
                             justify with a lint:allow escape",
                            tok.text
                        ),
                    ));
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if ctx.next_code(i).is_some_and(|t| t.text == "!") =>
            {
                out.push(ctx.finding(
                    tok,
                    "panic-policy",
                    format!("`{}!` in library code", tok.text),
                ));
            }
            _ => {}
        }
    }
}

/// Stray stdout/stderr in library code: output belongs to the binaries.
fn debug_leak(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Library {
        return;
    }
    for (i, tok) in ctx.code_tokens() {
        if ctx.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        if matches!(
            tok.text,
            "println" | "print" | "eprintln" | "eprint" | "dbg"
        ) && ctx.next_code(i).is_some_and(|t| t.text == "!")
        {
            out.push(ctx.finding(
                tok,
                "debug-leak",
                format!(
                    "`{}!` in library code: return data and let the binary print",
                    tok.text
                ),
            ));
        }
    }
}

/// Crate roots must carry `#![forbid(unsafe_code)]`, and `unsafe` must
/// not appear anywhere (the attribute catches library code at compile
/// time; the token scan also covers bins, tests, and macro bodies).
fn unsafe_free(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_crate_root && !has_forbid_unsafe(ctx) {
        out.push(Finding {
            file: ctx.rel.to_string(),
            line: 1,
            col: 1,
            rule: "unsafe-free",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    for (i, tok) in ctx.code_tokens() {
        if tok.kind == TokenKind::Ident && tok.text == "unsafe" {
            let _ = i;
            out.push(ctx.finding(
                tok,
                "unsafe-free",
                "`unsafe` is banned workspace-wide".to_string(),
            ));
        }
    }
}

fn has_forbid_unsafe(ctx: &FileCtx<'_>) -> bool {
    // Look for the exact token spelling: # ! [ forbid ( unsafe_code ) ]
    let code: Vec<&Token<'_>> = ctx
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    code.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

/// `perf.work.*` counter names are a cross-crate contract: the repro
/// harness sums them per trial, `obs compare` gates on their byte
/// equality, and the monitor turns the suffix into an exposition label.
/// A malformed literal — wrong case, a second dot, an empty unit —
/// silently mints a counter no gate recognises, so the shape is checked
/// here: `perf.work.` followed by exactly one `[a-z][a-z0-9_]*` segment.
/// The bare prefix literal itself (the `WORK_PREFIX` constant and
/// `strip_prefix` call sites) is allowed. Applies to tests too: fixture
/// counters feed the same analyzers.
fn work_counter_name(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const PREFIX: &str = "perf.work.";
    for (_, tok) in ctx.code_tokens() {
        if !matches!(tok.kind, TokenKind::Str | TokenKind::RawStr) {
            continue;
        }
        let Some(body) = str_literal_body(tok.text) else {
            continue;
        };
        let Some(unit) = body.strip_prefix(PREFIX) else {
            continue;
        };
        if unit.is_empty() {
            continue; // the prefix constant itself
        }
        let well_formed = unit.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && unit
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !well_formed {
            out.push(ctx.finding(
                tok,
                "work-counter-name",
                format!(
                    "work counter {body:?}: the unit after `{PREFIX}` must be one \
                     snake_case segment ([a-z][a-z0-9_]*, no further dots)"
                ),
            ));
        }
    }
}

/// The `.twb` container self-description (magic + version) has exactly
/// one home: `crates/telemetry/src/binary.rs`. A shadow `TWB_MAGIC` /
/// `TWB_VERSION` constant — or a raw `"TWB1"` literal — anywhere else is
/// how format forks start: two definitions that agree today and drift
/// apart on the next version bump. Everything else imports the canonical
/// constants or goes through `Encoder::header` / `format::sniff`. Test
/// code is exempt: decoder-probing fixtures legitimately spell raw magic
/// bytes.
fn twb_constants(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const HOME: &str = "crates/telemetry/src/binary.rs";
    // The detector has to spell the needle it scans for.
    const DETECTOR: &str = "crates/lint/src/rules.rs";
    if ctx.rel == HOME || ctx.rel == DETECTOR {
        return;
    }
    for (i, tok) in ctx.code_tokens() {
        if ctx.in_test[i] {
            continue;
        }
        match tok.kind {
            TokenKind::Str | TokenKind::RawStr
                if str_literal_body(tok.text).is_some_and(|b| b.contains("TWB1")) =>
            {
                out.push(ctx.finding(
                    tok,
                    "twb-constants",
                    format!(
                        "raw `.twb` magic literal outside `{HOME}`; use \
                         `tagwatch_telemetry::binary::TWB_MAGIC` (or route \
                         through `format::sniff`) instead"
                    ),
                ));
            }
            // Definition position only (`const TWB_MAGIC …`): reads and
            // imports of the one true constant are the point.
            TokenKind::Ident
                if matches!(tok.text, "TWB_MAGIC" | "TWB_VERSION")
                    && ctx.prev_code(i).is_some_and(|t| t.text == "const") =>
            {
                out.push(ctx.finding(
                    tok,
                    "twb-constants",
                    format!(
                        "shadow `{}` definition outside `{HOME}`: the \
                         container self-description has exactly one home",
                        tok.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// The contents of a string-literal token, quotes and prefixes (`b`,
/// `r#…`) stripped. `None` for an unterminated literal.
fn str_literal_body(text: &str) -> Option<&str> {
    let start = text.find('"')?;
    let end = text.rfind('"')?;
    (end > start).then(|| &text[start + 1..end])
}

/// `TODO`/`FIXME` comments must cite ROADMAP.md so stale intentions stay
/// findable; drive-by markers rot.
fn todo_tracker(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for tok in ctx.tokens {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        for marker in ["TODO", "FIXME"] {
            if let Some(off) = tok.text.find(marker) {
                if !tok.text.contains("ROADMAP") {
                    // Column of the marker itself, in characters.
                    let col_off = tok.text[..off].chars().count() as u32;
                    out.push(Finding {
                        file: ctx.rel.to_string(),
                        line: tok.line,
                        col: tok.col + col_off,
                        rule: "todo-tracker",
                        message: format!(
                            "`{marker}` without a ROADMAP.md reference; \
                             tie it to an open item or drop it"
                        ),
                    });
                }
                break; // one finding per comment
            }
        }
    }
}
