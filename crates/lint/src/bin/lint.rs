//! The `lint` CLI: walk the workspace, run the rule catalog, print
//! `file:line:col: rule: message` diagnostics.
//!
//! Exit codes: 0 clean, 1 findings, 2 internal error (unreadable tree,
//! bad arguments). `--format json` emits one JSON object per finding for
//! tooling; `--list-rules` prints the catalog; `--explain <rule>` prints
//! one rule's rationale and escape syntax.
//!
//! `--deep` adds the workspace-level rule family (symbol graph +
//! reachability); `--baseline FILE` subtracts known, justified findings.
//! The `graph` verb exports the schema-versioned symbol graph and
//! parallelism-readiness report as JSON (`--check` self-validates it).

use std::env;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tagwatch_lint::{deep, diag, engine, rules, walker};

const USAGE: &str = "usage: lint [--root DIR] [--format human|json] [--deep] [--baseline FILE]
       lint graph [--root DIR] [--json] [--check]
       lint --list-rules | --explain RULE

Runs the tagwatch static-analysis pass over the workspace. `--deep` adds
the workspace-level rules (rng-stream-discipline, race-surface,
float-reduction-order, sim-boundary); `graph` exports the symbol graph +
parallelism-readiness report as schema-versioned JSON.
Exit codes: 0 clean, 1 findings, 2 internal error.";

struct Args {
    root: Option<PathBuf>,
    json: bool,
    list_rules: bool,
    explain: Option<String>,
    deep: bool,
    baseline: Option<PathBuf>,
    graph: bool,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        list_rules: false,
        explain: None,
        deep: false,
        baseline: None,
        graph: false,
        check: false,
    };
    let mut it = env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("graph") {
        it.next();
        args.graph = true;
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--format" => match it.next().as_deref() {
                Some("human") => args.json = false,
                Some("json") => args.json = true,
                other => {
                    return Err(format!(
                        "--format must be human or json, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--json" => args.json = true,
            "--deep" => args.deep = true,
            "--baseline" => {
                let file = it.next().ok_or("--baseline needs a file")?;
                args.baseline = Some(PathBuf::from(file));
            }
            "--check" if args.graph => args.check = true,
            "--list-rules" => args.list_rules = true,
            "--explain" => {
                let rule = it.next().ok_or("--explain needs a rule id")?;
                args.explain = Some(rule);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: the nearest ancestor of the current
/// directory whose `Cargo.toml` declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Baseline entries: full rendered finding lines, one per line; `#`
/// comments and blanks ignored. Findings whose rendering matches an
/// entry are accepted as known/justified and do not fail the run.
fn load_baseline(path: &Path) -> Result<Vec<String>, String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// The shallow per-file pass (the pre-`--deep` behavior).
fn run_shallow(root: &Path, json: bool) -> Result<usize, String> {
    let files = walker::walk(root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!("no Rust sources found under {}", root.display()));
    }
    let mut count = 0usize;
    // Write through a fallible handle so `lint | head` closing stdout
    // early doesn't panic; diagnostics lost to a closed pipe are fine.
    let mut out = io::stdout().lock();
    for file in &files {
        let source = fs::read_to_string(&file.abs)
            .map_err(|e| format!("cannot read {}: {e}", file.abs.display()))?;
        let findings = engine::lint_classified(
            &file.rel,
            file.kind,
            &file.crate_name,
            file.is_crate_root,
            &source,
        );
        for f in &findings {
            let wrote = if json {
                writeln!(out, "{}", f.to_json())
            } else {
                writeln!(out, "{f}")
            };
            if wrote.is_err() {
                break;
            }
        }
        count += findings.len();
    }
    if !json {
        if count == 0 {
            eprintln!("lint: {} files clean", files.len());
        } else {
            eprintln!(
                "lint: {count} finding{} in {} files checked",
                if count == 1 { "" } else { "s" },
                files.len()
            );
        }
    }
    Ok(count)
}

/// The workspace pass: shallow + deep rules, optional baseline.
fn run_deep(root: &Path, json: bool, baseline: Option<&Path>) -> Result<usize, String> {
    let files = engine::load_workspace(root)?;
    if files.is_empty() {
        return Err(format!("no Rust sources found under {}", root.display()));
    }
    let analysis = engine::lint_workspace(&files);
    let known = match baseline {
        Some(p) => load_baseline(p)?,
        None => Vec::new(),
    };
    let mut stale: Vec<bool> = vec![true; known.len()];
    let mut count = 0usize;
    let mut out = io::stdout().lock();
    for f in &analysis.findings {
        let rendered = f.to_string();
        if let Some(i) = known.iter().position(|k| *k == rendered) {
            stale[i] = false;
            continue;
        }
        count += 1;
        let wrote = if json {
            writeln!(out, "{}", f.to_json())
        } else {
            writeln!(out, "{rendered}")
        };
        if wrote.is_err() {
            break;
        }
    }
    for (i, s) in stale.iter().enumerate() {
        if *s {
            eprintln!(
                "lint: stale baseline entry (no longer produced): {}",
                known[i]
            );
        }
    }
    if !json {
        if count == 0 {
            eprintln!("lint: {} files deep-clean", files.len());
        } else {
            eprintln!(
                "lint: {count} finding{} in {} files checked (deep)",
                if count == 1 { "" } else { "s" },
                files.len()
            );
        }
    }
    Ok(count)
}

/// `lint graph`: export (or summarize) the symbol graph + readiness
/// report.
fn run_graph(root: &Path, json: bool, check: bool) -> Result<(), String> {
    let files = engine::load_workspace(root)?;
    if files.is_empty() {
        return Err(format!("no Rust sources found under {}", root.display()));
    }
    let analysis = engine::lint_workspace(&files);
    let doc = deep::graph_json(&analysis.graph, &analysis.report);
    if check {
        diag::validate_json(&doc).map_err(|e| format!("graph JSON invalid: {e}"))?;
    }
    let mut out = io::stdout().lock();
    if json || check {
        let _ = out.write_all(doc.as_bytes());
        if check {
            eprintln!("lint: graph JSON validates ({} bytes)", doc.len());
        }
    } else {
        let g = &analysis.graph;
        let r = &analysis.report;
        let _ = writeln!(
            out,
            "symbol graph: {} symbols, {} edges, {} roots, {} hot-path symbols",
            g.symbols.len(),
            g.edges.len(),
            g.roots.len(),
            r.hot_symbols.len()
        );
        let _ = writeln!(
            out,
            "readiness: {} race-surface sites, {} rng stream sources, {} rng draws",
            r.race_surface.len(),
            r.rng_sources.len(),
            r.rng_draws
        );
        for s in &r.race_surface {
            let _ = writeln!(
                out,
                "  {}:{}:{}: {} [{}]{} in {}",
                s.file,
                s.line,
                s.col,
                s.what,
                s.class,
                if s.hot { " HOT" } else { "" },
                s.context
            );
        }
    }
    Ok(())
}

fn explain(rule_id: &str) -> Result<(), String> {
    let info = rules::rule_info(rule_id)
        .ok_or_else(|| format!("unknown rule `{rule_id}` (see --list-rules)"))?;
    let mut out = io::stdout().lock();
    let _ = writeln!(out, "{}{}", info.id, if info.deep { " (deep)" } else { "" });
    let _ = writeln!(out, "  summary:   {}", info.summary);
    let _ = writeln!(out, "  rationale: {}", info.rationale);
    let _ = writeln!(
        out,
        "  escape:    // lint:allow({}): <reason citing this policy>",
        info.id
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::from(0);
            }
            eprintln!("lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        let mut out = io::stdout().lock();
        for r in rules::RULES {
            let tag = if r.deep { " [deep]" } else { "" };
            if writeln!(out, "{:24} {}{tag}", r.id, r.summary).is_err() {
                break;
            }
        }
        return ExitCode::from(0);
    }
    if let Some(rule) = &args.explain {
        return match explain(rule) {
            Ok(()) => ExitCode::from(0),
            Err(msg) => {
                eprintln!("lint: {msg}");
                ExitCode::from(2)
            }
        };
    }
    let Some(root) = args.root.or_else(find_workspace_root) else {
        eprintln!(
            "lint: cannot locate workspace root (no Cargo.toml with [workspace]); pass --root"
        );
        return ExitCode::from(2);
    };
    if args.graph {
        return match run_graph(&root, args.json, args.check) {
            Ok(()) => ExitCode::from(0),
            Err(msg) => {
                eprintln!("lint: {msg}");
                ExitCode::from(2)
            }
        };
    }
    let result = if args.deep {
        run_deep(&root, args.json, args.baseline.as_deref())
    } else {
        run_shallow(&root, args.json)
    };
    match result {
        Ok(0) => ExitCode::from(0),
        Ok(_) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("lint: {msg}");
            ExitCode::from(2)
        }
    }
}
