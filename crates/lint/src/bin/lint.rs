//! The `lint` CLI: walk the workspace, run the rule catalog, print
//! `file:line:col: rule: message` diagnostics.
//!
//! Exit codes: 0 clean, 1 findings, 2 internal error (unreadable tree,
//! bad arguments). `--format json` emits one JSON object per finding for
//! tooling; `--list-rules` prints the catalog.

use std::env;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tagwatch_lint::{engine, rules, walker};

const USAGE: &str = "usage: lint [--root DIR] [--format human|json] [--list-rules]

Runs the tagwatch static-analysis pass over the workspace.
Exit codes: 0 clean, 1 findings, 2 internal error.";

struct Args {
    root: Option<PathBuf>,
    json: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        list_rules: false,
    };
    let mut it = env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--format" => match it.next().as_deref() {
                Some("human") => args.json = false,
                Some("json") => args.json = true,
                other => {
                    return Err(format!(
                        "--format must be human or json, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: the nearest ancestor of the current
/// directory whose `Cargo.toml` declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run(root: &Path, json: bool) -> Result<usize, String> {
    let files = walker::walk(root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!("no Rust sources found under {}", root.display()));
    }
    let mut count = 0usize;
    // Write through a fallible handle so `lint | head` closing stdout
    // early doesn't panic; diagnostics lost to a closed pipe are fine.
    let mut out = io::stdout().lock();
    for file in &files {
        let source = fs::read_to_string(&file.abs)
            .map_err(|e| format!("cannot read {}: {e}", file.abs.display()))?;
        let findings = engine::lint_classified(
            &file.rel,
            file.kind,
            &file.crate_name,
            file.is_crate_root,
            &source,
        );
        for f in &findings {
            let wrote = if json {
                writeln!(out, "{}", f.to_json())
            } else {
                writeln!(out, "{f}")
            };
            if wrote.is_err() {
                break;
            }
        }
        count += findings.len();
    }
    if !json {
        if count == 0 {
            eprintln!("lint: {} files clean", files.len());
        } else {
            eprintln!(
                "lint: {count} finding{} in {} files checked",
                if count == 1 { "" } else { "s" },
                files.len()
            );
        }
    }
    Ok(count)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::from(0);
            }
            eprintln!("lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        let mut out = io::stdout().lock();
        for r in rules::RULES {
            if writeln!(out, "{:24} {}", r.id, r.summary).is_err() {
                break;
            }
        }
        return ExitCode::from(0);
    }
    let Some(root) = args.root.or_else(find_workspace_root) else {
        eprintln!(
            "lint: cannot locate workspace root (no Cargo.toml with [workspace]); pass --root"
        );
        return ExitCode::from(2);
    };
    match run(&root, args.json) {
        Ok(0) => ExitCode::from(0),
        Ok(_) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("lint: {msg}");
            ExitCode::from(2)
        }
    }
}
