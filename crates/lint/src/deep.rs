//! The deep (workspace-level) rule family and the parallelism-readiness
//! report.
//!
//! Where the shallow rules in [`crate::rules`] see one file's tokens,
//! the deep rules see the whole workspace through the item model
//! ([`crate::items`]) and the symbol graph ([`crate::graph`]): which fns
//! are reachable from the round engine, where RNG streams are created
//! versus drawn from, and which shared-state primitives sit on the hot
//! path. They exist to answer one question ahead of ROADMAP item 1
//! (fleet-scale parallelism): *is the single-thread core safe to run on
//! N worker threads with bit-identical traces?*
//!
//! Four rules:
//!
//! * `rng-stream-discipline` — every RNG draw in a sim crate must flow
//!   from a seeded stream (an `rng` receiver/parameter); no fresh
//!   stream construction on the hot path.
//! * `race-surface` — locking/interior-mutability primitives, mutable
//!   statics, and thread spawns are inventoried everywhere and
//!   *forbidden* in sim crates (telemetry-family crates own shared
//!   state behind the handle API).
//! * `float-reduction-order` — f64 accumulation over chunked or
//!   hash-ordered iteration is order-dependent; sim reductions must
//!   iterate ordered sequences.
//! * `sim-boundary` — sim crates talk to telemetry through the handle
//!   API only: no `clock::wall_now`, no sink internals.
//!
//! Everything is deterministic: inputs arrive in sorted walk order,
//! per-file scans are positional, and the report's collections are
//! sorted — so `lint graph --json` is byte-stable run to run.

use std::collections::BTreeMap;

use crate::diag::{json_str, Finding};
use crate::graph::{FileMeta, SymbolGraph, GRAPH_SCHEMA};
use crate::items::FileItems;
use crate::lexer::{Token, TokenKind};
use crate::walker::FileKind;

/// The crates whose library code runs inside the deterministic round
/// loop and must become thread-parallel without shared state. This is
/// the shallow [`crate::rules::SIM_CRATES`] set minus `monitor`, which
/// is telemetry-family (it watches the simulation; it is not part of
/// the per-thread unit of work).
pub const DEEP_SIM_CRATES: &[&str] = &["core", "gen2", "reader", "rf", "scene", "tracking"];

/// Telemetry-family crates: allowed to hold shared state — that is
/// their job — but it must stay behind the `Telemetry` handle API.
pub const TELEMETRY_CRATES: &[&str] = &["telemetry", "monitor", "obs", "trace"];

/// RNG methods that consume stream state. A draw anywhere in a sim
/// crate must visibly flow from a seeded stream.
const DRAW_METHODS: &[&str] = &[
    "gen",
    "gen_bool",
    "gen_range",
    "sample",
    "choose",
    "shuffle",
    "next_u32",
    "next_u64",
    "fill_bytes",
];

/// Constructors that mint a *new* RNG stream. Fine at setup time;
/// banned on the hot path, where every stream must be threaded in.
const STREAM_SOURCES: &[&str] = &["seed_from_u64", "from_seed", "from_rng"];

/// Shared-state / interior-mutability type names for the race-surface
/// inventory. `Arc` alone is excluded: immutable sharing is not a race
/// surface (an `Arc<Mutex<_>>` is caught by the `Mutex`).
const SHARED_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicU8",
    "AtomicUsize",
    "Cell",
    "Condvar",
    "LazyLock",
    "Mutex",
    "OnceCell",
    "OnceLock",
    "RefCell",
    "RwLock",
    "UnsafeCell",
];

/// Telemetry modules sim crates must not reach into; the handle API
/// (`Telemetry`, `WorkCounters`, spans, counters) is the only door.
const FORBIDDEN_TELEMETRY_MODULES: &[&str] = &[
    "binary", "clock", "format", "jsonl", "overhead", "registry", "shard", "sink",
];

/// Telemetry names sim crates must not touch directly (re-exported at
/// the telemetry crate root, so a module path check alone misses them).
const FORBIDDEN_TELEMETRY_NAMES: &[&str] = &[
    "BinarySink",
    "JsonlSink",
    "MemorySink",
    "RingSink",
    "ShardedSink",
    "wall_now",
];

/// Iterator adapters whose chunk/order structure makes an f64 `sum` /
/// `fold` over them order-dependent across parallel schedules.
const UNORDERED_SOURCES: &[&str] = &[
    "HashMap",
    "HashSet",
    "chunks",
    "chunks_exact",
    "chunks_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_iter",
    "rchunks",
];

/// One deep-rule input file: classification plus the lexed/parsed
/// artifacts the engine already produced.
pub struct DeepFile<'a> {
    pub meta: FileMeta,
    pub tokens: &'a [Token<'a>],
    pub in_test: &'a [bool],
    pub items: &'a FileItems,
}

/// One entry in the race-surface inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfaceSite {
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// What sits here: `Mutex`, `static mut COUNTER`, `thread::spawn`.
    pub what: String,
    /// `forbidden-in-sim`, `allowed-in-telemetry`, or
    /// `allowed-in-tooling` (bench/lint/bins — outside the round loop).
    pub class: &'static str,
    /// Inside a fn reachable from the hot-path roots.
    pub hot: bool,
    /// Enclosing symbol key, or `item` for statics / top-level sites.
    pub context: String,
}

/// A site that constructs a fresh RNG stream (outside the hot path —
/// on-path constructions are findings, not report entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RngSource {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub what: String,
}

/// The parallelism-readiness report: what ROADMAP item 1 must account
/// for before splitting the round loop across threads.
#[derive(Debug, Clone, Default)]
pub struct ReadinessReport {
    /// Sorted keys of every non-test symbol reachable from the
    /// hot-path roots.
    pub hot_symbols: Vec<String>,
    /// Every shared-state site in non-test code, classified.
    pub race_surface: Vec<SurfaceSite>,
    /// Non-hot-path RNG stream constructions (setup-time seeding).
    pub rng_sources: Vec<RngSource>,
    /// Count of RNG draw sites seen in sim crates.
    pub rng_draws: usize,
    /// Deep findings per rule id (pre-escape).
    pub finding_counts: BTreeMap<String, usize>,
}

/// Output of the deep pass over the whole workspace.
pub struct DeepAnalysis {
    /// Raw findings, before escape comments are applied.
    pub findings: Vec<Finding>,
    pub graph: SymbolGraph,
    pub report: ReadinessReport,
}

/// True iff `crate_name` is in the deep sim set.
pub fn is_deep_sim_crate(crate_name: &str) -> bool {
    DEEP_SIM_CRATES.contains(&crate_name)
}

/// Race-surface classification for a crate.
fn crate_class(crate_name: &str) -> &'static str {
    if is_deep_sim_crate(crate_name) {
        "forbidden-in-sim"
    } else if TELEMETRY_CRATES.contains(&crate_name) {
        "allowed-in-telemetry"
    } else {
        "allowed-in-tooling"
    }
}

/// Runs the deep rule family over the whole workspace.
pub fn analyze(files: &[DeepFile<'_>]) -> DeepAnalysis {
    let graph_input: Vec<(FileMeta, &FileItems)> =
        files.iter().map(|f| (f.meta.clone(), f.items)).collect();
    let graph = SymbolGraph::build(&graph_input);

    // (file_idx, fn_idx) → graph symbol index, once.
    let mut sym_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (i, s) in graph.symbols.iter().enumerate() {
        sym_of.insert((s.file_idx, s.fn_idx), i);
    }

    let mut report = ReadinessReport {
        hot_symbols: graph
            .symbols
            .iter()
            .enumerate()
            .filter(|&(i, _)| graph.hot[i])
            .map(|(_, s)| s.key.clone())
            .collect(),
        ..ReadinessReport::default()
    };

    let mut findings = Vec::new();
    for (file_idx, f) in files.iter().enumerate() {
        let cx = FileCx {
            file_idx,
            f,
            graph: &graph,
            sym_of: &sym_of,
        };
        rng_stream_discipline(&cx, &mut findings, &mut report);
        race_surface(&cx, &mut findings, &mut report);
        float_reduction_order(&cx, &mut findings);
        sim_boundary(&cx, &mut findings);
    }

    for f in &findings {
        *report.finding_counts.entry(f.rule.to_string()).or_insert(0) += 1;
    }
    DeepAnalysis {
        findings,
        graph,
        report,
    }
}

/// Per-file context for one deep rule invocation.
struct FileCx<'a, 'b> {
    file_idx: usize,
    f: &'a DeepFile<'b>,
    graph: &'a SymbolGraph,
    sym_of: &'a BTreeMap<(usize, usize), usize>,
}

impl FileCx<'_, '_> {
    fn rel(&self) -> &str {
        &self.f.meta.rel
    }

    fn crate_name(&self) -> &str {
        &self.f.meta.crate_name
    }

    /// Deep sim crate *library* code (the unit of per-thread work).
    fn sim_library(&self) -> bool {
        self.f.meta.kind == FileKind::Library && is_deep_sim_crate(self.crate_name())
    }

    fn in_test(&self, token_idx: usize) -> bool {
        self.f.in_test.get(token_idx).copied().unwrap_or(false)
    }

    /// Index into `items.fns` of the innermost fn whose body contains
    /// the original token index `ti`.
    fn enclosing_fn(&self, ti: usize) -> Option<usize> {
        self.f
            .items
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.body.is_some_and(|(lo, hi)| lo <= ti && ti <= hi))
            .min_by_key(|(_, f)| f.body.map_or(usize::MAX, |(lo, hi)| hi - lo))
            .map(|(i, _)| i)
    }

    fn fn_is_hot(&self, fn_idx: usize) -> bool {
        self.sym_of
            .get(&(self.file_idx, fn_idx))
            .is_some_and(|&i| self.graph.hot[i])
    }

    fn fn_key(&self, fn_idx: usize) -> String {
        self.sym_of.get(&(self.file_idx, fn_idx)).map_or_else(
            || self.f.items.fns[fn_idx].type_qualified.clone(),
            |&i| self.graph.symbols[i].key.clone(),
        )
    }

    fn finding(&self, line: u32, col: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            file: self.rel().to_string(),
            line,
            col,
            rule,
            message,
        }
    }

    /// Code tokens with original indices.
    fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token<'_>)> {
        self.f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }
}

/// rng-stream-discipline: draws must flow from a seeded stream; no
/// stream construction on the hot path.
fn rng_stream_discipline(
    cx: &FileCx<'_, '_>,
    out: &mut Vec<Finding>,
    report: &mut ReadinessReport,
) {
    if !cx.sim_library() {
        // Stream constructions elsewhere still feed the report (bench
        // seeding, telemetry tests are exempt via in_test).
        record_rng_sources(cx, report);
        return;
    }
    for (fn_idx, f) in cx.f.items.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let fn_has_rng_param = f.params.iter().any(|p| {
            p.name.to_lowercase().contains("rng") || p.ty.contains("Rng") || p.ty.contains("rng")
        });
        for call in &f.calls {
            let Some(last) = call.path.last() else {
                continue;
            };
            if call.method && DRAW_METHODS.contains(&last.as_str()) {
                report.rng_draws += 1;
                let receiver_is_stream = call
                    .receiver
                    .iter()
                    .any(|r| r.to_lowercase().contains("rng"));
                let line_mentions_stream = line_mentions_rng(cx, call.line);
                if !(receiver_is_stream || fn_has_rng_param || line_mentions_stream) {
                    out.push(cx.finding(
                        call.line,
                        call.col,
                        "rng-stream-discipline",
                        format!(
                            "RNG draw `.{last}()` in `{}` does not visibly flow from a \
                             seeded stream (no `rng` receiver or `Rng` parameter); \
                             thread the per-reader stream through",
                            cx.fn_key(fn_idx)
                        ),
                    ));
                }
            }
            if STREAM_SOURCES.contains(&last.as_str()) {
                if cx.fn_is_hot(fn_idx) {
                    out.push(cx.finding(
                        call.line,
                        call.col,
                        "rng-stream-discipline",
                        format!(
                            "fresh RNG stream `{}` constructed in `{}`, which is \
                             reachable from the round engine; streams must be \
                             seeded at setup and passed in",
                            call.path.join("::"),
                            cx.fn_key(fn_idx)
                        ),
                    ));
                } else {
                    report.rng_sources.push(RngSource {
                        file: cx.rel().to_string(),
                        line: call.line,
                        col: call.col,
                        what: call.path.join("::"),
                    });
                }
            }
        }
    }
}

/// Whether any non-comment token on `line` mentions an rng-ish name —
/// catches draws whose stream arrives as a call argument
/// (`dist.sample(&mut rng)`).
fn line_mentions_rng(cx: &FileCx<'_, '_>, line: u32) -> bool {
    cx.code_tokens().any(|(_, t)| {
        t.line == line && t.kind == TokenKind::Ident && t.text.to_lowercase().contains("rng")
    })
}

/// Stream constructions outside sim libraries, for the report only.
fn record_rng_sources(cx: &FileCx<'_, '_>, report: &mut ReadinessReport) {
    for f in &cx.f.items.fns {
        if f.in_test {
            continue;
        }
        for call in &f.calls {
            if call
                .path
                .last()
                .is_some_and(|l| STREAM_SOURCES.contains(&l.as_str()))
            {
                report.rng_sources.push(RngSource {
                    file: cx.rel().to_string(),
                    line: call.line,
                    col: call.col,
                    what: call.path.join("::"),
                });
            }
        }
    }
}

/// race-surface: inventory shared-state primitives everywhere; forbid
/// them in sim-crate library code.
fn race_surface(cx: &FileCx<'_, '_>, out: &mut Vec<Finding>, report: &mut ReadinessReport) {
    let class = crate_class(cx.crate_name());
    let forbid = cx.sim_library();

    // Mutable statics and statics of shared types, from the item model.
    for s in &cx.f.items.statics {
        if s.in_test || !s.is_static {
            continue;
        }
        let shared_ty = SHARED_TYPES.iter().any(|n| s.ty.contains(n));
        if !(s.mutable || shared_ty) {
            continue; // a plain immutable static is not a race surface
        }
        let what = if s.mutable {
            format!("static mut {}", s.name)
        } else {
            format!("static {}: {}", s.name, s.ty)
        };
        report.race_surface.push(SurfaceSite {
            file: cx.rel().to_string(),
            line: s.line,
            col: s.col,
            what: what.clone(),
            class,
            hot: false,
            context: "item".to_string(),
        });
        if forbid {
            out.push(cx.finding(
                s.line,
                s.col,
                "race-surface",
                format!(
                    "`{what}` in simulation crate `{}`: shared state breaks \
                     per-thread determinism; move it behind the telemetry \
                     handle or thread it through the round state",
                    cx.crate_name()
                ),
            ));
        }
    }

    // Shared-type tokens (uses, fields, constructions) in non-test code.
    let mut last: Option<(u32, &str)> = None;
    let mut type_sites: Vec<(u32, u32, usize, String)> = Vec::new();
    for (i, tok) in cx.code_tokens() {
        if cx.in_test(i) || tok.kind != TokenKind::Ident {
            continue;
        }
        if SHARED_TYPES.contains(&tok.text) {
            // One site per (line, name): `Mutex<T>` + `Mutex::new` on one
            // line is one surface, not two.
            if last == Some((tok.line, tok.text)) {
                continue;
            }
            last = Some((tok.line, tok.text));
            type_sites.push((tok.line, tok.col, i, tok.text.to_string()));
        }
    }
    for (line, col, ti, name) in type_sites {
        let enclosing = cx.enclosing_fn(ti);
        let hot = enclosing.is_some_and(|fi| cx.fn_is_hot(fi));
        let context = enclosing.map_or_else(|| "item".to_string(), |fi| cx.fn_key(fi));
        report.race_surface.push(SurfaceSite {
            file: cx.rel().to_string(),
            line,
            col,
            what: name.clone(),
            class,
            hot,
            context: context.clone(),
        });
        if forbid {
            out.push(cx.finding(
                line,
                col,
                "race-surface",
                format!(
                    "`{name}` in simulation crate `{}`: locking/interior \
                     mutability is forbidden on the sim side (telemetry-family \
                     crates own shared state){}",
                    cx.crate_name(),
                    if hot {
                        " — and this site is reachable from the round engine"
                    } else {
                        ""
                    }
                ),
            ));
        }
    }

    // Thread spawns, from harvested call sites.
    for (fn_idx, f) in cx.f.items.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        for call in &f.calls {
            let spawns = if call.method {
                call.path.last().is_some_and(|l| l == "spawn")
            } else {
                call.path.iter().any(|s| s == "thread")
                    && call
                        .path
                        .last()
                        .is_some_and(|l| l == "spawn" || l == "scope")
            };
            if !spawns {
                continue;
            }
            let what = if call.method {
                ".spawn()".to_string()
            } else {
                call.path.join("::")
            };
            let hot = cx.fn_is_hot(fn_idx);
            report.race_surface.push(SurfaceSite {
                file: cx.rel().to_string(),
                line: call.line,
                col: call.col,
                what: what.clone(),
                class,
                hot,
                context: cx.fn_key(fn_idx),
            });
            if forbid {
                out.push(cx.finding(
                    call.line,
                    call.col,
                    "race-surface",
                    format!(
                        "thread spawn `{what}` in simulation crate `{}`: the round \
                         loop must stay single-threaded per worker; parallelism \
                         belongs to the fleet driver",
                        cx.crate_name()
                    ),
                ));
            }
        }
    }
}

/// float-reduction-order: f64 reductions over chunked/hash-ordered
/// iteration are schedule-dependent.
fn float_reduction_order(cx: &FileCx<'_, '_>, out: &mut Vec<Finding>) {
    if !cx.sim_library() {
        return;
    }
    // Code tokens once, with original indices, for windowed scans.
    let code: Vec<(usize, &Token<'_>)> = cx.code_tokens().collect();

    // Pass 1: `for` loops whose header mentions an unordered source;
    // compound `+=`/`*=` and sum/fold calls inside are findings.
    let mut regions: Vec<(usize, usize)> = Vec::new(); // code-index ranges
    for (ci, &(i, t)) in code.iter().enumerate() {
        if !(t.kind == TokenKind::Ident && t.text == "for") || cx.in_test(i) {
            continue;
        }
        // Header: up to the next `{` (bounded — a malformed header just
        // never opens a region).
        let mut open = None;
        for (cj, &(_, u)) in code.iter().enumerate().skip(ci + 1).take(64) {
            if u.text == "{" {
                open = Some(cj);
                break;
            }
        }
        let Some(open) = open else { continue };
        let header_unordered = code[ci + 1..open]
            .iter()
            .any(|&(_, u)| u.kind == TokenKind::Ident && UNORDERED_SOURCES.contains(&u.text));
        if !header_unordered {
            continue;
        }
        // Region: matching close brace.
        let mut depth = 0usize;
        let mut close = code.len().saturating_sub(1);
        for (cj, &(_, u)) in code.iter().enumerate().skip(open) {
            if u.text == "{" {
                depth += 1;
            } else if u.text == "}" {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    close = cj;
                    break;
                }
            }
        }
        regions.push((open, close));
    }
    for &(open, close) in &regions {
        let mut cj = open + 1;
        while cj < close {
            let (i, t) = code[cj];
            let next_is_eq = cj + 1 < close && code[cj + 1].1.text == "=";
            if (t.text == "+" || t.text == "*") && next_is_eq && !cx.in_test(i) {
                out.push(cx.finding(
                    t.line,
                    t.col,
                    "float-reduction-order",
                    format!(
                        "`{}=` accumulation inside a loop over an unordered/chunked \
                         source: non-associative f64 reduction depends on chunk \
                         schedule; reduce over an ordered sequence",
                        t.text
                    ),
                ));
                cj += 2;
                continue;
            }
            cj += 1;
        }
    }

    // Pass 2: `.sum()` / `.product()` / `.fold()` whose statement window
    // (back to the nearest `;`/`{`/`}`) mentions an unordered source.
    for (ci, &(i, t)) in code.iter().enumerate() {
        if cx.in_test(i)
            || t.kind != TokenKind::Ident
            || !matches!(t.text, "sum" | "product" | "fold")
        {
            continue;
        }
        // Method-call position: preceded by `.`, followed by `(` or `::<`.
        let after_dot = ci > 0 && code[ci - 1].1.text == ".";
        let called = code
            .get(ci + 1)
            .is_some_and(|&(_, u)| u.text == "(" || u.text == ":");
        if !(after_dot && called) {
            continue;
        }
        let mut unordered = None;
        for &(_, u) in code[..ci].iter().rev().take(128) {
            if matches!(u.text, ";" | "{" | "}") {
                break;
            }
            if u.kind == TokenKind::Ident && UNORDERED_SOURCES.contains(&u.text) {
                unordered = Some(u.text);
                break;
            }
        }
        if let Some(src) = unordered {
            out.push(cx.finding(
                t.line,
                t.col,
                "float-reduction-order",
                format!(
                    "`.{}()` over a `{src}` source: non-associative f64 reduction \
                     is order-dependent; iterate an ordered sequence instead",
                    t.text
                ),
            ));
        }
    }
}

/// sim-boundary: sim crates reach telemetry only through the handle
/// API — no clock internals, no sink internals.
fn sim_boundary(cx: &FileCx<'_, '_>, out: &mut Vec<Finding>) {
    if !cx.sim_library() {
        return;
    }
    let mut flagged_lines: Vec<u32> = Vec::new();
    let mut flag = |out: &mut Vec<Finding>, line: u32, col: u32, msg: String| {
        if flagged_lines.contains(&line) {
            return; // one boundary finding per line (use + call overlap)
        }
        flagged_lines.push(line);
        out.push(cx.finding(line, col, "sim-boundary", msg));
    };

    for u in &cx.f.items.uses {
        if u.in_test || u.path.first().is_none_or(|h| h != "tagwatch_telemetry") {
            continue;
        }
        let module = u.path.get(1).map(String::as_str);
        if module.is_some_and(|m| FORBIDDEN_TELEMETRY_MODULES.contains(&m)) {
            flag(
                out,
                u.line,
                u.col,
                format!(
                    "sim crate `{}` imports telemetry internals \
                     (`{}`); use the `Telemetry` handle API",
                    cx.crate_name(),
                    u.path.join("::")
                ),
            );
        } else if u
            .path
            .last()
            .is_some_and(|l| FORBIDDEN_TELEMETRY_NAMES.contains(&l.as_str()))
        {
            flag(
                out,
                u.line,
                u.col,
                format!(
                    "sim crate `{}` imports `{}`: sink/clock internals are \
                     telemetry-side; go through the handle API",
                    cx.crate_name(),
                    u.path.join("::")
                ),
            );
        }
    }

    // Fully-qualified paths and bare forbidden names in code position.
    for (fn_idx, f) in cx.f.items.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let _ = fn_idx;
        for call in &f.calls {
            let hits_module = call.path.first().is_some_and(|h| h == "tagwatch_telemetry")
                && call
                    .path
                    .get(1)
                    .is_some_and(|m| FORBIDDEN_TELEMETRY_MODULES.contains(&m.as_str()));
            let hits_name = call
                .path
                .iter()
                .any(|s| FORBIDDEN_TELEMETRY_NAMES.contains(&s.as_str()));
            if hits_module || hits_name {
                flag(
                    out,
                    call.line,
                    call.col,
                    format!(
                        "sim crate `{}` calls `{}`: telemetry internals are off \
                         limits outside the handle API",
                        cx.crate_name(),
                        call.path.join("::")
                    ),
                );
            }
        }
    }
}

/// Serializes the graph + readiness report as the schema-versioned
/// `lint graph --json` document. Hand-rolled (the lint crate is
/// std-only) and byte-deterministic: every collection is sorted before
/// emission. One symbol/edge/site per line keeps the export diffable.
pub fn graph_json(graph: &SymbolGraph, report: &ReadinessReport) -> String {
    let mut s = String::with_capacity(64 * 1024);
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", json_str(GRAPH_SCHEMA)));

    s.push_str("  \"roots\": [");
    for (n, &r) in graph.roots.iter().enumerate() {
        if n > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(&graph.symbols[r].key));
    }
    s.push_str("],\n");

    s.push_str("  \"symbols\": [\n");
    for (n, sym) in graph.symbols.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"key\":{},\"crate\":{},\"file\":{},\"line\":{},\"col\":{},\
             \"method\":{},\"test\":{},\"hot\":{}}}{}\n",
            json_str(&sym.key),
            json_str(&sym.crate_name),
            json_str(&sym.file),
            sym.line,
            sym.col,
            sym.is_method,
            sym.test,
            graph.hot[n],
            if n + 1 < graph.symbols.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");

    s.push_str("  \"edges\": [\n");
    let edge_count = graph.edges.len();
    for (n, &(a, b)) in graph.edges.iter().enumerate() {
        s.push_str(&format!(
            "    [{},{}]{}\n",
            json_str(&graph.symbols[a].key),
            json_str(&graph.symbols[b].key),
            if n + 1 < edge_count { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");

    s.push_str("  \"readiness\": {\n");
    s.push_str("    \"hot_symbols\": [\n");
    for (n, k) in report.hot_symbols.iter().enumerate() {
        s.push_str(&format!(
            "      {}{}\n",
            json_str(k),
            if n + 1 < report.hot_symbols.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("    ],\n");

    s.push_str(&format!("    \"rng_draws\": {},\n", report.rng_draws));
    s.push_str("    \"rng_stream_sources\": [\n");
    for (n, r) in report.rng_sources.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"file\":{},\"line\":{},\"col\":{},\"what\":{}}}{}\n",
            json_str(&r.file),
            r.line,
            r.col,
            json_str(&r.what),
            if n + 1 < report.rng_sources.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("    ],\n");

    s.push_str("    \"race_surface\": [\n");
    for (n, r) in report.race_surface.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"file\":{},\"line\":{},\"col\":{},\"what\":{},\"class\":{},\
             \"hot\":{},\"context\":{}}}{}\n",
            json_str(&r.file),
            r.line,
            r.col,
            json_str(&r.what),
            json_str(r.class),
            r.hot,
            json_str(&r.context),
            if n + 1 < report.race_surface.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("    ],\n");

    s.push_str("    \"findings\": {");
    for (n, (rule, count)) in report.finding_counts.iter().enumerate() {
        if n > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{}: {count}", json_str(rule)));
    }
    s.push_str("}\n");
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::lexer::lex;

    struct Owned {
        meta: FileMeta,
        source: String,
    }

    fn sim_file(rel: &str, crate_name: &str, src: &str) -> Owned {
        Owned {
            meta: FileMeta {
                rel: rel.to_string(),
                crate_name: crate_name.to_string(),
                kind: FileKind::Library,
            },
            source: src.to_string(),
        }
    }

    fn run(files: &[Owned]) -> DeepAnalysis {
        let lexed: Vec<Vec<crate::lexer::Token<'_>>> =
            files.iter().map(|f| lex(&f.source)).collect();
        let flags: Vec<Vec<bool>> = lexed.iter().map(|t| vec![false; t.len()]).collect();
        let parsed: Vec<FileItems> = lexed
            .iter()
            .zip(&flags)
            .map(|(t, fl)| items::parse(t, fl))
            .collect();
        let inputs: Vec<DeepFile<'_>> = files
            .iter()
            .enumerate()
            .map(|(i, f)| DeepFile {
                meta: f.meta.clone(),
                tokens: &lexed[i],
                in_test: &flags[i],
                items: &parsed[i],
            })
            .collect();
        analyze(&inputs)
    }

    fn rules_of(a: &DeepAnalysis) -> Vec<&'static str> {
        a.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn owned_rng_draw_is_clean() {
        let a = run(&[sim_file(
            "crates/reader/src/reader.rs",
            "reader",
            "impl Reader {\n  pub fn execute(&mut self) {\n    if self.rng.gen_bool(0.5) {}\n  }\n}\n",
        )]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.report.rng_draws, 1);
    }

    #[test]
    fn unthreaded_draw_is_flagged() {
        let a = run(&[sim_file(
            "crates/gen2/src/round.rs",
            "gen2",
            "pub fn run_round(p: &mut Pool) -> u32 {\n    p.source.gen_bool(0.5) as u32\n}\n",
        )]);
        assert_eq!(
            rules_of(&a),
            vec!["rng-stream-discipline"],
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn reseed_on_hot_path_is_flagged_but_setup_is_reported() {
        let a = run(&[
            sim_file(
                "crates/gen2/src/round.rs",
                "gen2",
                "pub fn run_round() {\n    let mut rng = StdRng::seed_from_u64(7);\n    let _ = rng.gen_bool(0.5);\n}\n",
            ),
            // A different module: NOT under the `gen2::round::` prefix
            // root, so its seeding is setup-time and report-only.
            sim_file(
                "crates/gen2/src/config.rs",
                "gen2",
                "pub fn setup() -> StdRng { StdRng::seed_from_u64(1) }\n",
            ),
        ]);
        // `run_round` is a hot-path root: the in-body reseed is a finding.
        assert_eq!(
            rules_of(&a),
            vec!["rng-stream-discipline"],
            "{:?}",
            a.findings
        );
        assert!(a.findings[0].message.contains("fresh RNG stream"));
        assert_eq!(a.report.rng_sources.len(), 1);
        assert_eq!(a.report.rng_sources[0].file, "crates/gen2/src/config.rs");
    }

    #[test]
    fn race_surface_forbidden_in_sim_allowed_in_telemetry() {
        let a = run(&[
            sim_file(
                "crates/core/src/state.rs",
                "core",
                "use std::sync::Mutex;\npub struct S { m: Mutex<u8> }\n",
            ),
            sim_file(
                "crates/telemetry/src/handle.rs",
                "telemetry",
                "use std::sync::Mutex;\npub struct Inner { state: Mutex<u8> }\n",
            ),
        ]);
        let sim_findings: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.rule == "race-surface")
            .collect();
        assert_eq!(sim_findings.len(), 2, "{:?}", a.findings); // use + field, core only
        assert!(sim_findings
            .iter()
            .all(|f| f.file.starts_with("crates/core")));
        let classes: Vec<&str> = a.report.race_surface.iter().map(|s| s.class).collect();
        assert!(classes.contains(&"forbidden-in-sim"));
        assert!(classes.contains(&"allowed-in-telemetry"));
    }

    #[test]
    fn static_mut_and_thread_spawn_flagged_in_sim() {
        let a = run(&[sim_file(
            "crates/rf/src/chan.rs",
            "rf",
            "static mut HITS: u64 = 0;\npub fn go() { std::thread::spawn(|| {}); }\n",
        )]);
        let rules = rules_of(&a);
        assert_eq!(
            rules.iter().filter(|r| **r == "race-surface").count(),
            2,
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn float_reduction_over_chunks_flagged() {
        let a = run(&[sim_file(
            "crates/core/src/metrics.rs",
            "core",
            "pub fn total(xs: &[f64]) -> f64 {\n    \
             xs.chunks(8).map(|c| c.iter().sum::<f64>()).sum::<f64>()\n}\n\
             pub fn acc(xs: &[f64]) -> f64 {\n    let mut t = 0.0;\n    \
             for c in xs.chunks(4) { t += c[0]; }\n    t\n}\n\
             pub fn fine(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
        )]);
        let n = rules_of(&a)
            .iter()
            .filter(|r| **r == "float-reduction-order")
            .count();
        assert!(n >= 2, "{:?}", a.findings);
        assert!(
            !a.findings.iter().any(|f| f.line == 8),
            "ordered sum must stay clean: {:?}",
            a.findings
        );
    }

    #[test]
    fn sim_boundary_flags_clock_and_sink_imports() {
        let a = run(&[sim_file(
            "crates/scene/src/motion.rs",
            "scene",
            "use tagwatch_telemetry::clock::wall_now;\n\
             use tagwatch_telemetry::Telemetry;\n\
             pub fn t() -> f64 { wall_now() }\n",
        )]);
        let n = rules_of(&a)
            .iter()
            .filter(|r| **r == "sim-boundary")
            .count();
        // The import (line 1) and the call (line 3) each flag once; the
        // handle-API import on line 2 stays clean.
        assert_eq!(n, 2, "{:?}", a.findings);
        assert!(!a.findings.iter().any(|f| f.line == 2), "{:?}", a.findings);
    }

    #[test]
    fn graph_json_is_schema_versioned_and_deterministic() {
        let files = [sim_file(
            "crates/gen2/src/round.rs",
            "gen2",
            "pub fn run_round(rng: &mut StdRng) { let _ = rng.gen_bool(0.5); }\n",
        )];
        let a1 = run(&files);
        let a2 = run(&files);
        let j1 = graph_json(&a1.graph, &a1.report);
        let j2 = graph_json(&a2.graph, &a2.report);
        assert_eq!(j1, j2);
        assert!(j1.contains("\"schema\": \"tagwatch.lint.graph/v1\""));
        assert!(crate::diag::validate_json(&j1).is_ok(), "{j1}");
    }
}
