//! Findings and their renderings.
//!
//! One format for humans (`path:line:col: rule: message`, clickable in
//! every editor) and one for machines (JSON lines, hand-serialized so the
//! linter stays std-only).

use std::fmt;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character column.
    pub col: u32,
    /// Rule identifier (`determinism-wallclock`, …).
    pub rule: &'static str,
    /// Human-readable explanation, single line.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

impl Finding {
    /// The finding as one JSON object on one line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&self.file),
            self.line,
            self.col,
            json_str(self.rule),
            json_str(&self.message)
        )
    }
}

/// Sorts findings into the canonical reporting order:
/// (file, line, col, rule). Rule id is the tiebreaker — never
/// registration order — so JSON output stays byte-stable when rules are
/// added to (or reordered in) the catalog.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates that `s` is one well-formed JSON value (used by
/// `lint graph --check` and CI, so the graph export's parseability is
/// asserted without external tooling). Returns the byte offset of the
/// first violation on error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

const MAX_JSON_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_JSON_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_JSON_DEPTH} at byte {pos}"
        ));
    }
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                skip_ws(b, pos);
                value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(format!("expected a JSON value at byte {pos}")),
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("expected `{word}` at byte {pos}"))
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control char in string at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let d0 = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > d0
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_col_rule_message() {
        let f = Finding {
            file: "crates/core/src/x.rs".into(),
            line: 3,
            col: 14,
            rule: "panic-policy",
            message: "`unwrap()` in library code".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/core/src/x.rs:3:14: panic-policy: `unwrap()` in library code"
        );
    }

    #[test]
    fn json_escapes_specials() {
        let f = Finding {
            file: "a\"b.rs".into(),
            line: 1,
            col: 2,
            rule: "todo-tracker",
            message: "tab\there".into(),
        };
        let j = f.to_json();
        assert!(j.contains("\"file\":\"a\\\"b.rs\""));
        assert!(j.contains("tab\\there"));
    }

    fn f(file: &str, line: u32, col: u32, rule: &'static str) -> Finding {
        Finding {
            file: file.into(),
            line,
            col,
            rule,
            message: String::new(),
        }
    }

    /// Regression: same-position findings from different rules must
    /// order by rule *id*, not by the order rules ran in — JSON output
    /// stays stable when the catalog grows or reorders.
    #[test]
    fn sort_is_by_file_line_col_then_rule_id() {
        let mut findings = vec![
            f("b.rs", 1, 1, "panic-policy"),
            f("a.rs", 2, 1, "race-surface"),
            f("a.rs", 2, 1, "debug-leak"),
            f("a.rs", 1, 9, "panic-policy"),
            f("a.rs", 2, 1, "panic-policy"),
            f("a.rs", 1, 2, "unsafe-free"),
        ];
        sort_findings(&mut findings);
        let order: Vec<(&str, u32, u32, &str)> = findings
            .iter()
            .map(|x| (x.file.as_str(), x.line, x.col, x.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 1, 2, "unsafe-free"),
                ("a.rs", 1, 9, "panic-policy"),
                ("a.rs", 2, 1, "debug-leak"),
                ("a.rs", 2, 1, "panic-policy"),
                ("a.rs", 2, 1, "race-surface"),
                ("b.rs", 1, 1, "panic-policy"),
            ]
        );
    }

    #[test]
    fn json_validator_accepts_values_and_rejects_junk() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e3",
            "{\"a\": [1, {\"b\": \"c\\n\"}], \"d\": true}",
            "  [1, 2]  ",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "01x",
            "{'single': 1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }
}
