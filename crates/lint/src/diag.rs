//! Findings and their renderings.
//!
//! One format for humans (`path:line:col: rule: message`, clickable in
//! every editor) and one for machines (JSON lines, hand-serialized so the
//! linter stays std-only).

use std::fmt;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character column.
    pub col: u32,
    /// Rule identifier (`determinism-wallclock`, …).
    pub rule: &'static str,
    /// Human-readable explanation, single line.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

impl Finding {
    /// The finding as one JSON object on one line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&self.file),
            self.line,
            self.col,
            json_str(self.rule),
            json_str(&self.message)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_col_rule_message() {
        let f = Finding {
            file: "crates/core/src/x.rs".into(),
            line: 3,
            col: 14,
            rule: "panic-policy",
            message: "`unwrap()` in library code".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/core/src/x.rs:3:14: panic-policy: `unwrap()` in library code"
        );
    }

    #[test]
    fn json_escapes_specials() {
        let f = Finding {
            file: "a\"b.rs".into(),
            line: 1,
            col: 2,
            rule: "todo-tracker",
            message: "tab\there".into(),
        };
        let j = f.to_json();
        assert!(j.contains("\"file\":\"a\\\"b.rs\""));
        assert!(j.contains("tab\\there"));
    }
}
