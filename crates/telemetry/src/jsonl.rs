//! Re-ingestion of exported JSONL traces.
//!
//! [`crate::JsonlSink`] writes one serialized [`Event`] per line; this
//! module is the inverse half of that contract, shared by every offline
//! consumer (the `tagwatch-obs` analyzers, tests, ad-hoc tooling).
//! Errors carry 1-based line numbers, and a cut-off final line — the
//! signature of a process that died mid-run — is reported as
//! [`ParseError::TruncatedTail`] so consumers can distinguish "trace is
//! corrupt" from "trace is merely incomplete".

use crate::event::Event;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

/// One raw line pulled off the stream: its bytes (newline stripped) and
/// whether the newline was actually there. Reading *bytes* rather than
/// `read_line`'s `String` matters for the final line: a writer killed
/// mid-record can cut a multi-byte UTF-8 character in half, and that must
/// classify as a truncated tail, not as an I/O error.
struct RawLine {
    bytes: Vec<u8>,
    terminated: bool,
}

/// Reads one `\n`-delimited line as bytes. `Ok(None)` at end of stream.
fn read_raw_line<R: BufRead>(reader: &mut R) -> io::Result<Option<RawLine>> {
    let mut bytes = Vec::new();
    let n = reader.read_until(b'\n', &mut bytes)?;
    if n == 0 {
        return Ok(None);
    }
    let terminated = bytes.last() == Some(&b'\n');
    if terminated {
        bytes.pop();
        if bytes.last() == Some(&b'\r') {
            bytes.pop();
        }
    }
    Ok(Some(RawLine { bytes, terminated }))
}

/// Renders possibly-invalid UTF-8 for an error snippet.
fn snippet_of_bytes(bytes: &[u8]) -> String {
    snippet_of(&String::from_utf8_lossy(bytes))
}

/// Why a JSONL trace failed to re-ingest.
#[derive(Debug)]
pub enum ParseError {
    /// The trace file could not be opened at all.
    Open {
        /// The path that failed to open.
        path: std::path::PathBuf,
        source: io::Error,
    },
    /// The underlying stream failed while reading `line`.
    Io {
        /// 1-based line being read when the failure hit.
        line: usize,
        source: io::Error,
    },
    /// A newline-terminated line that is not a serialized [`Event`].
    Line {
        /// 1-based line number.
        line: usize,
        /// The serde decode error, rendered.
        message: String,
        /// The offending line, abbreviated for display.
        snippet: String,
    },
    /// The final line has no trailing newline and does not parse: the
    /// writer was cut off mid-line. Every line before it is intact.
    TruncatedTail {
        /// 1-based line number of the partial tail.
        line: usize,
        /// The partial tail, abbreviated for display.
        snippet: String,
    },
}

/// Truncates a line for inclusion in an error message.
fn snippet_of(line: &str) -> String {
    const MAX: usize = 80;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let mut cut = MAX;
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &line[..cut])
    }
}

impl ParseError {
    /// The 1-based line number the error is anchored to (0 when the
    /// failure precedes the first line, e.g. the file would not open).
    pub fn line(&self) -> usize {
        match self {
            ParseError::Open { .. } => 0,
            ParseError::Io { line, .. }
            | ParseError::Line { line, .. }
            | ParseError::TruncatedTail { line, .. } => *line,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Open { path, source } => {
                write!(f, "cannot open {}: {source}", path.display())
            }
            ParseError::Io { line, source } => {
                write!(f, "I/O error at line {line}: {source}")
            }
            ParseError::Line {
                line,
                message,
                snippet,
            } => write!(f, "line {line}: {message} (in {snippet:?})"),
            ParseError::TruncatedTail { line, snippet } => write!(
                f,
                "line {line}: truncated tail (no newline, unparseable): {snippet:?} — \
                 the writing process likely died mid-run; lines 1..{line} are intact"
            ),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Open { source, .. } | ParseError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses one JSONL line into an [`Event`].
pub fn parse_line(line: &str) -> Result<Event, serde_json::Error> {
    serde_json::from_str(line)
}

/// Reads every event from `reader`, strictly: any malformed line is an
/// error. Blank lines are skipped (a final newline produces one). Events
/// are returned in stream order with their 1-based line numbers, so
/// downstream validators can anchor their own diagnostics.
pub fn read_events<R: Read>(reader: R) -> Result<Vec<(usize, Event)>, ParseError> {
    let mut reader = BufReader::new(reader);
    let mut events = Vec::new();
    let mut line_no = 0usize;
    loop {
        line_no += 1;
        let raw = match read_raw_line(&mut reader) {
            Ok(None) => return Ok(events),
            Ok(Some(raw)) => raw,
            Err(source) => {
                return Err(ParseError::Io {
                    line: line_no,
                    source,
                })
            }
        };
        // A cut-off final line may end inside a multi-byte character, so
        // an unterminated line that is not valid UTF-8 is a truncated
        // tail, same as one that is valid UTF-8 but not valid JSON.
        let body = match std::str::from_utf8(&raw.bytes) {
            Ok(s) => s,
            Err(_) if !raw.terminated => {
                return Err(ParseError::TruncatedTail {
                    line: line_no,
                    snippet: snippet_of_bytes(&raw.bytes),
                })
            }
            Err(e) => {
                return Err(ParseError::Line {
                    line: line_no,
                    message: format!("invalid UTF-8: {e}"),
                    snippet: snippet_of_bytes(&raw.bytes),
                })
            }
        };
        if body.trim().is_empty() {
            continue;
        }
        match parse_line(body) {
            Ok(ev) => events.push((line_no, ev)),
            Err(_) if !raw.terminated => {
                // Unterminated + unparseable final line: the writer was
                // interrupted mid-line, not a corrupt trace.
                return Err(ParseError::TruncatedTail {
                    line: line_no,
                    snippet: snippet_of(body),
                });
            }
            Err(e) => {
                return Err(ParseError::Line {
                    line: line_no,
                    message: e.to_string(),
                    snippet: snippet_of(body),
                })
            }
        }
    }
}

/// [`read_events`] over a file path.
pub fn read_events_path<P: AsRef<Path>>(path: P) -> Result<Vec<(usize, Event)>, ParseError> {
    let file = File::open(path.as_ref()).map_err(|source| ParseError::Open {
        path: path.as_ref().to_path_buf(),
        source,
    })?;
    read_events(file)
}

/// Lenient variant: salvages every parseable line and returns the first
/// error (if any) alongside, instead of discarding the prefix. Useful for
/// post-mortem analysis of traces from crashed runs.
pub fn read_events_lenient<R: Read>(reader: R) -> (Vec<(usize, Event)>, Option<ParseError>) {
    let mut reader = BufReader::new(reader);
    let mut events = Vec::new();
    let mut first_err: Option<ParseError> = None;
    let mut line_no = 0usize;
    loop {
        line_no += 1;
        let raw = match read_raw_line(&mut reader) {
            Ok(None) => return (events, first_err),
            Ok(Some(raw)) => raw,
            Err(source) => {
                first_err.get_or_insert(ParseError::Io {
                    line: line_no,
                    source,
                });
                return (events, first_err);
            }
        };
        let body = match std::str::from_utf8(&raw.bytes) {
            Ok(s) => s,
            Err(e) => {
                let err = if raw.terminated {
                    ParseError::Line {
                        line: line_no,
                        message: format!("invalid UTF-8: {e}"),
                        snippet: snippet_of_bytes(&raw.bytes),
                    }
                } else {
                    ParseError::TruncatedTail {
                        line: line_no,
                        snippet: snippet_of_bytes(&raw.bytes),
                    }
                };
                first_err.get_or_insert(err);
                continue;
            }
        };
        if body.trim().is_empty() {
            continue;
        }
        match parse_line(body) {
            Ok(ev) => events.push((line_no, ev)),
            Err(e) => {
                let err = if raw.terminated {
                    ParseError::Line {
                        line: line_no,
                        message: e.to_string(),
                        snippet: snippet_of(body),
                    }
                } else {
                    ParseError::TruncatedTail {
                        line: line_no,
                        snippet: snippet_of(body),
                    }
                };
                first_err.get_or_insert(err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterRecord, GaugeRecord, TagRecord};

    fn sample_lines() -> (Vec<Event>, String) {
        let events = vec![
            Event::Counter(CounterRecord {
                name: "cycle.count".into(),
                delta: 1,
                total: 1,
            }),
            Event::Gauge(GaugeRecord {
                name: "tracked_tags".into(),
                value: 12.0,
            }),
            Event::Tag(TagRecord {
                name: "read.phase1".into(),
                epc: 42,
                t: 1.5,
            }),
        ];
        let body: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        (events, body)
    }

    #[test]
    fn json_round_trip_with_line_numbers() {
        let (events, body) = sample_lines();
        let parsed = read_events(body.as_bytes()).unwrap();
        assert_eq!(parsed.len(), events.len());
        for (k, ((line, ev), want)) in parsed.iter().zip(&events).enumerate() {
            assert_eq!(*line, k + 1);
            assert_eq!(ev, want);
        }
    }

    #[test]
    fn json_blank_lines_are_skipped() {
        let (events, body) = sample_lines();
        let spaced = body.replace('\n', "\n\n");
        let parsed = read_events(spaced.as_bytes()).unwrap();
        assert_eq!(parsed.len(), events.len());
        // Line numbers account for the blanks.
        assert_eq!(parsed[1].0, 3);
    }

    #[test]
    fn json_truncated_tail_is_distinguished() {
        let (_, body) = sample_lines();
        let cut = &body[..body.len() - 4]; // chop newline + 3 chars
        match read_events(cut.as_bytes()) {
            Err(ParseError::TruncatedTail { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected TruncatedTail, got {other:?}"),
        }
    }

    #[test]
    fn json_truncation_inside_multibyte_char_is_truncated_tail() {
        // A final line carrying non-ASCII content (e.g. a metric name
        // with a µ) cut mid-character is not valid UTF-8; it must still
        // classify as TruncatedTail, never as an I/O or line error.
        let (_, body) = sample_lines();
        let tail = serde_json::to_string(&Event::Gauge(GaugeRecord {
            name: "round.µ_latency".into(),
            value: 1.0,
        }))
        .unwrap();
        let full = format!("{body}{tail}\n");
        // Truncate at every byte offset inside the final line (dropping
        // the trailing newline first): every cut must be TruncatedTail.
        let last_start = full.len() - tail.len() - 1;
        for cut in last_start + 1..full.len() - 1 {
            match read_events(&full.as_bytes()[..cut]) {
                Err(ParseError::TruncatedTail { line, .. }) => assert_eq!(line, 4),
                other => panic!("cut at {cut}: expected TruncatedTail, got {other:?}"),
            }
        }
        // Lenient mode classifies the same way and salvages the prefix.
        let cut = &full.as_bytes()[..full.len() - 2]; // ends mid-"\n"? no: drops newline + last byte
        let (salvaged, err) = read_events_lenient(cut);
        assert_eq!(salvaged.len(), 3);
        match err {
            Some(ParseError::TruncatedTail { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected TruncatedTail, got {other:?}"),
        }
    }

    #[test]
    fn json_terminated_invalid_utf8_is_a_line_error() {
        // Mid-file invalid UTF-8 on a newline-terminated line is corrupt
        // data, not a truncated tail.
        let (_, body) = sample_lines();
        let mut bytes = body.into_bytes();
        bytes.splice(2..2, [0xFF, 0xFE]);
        match read_events(bytes.as_slice()) {
            Err(ParseError::Line { line, message, .. }) => {
                assert_eq!(line, 1);
                assert!(message.contains("UTF-8"), "{message}");
            }
            other => panic!("expected Line, got {other:?}"),
        }
    }

    #[test]
    fn json_midfile_garbage_is_a_line_error() {
        let (_, body) = sample_lines();
        let corrupt = body.replacen("\"gauge\"", "\"junk!\"", 1);
        match read_events(corrupt.as_bytes()) {
            Err(ParseError::Line { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Line error, got {other:?}"),
        }
    }

    #[test]
    fn json_lenient_salvages_prefix_and_suffix() {
        let (events, body) = sample_lines();
        let corrupt = body.replacen("\"gauge\"", "\"junk!\"", 1);
        let (salvaged, err) = read_events_lenient(corrupt.as_bytes());
        assert_eq!(salvaged.len(), events.len() - 1);
        assert_eq!(err.expect("error reported").line(), 2);
    }
}
