//! Re-ingestion of exported JSONL traces.
//!
//! [`crate::JsonlSink`] writes one serialized [`Event`] per line; this
//! module is the inverse half of that contract, shared by every offline
//! consumer (the `tagwatch-obs` analyzers, tests, ad-hoc tooling).
//! Errors carry 1-based line numbers, and a cut-off final line — the
//! signature of a process that died mid-run — is reported as
//! [`ParseError::TruncatedTail`] so consumers can distinguish "trace is
//! corrupt" from "trace is merely incomplete".

use crate::event::Event;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

/// Why a JSONL trace failed to re-ingest.
#[derive(Debug)]
pub enum ParseError {
    /// The trace file could not be opened at all.
    Open {
        /// The path that failed to open.
        path: std::path::PathBuf,
        source: io::Error,
    },
    /// The underlying stream failed while reading `line`.
    Io {
        /// 1-based line being read when the failure hit.
        line: usize,
        source: io::Error,
    },
    /// A newline-terminated line that is not a serialized [`Event`].
    Line {
        /// 1-based line number.
        line: usize,
        /// The serde decode error, rendered.
        message: String,
        /// The offending line, abbreviated for display.
        snippet: String,
    },
    /// The final line has no trailing newline and does not parse: the
    /// writer was cut off mid-line. Every line before it is intact.
    TruncatedTail {
        /// 1-based line number of the partial tail.
        line: usize,
        /// The partial tail, abbreviated for display.
        snippet: String,
    },
}

/// Truncates a line for inclusion in an error message.
fn snippet_of(line: &str) -> String {
    const MAX: usize = 80;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let mut cut = MAX;
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &line[..cut])
    }
}

impl ParseError {
    /// The 1-based line number the error is anchored to (0 when the
    /// failure precedes the first line, e.g. the file would not open).
    pub fn line(&self) -> usize {
        match self {
            ParseError::Open { .. } => 0,
            ParseError::Io { line, .. }
            | ParseError::Line { line, .. }
            | ParseError::TruncatedTail { line, .. } => *line,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Open { path, source } => {
                write!(f, "cannot open {}: {source}", path.display())
            }
            ParseError::Io { line, source } => {
                write!(f, "I/O error at line {line}: {source}")
            }
            ParseError::Line {
                line,
                message,
                snippet,
            } => write!(f, "line {line}: {message} (in {snippet:?})"),
            ParseError::TruncatedTail { line, snippet } => write!(
                f,
                "line {line}: truncated tail (no newline, unparseable): {snippet:?} — \
                 the writing process likely died mid-run; lines 1..{line} are intact"
            ),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Open { source, .. } | ParseError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses one JSONL line into an [`Event`].
pub fn parse_line(line: &str) -> Result<Event, serde_json::Error> {
    serde_json::from_str(line)
}

/// Reads every event from `reader`, strictly: any malformed line is an
/// error. Blank lines are skipped (a final newline produces one). Events
/// are returned in stream order with their 1-based line numbers, so
/// downstream validators can anchor their own diagnostics.
pub fn read_events<R: Read>(reader: R) -> Result<Vec<(usize, Event)>, ParseError> {
    let mut reader = BufReader::new(reader);
    let mut events = Vec::new();
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        line_no += 1;
        buf.clear();
        let n = reader
            .read_line(&mut buf)
            .map_err(|source| ParseError::Io {
                line: line_no,
                source,
            })?;
        if n == 0 {
            return Ok(events);
        }
        let terminated = buf.ends_with('\n');
        let body = buf.trim_end_matches(['\n', '\r']);
        if body.trim().is_empty() {
            continue;
        }
        match parse_line(body) {
            Ok(ev) => events.push((line_no, ev)),
            Err(e) if !terminated => {
                // Unterminated + unparseable final line: the writer was
                // interrupted mid-line, not a corrupt trace.
                let _ = e;
                return Err(ParseError::TruncatedTail {
                    line: line_no,
                    snippet: snippet_of(body),
                });
            }
            Err(e) => {
                return Err(ParseError::Line {
                    line: line_no,
                    message: e.to_string(),
                    snippet: snippet_of(body),
                })
            }
        }
    }
}

/// [`read_events`] over a file path.
pub fn read_events_path<P: AsRef<Path>>(path: P) -> Result<Vec<(usize, Event)>, ParseError> {
    let file = File::open(path.as_ref()).map_err(|source| ParseError::Open {
        path: path.as_ref().to_path_buf(),
        source,
    })?;
    read_events(file)
}

/// Lenient variant: salvages every parseable line and returns the first
/// error (if any) alongside, instead of discarding the prefix. Useful for
/// post-mortem analysis of traces from crashed runs.
pub fn read_events_lenient<R: Read>(reader: R) -> (Vec<(usize, Event)>, Option<ParseError>) {
    let mut reader = BufReader::new(reader);
    let mut events = Vec::new();
    let mut first_err = None;
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        line_no += 1;
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) => return (events, first_err),
            Ok(_) => {}
            Err(source) => {
                first_err.get_or_insert(ParseError::Io {
                    line: line_no,
                    source,
                });
                return (events, first_err);
            }
        }
        let terminated = buf.ends_with('\n');
        let body = buf.trim_end_matches(['\n', '\r']);
        if body.trim().is_empty() {
            continue;
        }
        match parse_line(body) {
            Ok(ev) => events.push((line_no, ev)),
            Err(e) => {
                let err = if terminated {
                    ParseError::Line {
                        line: line_no,
                        message: e.to_string(),
                        snippet: snippet_of(body),
                    }
                } else {
                    ParseError::TruncatedTail {
                        line: line_no,
                        snippet: snippet_of(body),
                    }
                };
                first_err.get_or_insert(err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterRecord, GaugeRecord, TagRecord};

    fn sample_lines() -> (Vec<Event>, String) {
        let events = vec![
            Event::Counter(CounterRecord {
                name: "cycle.count".into(),
                delta: 1,
                total: 1,
            }),
            Event::Gauge(GaugeRecord {
                name: "tracked_tags".into(),
                value: 12.0,
            }),
            Event::Tag(TagRecord {
                name: "read.phase1".into(),
                epc: 42,
                t: 1.5,
            }),
        ];
        let body: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        (events, body)
    }

    #[test]
    fn json_round_trip_with_line_numbers() {
        let (events, body) = sample_lines();
        let parsed = read_events(body.as_bytes()).unwrap();
        assert_eq!(parsed.len(), events.len());
        for (k, ((line, ev), want)) in parsed.iter().zip(&events).enumerate() {
            assert_eq!(*line, k + 1);
            assert_eq!(ev, want);
        }
    }

    #[test]
    fn json_blank_lines_are_skipped() {
        let (events, body) = sample_lines();
        let spaced = body.replace('\n', "\n\n");
        let parsed = read_events(spaced.as_bytes()).unwrap();
        assert_eq!(parsed.len(), events.len());
        // Line numbers account for the blanks.
        assert_eq!(parsed[1].0, 3);
    }

    #[test]
    fn json_truncated_tail_is_distinguished() {
        let (_, body) = sample_lines();
        let cut = &body[..body.len() - 4]; // chop newline + 3 chars
        match read_events(cut.as_bytes()) {
            Err(ParseError::TruncatedTail { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected TruncatedTail, got {other:?}"),
        }
    }

    #[test]
    fn json_midfile_garbage_is_a_line_error() {
        let (_, body) = sample_lines();
        let corrupt = body.replacen("\"gauge\"", "\"junk!\"", 1);
        match read_events(corrupt.as_bytes()) {
            Err(ParseError::Line { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Line error, got {other:?}"),
        }
    }

    #[test]
    fn json_lenient_salvages_prefix_and_suffix() {
        let (events, body) = sample_lines();
        let corrupt = body.replacen("\"gauge\"", "\"junk!\"", 1);
        let (salvaged, err) = read_events_lenient(corrupt.as_bytes());
        assert_eq!(salvaged.len(), events.len() - 1);
        assert_eq!(err.expect("error reported").line(), 2);
    }
}
