//! The wire model: every telemetry emission is one [`Event`], and every
//! sink receives the same stream. The JSONL export is just
//! `serde_json::to_string(&event)` per line, so the schema below *is* the
//! file format (documented in README.md § Telemetry).

use serde::{Deserialize, Serialize};

/// The one observation derived from the host wall clock: the controller's
/// per-cycle compute cost. The emitter (`tagwatch::controller`) and the
/// determinism predicate [`crate::sink::is_sim_deterministic`] — which
/// must *exclude* this name from the sim-deterministic substream — both
/// use this constant, so they cannot drift apart.
pub const COMPUTE_SECONDS_OBSERVATION: &str = "cycle.compute_seconds";

/// Which clock a span was measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ClockKind {
    /// Simulated air time — the reader's clock (seconds since simulation
    /// start). Deterministic across runs with the same seed.
    Sim,
    /// Host wall-clock time (seconds since the telemetry handle was
    /// created). Machine-dependent; used for compute-cost spans.
    Wall,
}

/// A closed span: a named duration with optional parent for hierarchy
/// (cycle → phase → round).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name (e.g. `cycle`, `phase1`, `cycle.compute`).
    pub name: String,
    /// Unique id within this telemetry handle's lifetime (starts at 1).
    pub id: u64,
    /// Id of the span that was open when this one started, if any.
    pub parent: Option<u64>,
    /// Start time in seconds on `clock`.
    pub start: f64,
    /// Duration in seconds.
    pub duration: f64,
    /// The clock `start`/`duration` were measured on.
    pub clock: ClockKind,
}

/// A counter increment, with the running total after applying it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterRecord {
    pub name: String,
    /// Amount added by this emission.
    pub delta: u64,
    /// Counter value after the increment.
    pub total: u64,
}

/// A gauge assignment (last-write-wins instantaneous value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeRecord {
    pub name: String,
    pub value: f64,
}

/// One histogram observation (the registry buckets it; sinks see the raw
/// value so offline analysis is not limited to the bucket layout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveRecord {
    pub name: String,
    pub value: f64,
}

/// A per-tag moment: something happened to one tag at one simulated
/// instant. The controller emits `read.phase1` / `read.phase2` per
/// delivered report, `assess.mobile` per mobile verdict, and `evict` per
/// eviction; experiment harnesses add `truth.mobile` ground-truth
/// annotations. Offline analysis (`tagwatch-obs`) reconstructs per-tag
/// IRR timelines, starvation windows, and detector confusion from these.
///
/// Tag events bypass the aggregated [`crate::MetricsRegistry`] — one
/// registry entry per EPC would defeat its O(names) memory bound — and
/// flow only to sinks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagRecord {
    /// What happened (e.g. `read.phase2`, `assess.mobile`).
    pub name: String,
    /// The tag's EPC as raw bits (`Epc::bits`).
    pub epc: u128,
    /// Simulated time of the moment, seconds.
    pub t: f64,
}

/// End-of-trace accounting, emitted by [`crate::Telemetry::finish`] (and
/// synthesized by [`crate::sink::RingSink`] dumps). It tells offline
/// analysis whether the stream it holds is *complete*: how many events
/// were delivered, how many a sampling policy suppressed, how many a
/// ceiling (or ring eviction) dropped, and the sampling configuration
/// that was in force. A trace whose footer reports suppression is
/// analyzed under relaxed counter-consistency rules instead of being
/// silently misread as complete (see `tagwatch-obs`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FooterRecord {
    /// Events delivered to sinks before this footer.
    pub emitted: u64,
    /// Round-family events suppressed by `sample_every_n_rounds`.
    pub sampled_out: u64,
    /// Events dropped by the `max_events` ceiling (or evicted from a
    /// bounded ring, for ring dumps).
    pub dropped: u64,
    /// Sampling policy echo: 1 keeps every round, N keeps one in N.
    pub sample_every_n_rounds: u32,
    /// Event ceiling echo: 0 means unlimited.
    pub max_events: u64,
}

impl FooterRecord {
    /// Whether the stream this footer closes holds every event the run
    /// emitted (nothing sampled out, nothing dropped).
    pub fn is_complete(&self) -> bool {
        self.sampled_out == 0 && self.dropped == 0
    }
}

/// One telemetry event. Serialized with an external `type` tag, so a JSONL
/// line looks like
/// `{"type":"span","name":"cycle","id":3,"parent":null,"start":0.0,...}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Event {
    Span(SpanRecord),
    Counter(CounterRecord),
    Gauge(GaugeRecord),
    Observe(ObserveRecord),
    Tag(TagRecord),
    Footer(FooterRecord),
}

impl Event {
    /// The metric/span name, whatever the variant.
    pub fn name(&self) -> &str {
        match self {
            Event::Span(s) => &s.name,
            Event::Counter(c) => &c.name,
            Event::Gauge(g) => &g.name,
            Event::Observe(o) => &o.name,
            Event::Tag(t) => &t.name,
            Event::Footer(_) => "trace.footer",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::Span(SpanRecord {
                name: "cycle".into(),
                id: 1,
                parent: None,
                start: 0.5,
                duration: 5.25,
                clock: ClockKind::Sim,
            }),
            Event::Counter(CounterRecord {
                name: "cycle.census".into(),
                delta: 40,
                total: 40,
            }),
            Event::Gauge(GaugeRecord {
                name: "tracked_tags".into(),
                value: 12.0,
            }),
            Event::Observe(ObserveRecord {
                name: "round.duration".into(),
                value: 0.031,
            }),
            Event::Tag(TagRecord {
                name: "read.phase2".into(),
                epc: (1u128 << 95) | 0xDEAD_BEEF,
                t: 3.125,
            }),
            Event::Footer(FooterRecord {
                emitted: 1234,
                sampled_out: 56,
                dropped: 7,
                sample_every_n_rounds: 4,
                max_events: 10_000,
            }),
        ];
        for ev in events {
            let line = serde_json::to_string(&ev).unwrap();
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn tagged_representation_is_stable() {
        let ev = Event::Counter(CounterRecord {
            name: "x".into(),
            delta: 1,
            total: 7,
        });
        let line = serde_json::to_string(&ev).unwrap();
        assert!(line.contains("\"type\":\"counter\""), "{line}");
        assert!(line.contains("\"total\":7"), "{line}");
    }

    #[test]
    fn footer_completeness_reads_suppression_counts() {
        let mut f = FooterRecord {
            emitted: 10,
            sampled_out: 0,
            dropped: 0,
            sample_every_n_rounds: 1,
            max_events: 0,
        };
        assert!(f.is_complete());
        f.sampled_out = 1;
        assert!(!f.is_complete());
        f.sampled_out = 0;
        f.dropped = 1;
        assert!(!f.is_complete());
        let ev = Event::Footer(f);
        assert_eq!(ev.name(), "trace.footer");
        let line = serde_json::to_string(&ev).unwrap();
        assert!(line.contains("\"type\":\"footer\""), "{line}");
    }

    #[test]
    fn tag_events_carry_full_epc_width() {
        // u128 EPC bits must survive JSON (serde_json encodes 128-bit
        // integers natively; this pins that the schema relies on it).
        let epc = (0xFEED_u128 << 112) | 1;
        let ev = Event::Tag(TagRecord {
            name: "read.phase1".into(),
            epc,
            t: 0.0,
        });
        let line = serde_json::to_string(&ev).unwrap();
        assert!(line.contains("\"type\":\"tag\""), "{line}");
        match serde_json::from_str::<Event>(&line).unwrap() {
            Event::Tag(t) => assert_eq!(t.epc, epc),
            other => panic!("unexpected {other:?}"),
        }
    }
}
