//! The wire model: every telemetry emission is one [`Event`], and every
//! sink receives the same stream. The JSONL export is just
//! `serde_json::to_string(&event)` per line, so the schema below *is* the
//! file format (documented in README.md § Telemetry).

use serde::{Deserialize, Serialize};

/// Which clock a span was measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ClockKind {
    /// Simulated air time — the reader's clock (seconds since simulation
    /// start). Deterministic across runs with the same seed.
    Sim,
    /// Host wall-clock time (seconds since the telemetry handle was
    /// created). Machine-dependent; used for compute-cost spans.
    Wall,
}

/// A closed span: a named duration with optional parent for hierarchy
/// (cycle → phase → round).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name (e.g. `cycle`, `phase1`, `cycle.compute`).
    pub name: String,
    /// Unique id within this telemetry handle's lifetime (starts at 1).
    pub id: u64,
    /// Id of the span that was open when this one started, if any.
    pub parent: Option<u64>,
    /// Start time in seconds on `clock`.
    pub start: f64,
    /// Duration in seconds.
    pub duration: f64,
    /// The clock `start`/`duration` were measured on.
    pub clock: ClockKind,
}

/// A counter increment, with the running total after applying it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterRecord {
    pub name: String,
    /// Amount added by this emission.
    pub delta: u64,
    /// Counter value after the increment.
    pub total: u64,
}

/// A gauge assignment (last-write-wins instantaneous value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeRecord {
    pub name: String,
    pub value: f64,
}

/// One histogram observation (the registry buckets it; sinks see the raw
/// value so offline analysis is not limited to the bucket layout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveRecord {
    pub name: String,
    pub value: f64,
}

/// One telemetry event. Serialized with an external `type` tag, so a JSONL
/// line looks like
/// `{"type":"span","name":"cycle","id":3,"parent":null,"start":0.0,...}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Event {
    Span(SpanRecord),
    Counter(CounterRecord),
    Gauge(GaugeRecord),
    Observe(ObserveRecord),
}

impl Event {
    /// The metric/span name, whatever the variant.
    pub fn name(&self) -> &str {
        match self {
            Event::Span(s) => &s.name,
            Event::Counter(c) => &c.name,
            Event::Gauge(g) => &g.name,
            Event::Observe(o) => &o.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::Span(SpanRecord {
                name: "cycle".into(),
                id: 1,
                parent: None,
                start: 0.5,
                duration: 5.25,
                clock: ClockKind::Sim,
            }),
            Event::Counter(CounterRecord {
                name: "cycle.census".into(),
                delta: 40,
                total: 40,
            }),
            Event::Gauge(GaugeRecord {
                name: "tracked_tags".into(),
                value: 12.0,
            }),
            Event::Observe(ObserveRecord {
                name: "round.duration".into(),
                value: 0.031,
            }),
        ];
        for ev in events {
            let line = serde_json::to_string(&ev).unwrap();
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn tagged_representation_is_stable() {
        let ev = Event::Counter(CounterRecord {
            name: "x".into(),
            delta: 1,
            total: 7,
        });
        let line = serde_json::to_string(&ev).unwrap();
        assert!(line.contains("\"type\":\"counter\""), "{line}");
        assert!(line.contains("\"total\":7"), "{line}");
    }
}
