//! Format-agnostic trace re-ingestion: one entry point for JSONL and
//! `.twb` traces.
//!
//! Offline consumers (the `tagwatch-obs` analyzers, the tests, ad-hoc
//! tooling) should not care which sink wrote a trace. This module sniffs
//! the leading bytes — a `.twb` file starts with [`TWB_MAGIC`], a JSONL
//! trace with the `{` of its first event — and dispatches to the right
//! decoder, returning the same `(record number, Event)` pairs either way.
//! [`crate::JsonlSink`] writes exactly one event per line with no blank
//! lines, so a run captured to both formats yields *identical* numbering:
//! binary record k is JSONL line k, and every line-anchored diagnostic
//! downstream (duplicate span ids, counter regressions, tag attribution)
//! reads the same whichever file it was fed.
//!
//! Binary decode failures are mapped onto the shared [`ParseError`]
//! vocabulary with record numbers standing in for line numbers:
//! truncation (writer died mid-record) becomes
//! [`ParseError::TruncatedTail`], corruption becomes [`ParseError::Line`].

use crate::binary::{self, DecodeError, TWB_MAGIC};
use crate::event::Event;
use crate::jsonl::{self, ParseError};
use std::io::Read;
use std::path::Path;

/// Which on-disk trace encoding a byte prefix announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One serde-JSON event per line ([`crate::JsonlSink`]).
    Jsonl,
    /// The compact binary format ([`crate::BinarySink`], magic `TWB1`).
    Binary,
}

/// Sniffs the encoding from the first bytes of a trace. A full or
/// partial match of [`TWB_MAGIC`] is binary — partial so that a `.twb`
/// file cut off inside its own magic still routes to the binary decoder
/// and reports truncation instead of a JSON parse error. Anything else
/// (including an empty file) is treated as JSONL, the historical default.
pub fn sniff(head: &[u8]) -> TraceFormat {
    let n = head.len().min(TWB_MAGIC.len());
    if n > 0 && head[..n] == TWB_MAGIC[..n] {
        TraceFormat::Binary
    } else {
        TraceFormat::Jsonl
    }
}

/// Maps a binary decode failure onto the shared parse-error vocabulary.
fn decode_to_parse(err: DecodeError) -> ParseError {
    match err {
        DecodeError::Truncated { record } => ParseError::TruncatedTail {
            line: record,
            snippet: "<binary record>".to_string(),
        },
        DecodeError::Corrupt { record, message } => ParseError::Line {
            line: record,
            message,
            snippet: "<binary record>".to_string(),
        },
    }
}

/// Decodes a complete in-memory trace of either format into events with
/// their 1-based record (= line) numbers.
pub fn read_events_bytes(bytes: &[u8]) -> Result<Vec<(usize, Event)>, ParseError> {
    match sniff(bytes) {
        TraceFormat::Jsonl => jsonl::read_events(bytes),
        TraceFormat::Binary => {
            let (_, decoded) = binary::decode_all(bytes).map_err(decode_to_parse)?;
            Ok(decoded.into_iter().map(|d| (d.record, d.event)).collect())
        }
    }
}

/// Reads every event from `reader`, sniffing the format first. The whole
/// stream is buffered — binary decoding needs the byte view, and traces
/// are bounded by the telemetry ceiling anyway.
pub fn read_events<R: Read>(mut reader: R) -> Result<Vec<(usize, Event)>, ParseError> {
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|source| ParseError::Io { line: 0, source })?;
    read_events_bytes(&bytes)
}

/// [`read_events`] over a file path.
pub fn read_events_path<P: AsRef<Path>>(path: P) -> Result<Vec<(usize, Event)>, ParseError> {
    let bytes = std::fs::read(path.as_ref()).map_err(|source| ParseError::Open {
        path: path.as_ref().to_path_buf(),
        source,
    })?;
    read_events_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::encode_stream;
    use crate::event::CounterRecord;

    fn sample() -> Vec<Event> {
        (0..5u64)
            .map(|k| {
                Event::Counter(CounterRecord {
                    name: "round.offered".into(),
                    delta: 1,
                    total: k + 1,
                })
            })
            .collect()
    }

    #[test]
    fn sniff_routes_magic_prefixes_to_binary() {
        assert_eq!(sniff(b"TWB1..."), TraceFormat::Binary);
        assert_eq!(sniff(b"TW"), TraceFormat::Binary);
        assert_eq!(sniff(b"{\"type\":\"counter\""), TraceFormat::Jsonl);
        assert_eq!(sniff(b""), TraceFormat::Jsonl);
    }

    #[test]
    fn unified_reader_numbers_both_formats_identically() {
        let events = sample();
        let jsonl: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let twb = encode_stream(&events);
        let a = read_events_bytes(jsonl.as_bytes()).unwrap();
        let b = read_events_bytes(&twb).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn binary_truncation_maps_to_truncated_tail() {
        let twb = encode_stream(&sample());
        match read_events_bytes(&twb[..twb.len() - 1]) {
            Ok(events) => {
                // The last cut byte may fall exactly after a record; then
                // the prefix is clean but shorter.
                assert!(events.len() < 5);
            }
            Err(ParseError::TruncatedTail { line, .. }) => assert!(line >= 1),
            other => panic!("unexpected {other:?}"),
        }
        // A cut inside the magic still classifies as binary truncation.
        match read_events_bytes(&twb[..2]) {
            Err(ParseError::TruncatedTail { line, .. }) => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
