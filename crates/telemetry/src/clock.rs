//! The workspace's single wall-clock authority.
//!
//! Identical-seed runs must be bit-identical everywhere outside this
//! module: the `obs diff` determinism self-check and the BENCH gate both
//! depend on it, and the paper's calibrated cost model `C(n) = τ0 +
//! n·e·τ̄·ln n` only holds because slot timings are *computed*, not
//! sampled from the host. Host time is still a legitimate measurement —
//! wall-clock spans, overhead calibration, figure timing — so every such
//! read funnels through here, where the `lint` determinism rule
//! (`determinism-wallclock`) can see it. Reading `Instant::now()` or
//! `SystemTime::now()` anywhere else in the workspace is a lint finding.

use std::time::{Duration, Instant};

/// An opaque wall-clock reading taken by [`wall_now`].
///
/// Deliberately *not* convertible back into [`Instant`]: holders can
/// difference readings (durations) but cannot smuggle absolute host time
/// into simulation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WallInstant(Instant);

/// Reads the host monotonic clock. The only sanctioned wall-clock read in
/// the workspace.
pub fn wall_now() -> WallInstant {
    WallInstant(Instant::now())
}

impl WallInstant {
    /// Wall time elapsed since this reading was taken.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// [`WallInstant::elapsed`] in seconds, the unit telemetry reports in.
    pub fn elapsed_seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Duration since an earlier reading, clamped to zero if `earlier` is
    /// actually later (mirrors [`Instant::saturating_duration_since`]).
    pub fn saturating_duration_since(&self, earlier: WallInstant) -> Duration {
        self.0.saturating_duration_since(earlier.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_readings_are_monotone() {
        let a = wall_now();
        let b = wall_now();
        assert!(b >= a);
        assert_eq!(a.saturating_duration_since(b).as_nanos(), 0);
        assert!(b.saturating_duration_since(a) <= b.elapsed() + a.elapsed());
    }

    #[test]
    fn elapsed_seconds_matches_elapsed() {
        let a = wall_now();
        let secs = a.elapsed_seconds();
        assert!(secs >= 0.0);
        assert!(secs.is_finite());
    }
}
