//! Fixed-bucket histograms.
//!
//! The registry aggregates duration observations into histograms so a
//! 50,000-cycle run summarizes in O(buckets) memory. Percentile estimates
//! follow the same rank semantics as `tagwatch::metrics::percentile`
//! (linear interpolation over `rank = p/100 · (n-1)`), so a
//! histogram-derived p50/p95 agrees with the exact sample percentile to
//! within one bucket width (a property test in `tests/` pins this).

/// A histogram over fixed, ascending bucket edges.
///
/// Bucket `i` covers `(edges[i-1], edges[i]]` (bucket 0 starts at `lo`);
/// one extra overflow bucket catches values above the last edge. Values
/// below `lo` are clamped into bucket 0. Exact `min`/`max`/`sum` are
/// tracked alongside, so degenerate summaries (all samples equal) stay
/// tight.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    edges: Vec<f64>,
    /// `edges.len() + 1` buckets; the last is overflow.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with explicit ascending upper edges starting at `lo`.
    ///
    /// Panics if `edges` is empty or not strictly ascending above `lo`.
    pub fn with_edges(lo: f64, edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one bucket");
        let mut prev = lo;
        for &e in &edges {
            assert!(e > prev, "edges must ascend strictly from lo");
            prev = e;
        }
        let counts = vec![0; edges.len() + 1];
        Histogram {
            lo,
            edges,
            counts,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// `buckets` equal-width buckets of `width` starting at `lo`.
    pub fn linear(lo: f64, width: f64, buckets: usize) -> Self {
        assert!(width > 0.0 && buckets > 0);
        let edges = (1..=buckets).map(|k| lo + width * k as f64).collect();
        Histogram::with_edges(lo, edges)
    }

    /// `buckets` geometric buckets: edges `lo·factor^k` for `k = 1..=buckets`.
    pub fn exponential(lo: f64, factor: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && factor > 1.0 && buckets > 0);
        let edges = (1..=buckets).map(|k| lo * factor.powi(k as i32)).collect();
        Histogram::with_edges(lo, edges)
    }

    /// The default layout for duration metrics: 128 geometric buckets from
    /// 1 µs to 100 s (≈ 15.5 % relative resolution), covering everything
    /// from a Gen2 slot to a full read cycle.
    pub fn durations() -> Self {
        Histogram::exponential(1e-6, 10f64.powf(1.0 / 16.0), 128)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let idx = self.edges.partition_point(|&e| e < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The p-th percentile (0–100), estimated from the buckets; `None`
    /// when empty.
    ///
    /// The rank convention matches `tagwatch::metrics::percentile`:
    /// linear interpolation between the order statistics bracketing
    /// `rank = p/100 · (n-1)`. Each order statistic is estimated inside
    /// *its own* bucket (the two can straddle a bucket boundary — or a
    /// run of empty buckets — when the rank is fractional), which keeps
    /// the estimate within one bucket width of the exact sample
    /// percentile. Pinned by `tests/prop_telemetry.rs`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        let rank = p / 100.0 * (self.count - 1) as f64;
        let k_lo = rank.floor() as u64;
        let k_hi = rank.ceil() as u64;
        let v_lo = self.order_statistic(k_lo);
        let v_hi = if k_hi == k_lo {
            v_lo
        } else {
            self.order_statistic(k_hi)
        };
        Some(v_lo + (rank - k_lo as f64) * (v_hi - v_lo))
    }

    /// Bucket-interpolated estimate of the k-th (0-based, `k < count`)
    /// order statistic: locate k's bucket, spread that bucket's samples
    /// evenly across it, clamp to the observed min/max (so degenerate and
    /// overflow buckets stay tight). The estimate and the true statistic
    /// share a bucket, bounding the error by that bucket's width.
    fn order_statistic(&self, k: u64) -> f64 {
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if below + c > k {
                let lower = if i == 0 { self.lo } else { self.edges[i - 1] };
                let upper = if i < self.edges.len() {
                    self.edges[i]
                } else {
                    self.max
                };
                let lower = lower.clamp(self.min, self.max);
                let upper = upper.clamp(lower, self.max);
                let frac = if c <= 1 {
                    0.5
                } else {
                    (k - below) as f64 / (c - 1) as f64
                };
                return lower + frac * (upper - lower);
            }
            below += c;
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn linear_buckets_count_correctly() {
        let mut h = Histogram::linear(0.0, 1.0, 10);
        for v in [0.5, 1.0, 1.5, 2.5, 9.5, 11.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        // 0.5 and 1.0 both land in bucket 0 (upper-edge inclusive).
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.bucket_counts()[2], 1);
        // 11.0 overflows.
        assert_eq!(*h.bucket_counts().last().unwrap(), 1);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(11.0));
        assert!((h.sum() - 26.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_tracks_exact_within_bucket_width() {
        let samples: Vec<f64> = (0..100).map(|k| k as f64 + 0.5).collect();
        let mut h = Histogram::linear(0.0, 1.0, 100);
        for &s in &samples {
            h.observe(s);
        }
        for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let approx = h.percentile(p).unwrap();
            // Exact (same rank semantics): interpolate the sorted samples.
            let rank = p / 100.0 * 99.0;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let exact = samples[lo] + (rank - lo as f64) * (samples[hi] - samples[lo]);
            assert!(
                (approx - exact).abs() <= 1.0 + 1e-9,
                "p{p}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn fractional_rank_straddling_empty_buckets() {
        // Regression: rank 4.5 falls between the 4th order statistic
        // (bucket 0) and the 5th (bucket 10), across nine empty buckets.
        // Estimating only in the upper bucket would answer ~10.25; the
        // exact interpolated percentile is 5.5.
        let mut h = Histogram::linear(0.0, 1.0, 12);
        for _ in 0..5 {
            h.observe(0.5);
        }
        h.observe(10.5);
        let approx = h.percentile(90.0).unwrap(); // rank = 4.5
        assert!(
            (approx - 5.5).abs() <= 1.0 + 1e-9,
            "p90 {approx} vs exact 5.5"
        );
    }

    #[test]
    fn degenerate_single_value() {
        let mut h = Histogram::durations();
        for _ in 0..5 {
            h.observe(0.004);
        }
        let p50 = h.percentile(50.0).unwrap();
        assert!((p50 - 0.004).abs() < 1e-12, "clamped to observed range");
        assert_eq!(h.percentile(99.0), Some(0.004));
    }

    #[test]
    fn empty_histogram_has_no_percentile() {
        let h = Histogram::linear(0.0, 1.0, 4);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn values_below_lo_clamp_into_first_bucket() {
        let mut h = Histogram::linear(1.0, 1.0, 3);
        h.observe(0.25);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.percentile(50.0), Some(0.25));
    }

    #[test]
    fn nan_observations_are_ignored() {
        let mut h = Histogram::linear(0.0, 1.0, 4);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn durations_layout_spans_micro_to_minutes() {
        let mut h = Histogram::durations();
        h.observe(2e-6);
        h.observe(0.030);
        h.observe(5.0);
        assert_eq!(h.count(), 3);
        // All three in distinct, non-overflow buckets.
        let nonzero = h
            .bucket_counts()
            .iter()
            .take(h.bucket_counts().len() - 1)
            .filter(|&&c| c > 0)
            .count();
        assert_eq!(nonzero, 3);
    }
}
