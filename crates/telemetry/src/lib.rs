//! # tagwatch-telemetry — structured observability for the two-phase stack
//!
//! A std-only telemetry layer (serde/serde_json are the only external
//! deps, both already in the workspace): spans, a metrics registry, and
//! pluggable event sinks.
//!
//! * **Spans** ([`SpanGuard`], [`SimSpan`]) record name, start, duration,
//!   and parent. Simulated-clock spans take explicit reader timestamps
//!   (deterministic under a fixed seed); wall-clock guards time host
//!   compute. Parenting is inferred from the per-thread open-span stack,
//!   producing the controller's cycle → phase → round hierarchy.
//! * **Metrics** ([`MetricsRegistry`]) aggregate counters, gauges, and
//!   fixed-bucket [`Histogram`]s whose percentile semantics match
//!   `tagwatch::metrics::percentile` to within one bucket width.
//! * **Sinks** ([`Sink`]) receive every [`Event`]: [`MemorySink`] is a
//!   bounded ring buffer for tests, [`JsonlSink`] a buffered JSONL file
//!   for offline analysis (flushed on [`Drop`], so even a panicking run
//!   leaves a parseable trace), [`BinarySink`] the compact `.twb` binary
//!   equivalent ([`binary`]), [`ShardedSink`] its k-way split with a
//!   deterministic merge ([`shard`]), and [`RingSink`] a fixed-capacity
//!   flight recorder that dumps the tail of the trace on demand.
//! * **Overhead control** ([`TelemetryConfig`], [`Telemetry::finish`])
//!   keeps tracing affordable at scale: deterministic round sampling and
//!   an event ceiling throttle sink volume (the registry always sees
//!   everything), and a [`FooterRecord`] closes the trace with delivery /
//!   suppression counts so offline analysis knows when a stream is
//!   incomplete. [`overhead`] measures the per-event emission cost that
//!   `obs hotspots` uses to estimate telemetry self-time.
//! * **Re-ingestion** ([`format`], [`jsonl`]) parses exported traces —
//!   JSONL or `.twb`, sniffed from the leading bytes — back into
//!   [`Event`]s with record-numbered errors, the shared front half of
//!   the offline `tagwatch-obs` analyzers.
//! * **Tag events** ([`TagRecord`], [`Telemetry::tag_event`]) record
//!   per-tag moments (reads, mobile verdicts, evictions, ground-truth
//!   annotations) for per-tag IRR and confusion analysis offline.
//!
//! With no sink installed a handle is disabled and every emission costs
//! one relaxed atomic load, so instrumentation stays compiled into hot
//! paths. The process-wide [`Telemetry::global`] handle lets a CLI flag
//! (`repro --telemetry out.jsonl`) capture the whole stack.
//!
//! ```
//! use tagwatch_telemetry::{MemorySink, Telemetry};
//!
//! let tel = Telemetry::new();
//! let sink = MemorySink::new(1024);
//! tel.install(Box::new(sink.clone()));
//!
//! let cycle = tel.sim_span("cycle", 0.0);
//! tel.incr_by("cycle.census", 40);
//! let compute = tel.timed("cycle.compute");
//! let compute_seconds = compute.finish();
//! cycle.end(5.0);
//!
//! assert!(compute_seconds >= 0.0);
//! assert_eq!(sink.spans_named("cycle").len(), 1);
//! assert_eq!(tel.snapshot().counter("cycle.census"), Some(40));
//! ```

#![forbid(unsafe_code)]
pub mod binary;
pub mod clock;
pub mod event;
pub mod format;
pub mod handle;
pub mod histogram;
pub mod jsonl;
pub mod overhead;
pub mod registry;
pub mod shard;
pub mod sink;
pub mod span;
pub mod work;

pub use binary::{BinarySink, DecodeError, ShardHeader, StreamDecoder};
pub use clock::{wall_now, WallInstant};
pub use event::{
    ClockKind, CounterRecord, Event, FooterRecord, GaugeRecord, ObserveRecord, SpanRecord,
    TagRecord, COMPUTE_SECONDS_OBSERVATION,
};
pub use format::TraceFormat;
pub use handle::{Telemetry, TelemetryConfig};
pub use histogram::Histogram;
pub use jsonl::ParseError;
pub use overhead::OverheadEstimate;
pub use registry::MetricsRegistry;
pub use shard::{MergeError, ShardedSink};
pub use sink::{
    is_sim_deterministic, JsonlSink, MemorySink, NullSink, RingSink, SimOnlySink, Sink,
};
pub use span::{SimSpan, SpanGuard};
pub use work::{WorkCounters, WORK_PREFIX};

/// Starts a wall-clock span on a handle: `let _g = span!(tel, "phase1");`.
/// The span closes (and is emitted) when the guard leaves scope.
#[macro_export]
macro_rules! span {
    ($tel:expr, $name:expr) => {
        $tel.timed($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_macro_produces_a_guard() {
        let tel = Telemetry::new();
        let sink = MemorySink::new(16);
        tel.install(Box::new(sink.clone()));
        {
            let _g = span!(tel, "macro_span");
        }
        assert_eq!(sink.spans_named("macro_span").len(), 1);
    }
}
