//! The metrics registry: named counters, gauges, and histograms.
//!
//! `BTreeMap` keys keep iteration (and therefore summary tables) in a
//! stable alphabetical order. The registry is plain data — the
//! [`crate::Telemetry`] handle owns one behind its lock and hands out
//! clones as snapshots.

use crate::histogram::Histogram;
use std::collections::BTreeMap;

/// Aggregated metric state. Cloning yields a consistent snapshot.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero), returning the
    /// new total. Looks the name up by `&str` first so the steady-state
    /// hot path (re-incrementing an existing counter) never allocates the
    /// owned key; only the first sighting of a name pays the `String`.
    pub fn incr_by(&mut self, name: &str, delta: u64) -> u64 {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot = slot.saturating_add(delta);
            return *slot;
        }
        let slot = self.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
        *slot
    }

    /// Sets gauge `name` to `value`. Allocation-free once the gauge
    /// exists (same fast path as [`MetricsRegistry::incr_by`]).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.gauges.get_mut(name) {
            *slot = value;
            return;
        }
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name`, creating it with the
    /// [`Histogram::durations`] layout on first sight. Allocation-free
    /// once the histogram exists.
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
            return;
        }
        self.histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::durations)
            .observe(value);
    }

    /// Pre-registers histogram `name` with a custom bucket layout
    /// (replacing any default-layout instance created earlier).
    pub fn register_histogram(&mut self, name: &str, histogram: Histogram) {
        self.histograms.insert(name.to_string(), histogram);
    }

    /// Counter total, if the counter exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if any observation ever landed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn counters_accumulate_and_report_totals() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.incr_by("a", 3), 3);
        assert_eq!(r.incr_by("a", 4), 7);
        assert_eq!(r.counter("a"), Some(7));
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("g", 1.0);
        r.gauge_set("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
    }

    #[test]
    fn observe_auto_creates_duration_histogram() {
        let mut r = MetricsRegistry::new();
        r.observe("d", 0.05);
        r.observe("d", 0.06);
        let h = r.histogram("d").unwrap();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn custom_layout_replaces_default() {
        let mut r = MetricsRegistry::new();
        r.register_histogram("lin", Histogram::linear(0.0, 1.0, 4));
        r.observe("lin", 2.5);
        assert_eq!(r.histogram("lin").unwrap().bucket_counts()[2], 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut r = MetricsRegistry::new();
        r.incr_by("b", 1);
        r.incr_by("a", 1);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(!r.is_empty());
    }
}
