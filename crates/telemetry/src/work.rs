//! Deterministic work accounting: counting *simulation work units* so
//! wall time can be treated as a derived, variance-qualified rate.
//!
//! The bench gates record wall seconds, but wall time alone cannot
//! distinguish "the code got faster" from "the run silently did less
//! work". [`WorkCounters`] counts the units of work the simulator
//! performs — slots simulated, Gen2 commands issued, channel
//! evaluations, geometry recomputes, mixture updates, RNG draws — all of
//! which are functions of the seed and configuration only, never of the
//! host. Two runs of the same seed and scale must produce byte-identical
//! `perf.work.*` counters no matter the sink configuration, sampling
//! rate, or machine; `obs compare` refuses to compare wall-side numbers
//! until that identity holds.
//!
//! Counting happens in plain fields on the hot path (no atomics, no
//! telemetry calls per unit) and is flushed in bulk at coarse
//! boundaries — the reader flushes once per ROSpec execution, the
//! controller once per cycle — so the accounting itself costs almost
//! nothing and, crucially, never touches the simulation's RNG stream.
//!
//! Counter naming: every flushed counter is `perf.work.<field>` with the
//! field in `snake_case` (enforced by the workspace lint's
//! `perf-counter-name` rule). All fields are flushed every time, zeros
//! included, so the counter *set* in a trace is byte-stable across
//! scenarios and diffs never see counters appear or vanish.

use crate::handle::Telemetry;

/// Prefix every work counter shares (see [`WorkCounters::flush`]).
pub const WORK_PREFIX: &str = "perf.work.";

/// Accumulator for deterministic work units. Embed one in a component,
/// bump the fields inline on the hot path, and [`flush`](Self::flush)
/// at a coarse boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Inventory slots simulated (empty, collision, or success).
    pub slots: u64,
    /// Gen2 Select commands issued by the reader.
    pub selects: u64,
    /// Gen2 Query commands issued (one per inventory round).
    pub queries: u64,
    /// Gen2 QueryRep commands issued (including ones lost to faults —
    /// the reader does the work of issuing either way).
    pub query_reps: u64,
    /// Gen2 QueryAdjust commands issued (Q changes mid-round).
    pub query_adjusts: u64,
    /// Per-(tag, antenna) RF channel evaluations (one per delivered
    /// read: `ChannelModel::observe`).
    pub channel_evals: u64,
    /// Fresnel/geometry path recomputes: the LOS path plus one per
    /// reflector evaluated for a channel observation.
    pub geometry_recomputes: u64,
    /// Mixture-model updates: readings fed into a per-tag MoG detector.
    pub gmm_updates: u64,
    /// Simulation RNG draws performed by the reader/channel layer
    /// (protocol-internal tag draws are excluded; see DESIGN.md §11).
    pub rng_draws: u64,
    /// Telemetry events offered to the delivery choke point (emitted +
    /// sampled out + dropped). Flushed by the bench harness from
    /// [`Telemetry::offered`], not by components.
    pub telemetry_events: u64,
}

impl WorkCounters {
    /// An all-zero accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Field-wise sum.
    pub fn merge(&mut self, other: &WorkCounters) {
        self.slots += other.slots;
        self.selects += other.selects;
        self.queries += other.queries;
        self.query_reps += other.query_reps;
        self.query_adjusts += other.query_adjusts;
        self.channel_evals += other.channel_evals;
        self.geometry_recomputes += other.geometry_recomputes;
        self.gmm_updates += other.gmm_updates;
        self.rng_draws += other.rng_draws;
        self.telemetry_events += other.telemetry_events;
    }

    /// Total units across all fields (a quick "did any work happen").
    pub fn total(&self) -> u64 {
        self.as_pairs().iter().map(|(_, v)| v).sum()
    }

    /// The `(counter-name, value)` view, in a fixed order. Names carry
    /// the full `perf.work.` prefix.
    pub fn as_pairs(&self) -> [(&'static str, u64); 10] {
        [
            ("perf.work.slots", self.slots),
            ("perf.work.selects", self.selects),
            ("perf.work.queries", self.queries),
            ("perf.work.query_reps", self.query_reps),
            ("perf.work.query_adjusts", self.query_adjusts),
            ("perf.work.channel_evals", self.channel_evals),
            ("perf.work.geometry_recomputes", self.geometry_recomputes),
            ("perf.work.gmm_updates", self.gmm_updates),
            ("perf.work.rng_draws", self.rng_draws),
            ("perf.work.telemetry_events", self.telemetry_events),
        ]
    }

    /// Flushes every field as a `perf.work.*` counter increment and
    /// resets the accumulator. Zero fields are flushed too, so the
    /// counter set is identical across scenarios. A disabled handle
    /// drops the counts, like every other metric.
    pub fn flush(&mut self, tel: &Telemetry) {
        if tel.is_enabled() {
            for (name, value) in self.as_pairs() {
                tel.incr_by(name, value);
            }
        }
        *self = WorkCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn flush_emits_every_field_and_resets() {
        let tel = Telemetry::new();
        let sink = MemorySink::new(1 << 10);
        tel.install(Box::new(sink.clone()));
        let mut w = WorkCounters {
            slots: 3,
            channel_evals: 7,
            ..WorkCounters::default()
        };
        w.flush(&tel);
        assert_eq!(w, WorkCounters::default(), "flush resets");
        let snap = tel.snapshot();
        // Every field lands, zeros included — the counter set is stable.
        for (name, _) in WorkCounters::default().as_pairs() {
            assert!(snap.counter(name).is_some(), "missing {name}");
        }
        assert_eq!(snap.counter("perf.work.slots"), Some(3));
        assert_eq!(snap.counter("perf.work.channel_evals"), Some(7));
        assert_eq!(snap.counter("perf.work.queries"), Some(0));
        assert_eq!(sink.len(), 10);
    }

    #[test]
    fn flush_on_disabled_handle_still_resets() {
        let tel = Telemetry::new();
        let mut w = WorkCounters {
            slots: 5,
            ..WorkCounters::default()
        };
        w.flush(&tel);
        assert_eq!(w.slots, 0);
        assert!(tel.snapshot().is_empty());
    }

    #[test]
    fn merge_is_field_wise() {
        let mut a = WorkCounters {
            slots: 1,
            rng_draws: 2,
            ..WorkCounters::default()
        };
        let b = WorkCounters {
            slots: 10,
            queries: 4,
            ..WorkCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.slots, 11);
        assert_eq!(a.queries, 4);
        assert_eq!(a.rng_draws, 2);
        assert_eq!(a.total(), 17);
    }

    #[test]
    fn pair_names_follow_the_convention() {
        for (name, _) in WorkCounters::default().as_pairs() {
            let field = name.strip_prefix(WORK_PREFIX).expect("prefix");
            assert!(
                !field.is_empty() && field.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "bad counter name {name}"
            );
        }
    }
}
