//! The [`Telemetry`] handle: the single cheap object the rest of the
//! system talks to.
//!
//! A handle is an `Arc` around an enabled flag, a span-id allocator, and a
//! mutex over (registry, sinks). With no sink installed the handle is
//! *disabled* and every emission is a single relaxed atomic load — cheap
//! enough to leave the instrumentation compiled into the hot path
//! unconditionally (the controller criterion bench budget is < 2 %).

use crate::clock::{self, WallInstant};
use crate::event::{
    ClockKind, CounterRecord, Event, FooterRecord, GaugeRecord, ObserveRecord, SpanRecord,
    TagRecord,
};
use crate::histogram::Histogram;
use crate::registry::MetricsRegistry;
use crate::sink::Sink;
use crate::span::{SimSpan, SpanGuard};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Sink-side volume control: what fraction of the round-family event
/// stream reaches sinks, and a hard ceiling on delivered events. The
/// in-process [`MetricsRegistry`] always aggregates *everything* — only
/// sink delivery (JSONL lines, ring slots) is throttled, so
/// [`Telemetry::snapshot`] stays exact under any sampling policy.
///
/// Round sampling is deterministic: rounds are numbered in emission
/// order, and round `k` (0-based) is kept iff `k % sample_every_n_rounds
/// == 0`. A round's `round.*` counters/observations and its `round` span
/// are kept or suppressed *atomically*, so every round that survives into
/// the trace carries its complete slot breakdown. Two runs with the same
/// seed and the same config therefore sample identical rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Keep one round in every N (1 keeps all; 0 is treated as 1).
    pub sample_every_n_rounds: u32,
    /// Stop delivering events to sinks after this many (0 = unlimited).
    /// Suppressed events are counted and surfaced in the trace footer.
    pub max_events: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_every_n_rounds: 1,
            max_events: 0,
        }
    }
}

impl TelemetryConfig {
    /// Whether this config can suppress events at all.
    pub fn is_complete(&self) -> bool {
        self.sample_every_n_rounds <= 1 && self.max_events == 0
    }
}

struct Inner {
    enabled: AtomicBool,
    next_span_id: AtomicU64,
    /// Wall-clock origin: wall-span start offsets are relative to this.
    origin: WallInstant,
    state: Mutex<State>,
}

#[derive(Default)]
struct State {
    registry: MetricsRegistry,
    sinks: Vec<Box<dyn Sink + Send>>,
    cfg: TelemetryConfig,
    /// Events delivered to sinks (footers excluded).
    emitted: u64,
    /// Round-family events suppressed by sampling.
    sampled_out: u64,
    /// Events dropped by the `max_events` ceiling.
    dropped: u64,
    /// Rounds whose span has closed (= index of the round in flight).
    rounds_seen: u64,
    /// Keep/suppress decision for the round currently in flight, made at
    /// its first round-family event and cleared when its span closes.
    round_kept: Option<bool>,
}

impl State {
    /// The single choke point between the emit methods and the sinks:
    /// applies round sampling and the event ceiling, and keeps the
    /// suppression counts. Returns whether the event survives to the
    /// sinks. Takes the name (not a built [`Event`]) so emit methods can
    /// run the accounting *before* paying any allocation: on an enabled
    /// handle with no sinks — the bench harness's counters-only mode —
    /// the whole emission becomes allocation-free while
    /// [`Telemetry::offered`] stays byte-identical. `closes_round` marks
    /// the closing `round` span: the next round-family event then
    /// belongs to the next round.
    fn precount(&mut self, name: &str, closes_round: bool) -> bool {
        let cfg = self.cfg;
        if name == "round" || name.starts_with("round.") {
            let n = cfg.sample_every_n_rounds.max(1) as u64;
            // Not `is_multiple_of`: the workspace floor predates it.
            #[allow(clippy::manual_is_multiple_of)]
            let keep = *self.round_kept.get_or_insert(self.rounds_seen % n == 0);
            if closes_round {
                self.rounds_seen += 1;
                self.round_kept = None;
            }
            if !keep {
                self.sampled_out += 1;
                return false;
            }
        }
        if cfg.max_events > 0 && self.emitted >= cfg.max_events {
            self.dropped += 1;
            return false;
        }
        self.emitted += 1;
        true
    }

    fn fan_out(&mut self, ev: &Event) {
        for sink in &mut self.sinks {
            sink.record(ev);
        }
    }
}

/// A cloneable telemetry handle. Clones share all state.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

impl Telemetry {
    /// A fresh, disabled handle with no sinks.
    pub fn new() -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(false),
                next_span_id: AtomicU64::new(0),
                origin: clock::wall_now(),
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// The process-wide handle. Components default to this, so installing
    /// a sink here (as `repro --telemetry` does) captures the whole stack
    /// with no per-call-site plumbing. Disabled until a sink is installed.
    pub fn global() -> &'static Telemetry {
        GLOBAL.get_or_init(Telemetry::new)
    }

    /// Whether any sink is recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Force the enabled flag (sinks stay installed). Mainly for tests;
    /// [`Telemetry::install`] enables automatically.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Installs a sink and enables the handle. Multiple sinks fan out: all
    /// receive every event.
    pub fn install(&self, sink: Box<dyn Sink + Send>) {
        self.lock().sinks.push(sink);
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // Telemetry must never take the host down: survive a panic in a
        // sink on another thread.
        self.inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Increments counter `name` by 1.
    pub fn incr(&self, name: &str) {
        self.incr_by(name, 1);
    }

    /// Increments counter `name` by `delta`. Allocation-free on the
    /// steady-state path: the registry fast-path reuses the existing
    /// key, and the sink event (the only part that needs an owned name)
    /// is built only when a sink will actually receive it.
    pub fn incr_by(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.lock();
        let total = st.registry.incr_by(name, delta);
        if st.precount(name, false) && !st.sinks.is_empty() {
            let ev = Event::Counter(CounterRecord {
                name: name.to_string(),
                delta,
                total,
            });
            st.fan_out(&ev);
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.lock();
        st.registry.gauge_set(name, value);
        if st.precount(name, false) && !st.sinks.is_empty() {
            let ev = Event::Gauge(GaugeRecord {
                name: name.to_string(),
                value,
            });
            st.fan_out(&ev);
        }
    }

    /// Records `value` into histogram `name` (auto-created with the
    /// duration layout) and forwards the raw observation to sinks.
    pub fn observe(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.lock();
        st.registry.observe(name, value);
        if st.precount(name, false) && !st.sinks.is_empty() {
            let ev = Event::Observe(ObserveRecord {
                name: name.to_string(),
                value,
            });
            st.fan_out(&ev);
        }
    }

    /// Emits a per-tag moment: `name` happened to EPC `epc` (raw bits) at
    /// simulated time `t`. Tag events flow to sinks only — they bypass
    /// the registry, whose memory bound is O(metric names), not O(tags).
    pub fn tag_event(&self, name: &str, epc: u128, t: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.lock();
        if st.precount(name, false) && !st.sinks.is_empty() {
            let ev = Event::Tag(TagRecord {
                name: name.to_string(),
                epc,
                t,
            });
            st.fan_out(&ev);
        }
    }

    /// Pre-registers histogram `name` with a custom bucket layout. Works
    /// even while disabled, so layouts survive a later enable.
    pub fn register_histogram(&self, name: &str, histogram: Histogram) {
        self.lock().registry.register_histogram(name, histogram);
    }

    /// Starts a wall-clock span guard. See [`SpanGuard`].
    pub fn timed(&self, name: &'static str) -> SpanGuard {
        SpanGuard::start(self, name)
    }

    /// Opens a simulated-clock span beginning at `t_start`. See
    /// [`SimSpan`].
    pub fn sim_span(&self, name: &'static str, t_start: f64) -> SimSpan {
        SimSpan::start(self, name, t_start)
    }

    /// A consistent snapshot of the aggregated metrics.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.lock().registry.clone()
    }

    /// Replaces the sampling / volume-control policy. Takes effect for
    /// subsequent emissions; the registry is unaffected (it always sees
    /// everything). Call before the run for deterministic sampling —
    /// reconfiguring mid-run moves the keep/suppress boundary.
    pub fn configure(&self, cfg: TelemetryConfig) {
        self.lock().cfg = cfg;
    }

    /// The sampling / volume-control policy currently in force.
    pub fn config(&self) -> TelemetryConfig {
        self.lock().cfg
    }

    /// Closes the trace: emits a [`FooterRecord`] carrying the delivery
    /// and suppression counts plus the sampling config echo, flushes
    /// every sink, and returns the record. The footer bypasses the
    /// `max_events` ceiling — a truncated trace must still end with the
    /// accounting that says it was truncated. On a disabled handle this
    /// only reports the counts (nothing is emitted).
    pub fn finish(&self) -> FooterRecord {
        let mut st = self.lock();
        let cfg = st.cfg;
        let rec = FooterRecord {
            emitted: st.emitted,
            sampled_out: st.sampled_out,
            dropped: st.dropped,
            sample_every_n_rounds: cfg.sample_every_n_rounds.max(1),
            max_events: cfg.max_events,
        };
        if self.is_enabled() {
            let ev = Event::Footer(rec.clone());
            for sink in &mut st.sinks {
                sink.record(&ev);
                sink.flush();
            }
        }
        rec
    }

    /// Events offered to the delivery choke point so far: emitted +
    /// sampled out + dropped. The offer count depends only on what the
    /// instrumented code emitted — never on the sink configuration — so
    /// it is the sim-deterministic `perf.work.telemetry_events` unit the
    /// bench harness flushes per trial.
    pub fn offered(&self) -> u64 {
        let st = self.lock();
        st.emitted + st.sampled_out + st.dropped
    }

    /// Flushes every sink (call before reading a JSONL file mid-process,
    /// or at exit for the global handle, which is never dropped).
    pub fn flush(&self) {
        for sink in &mut self.lock().sinks {
            sink.flush();
        }
    }

    pub(crate) fn alloc_span_id(&self) -> u64 {
        self.inner.next_span_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn origin(&self) -> WallInstant {
        self.inner.origin
    }

    /// Records a closed span. Takes the span's parts rather than a built
    /// [`SpanRecord`] so the name `String` is only allocated for spans
    /// that actually reach a sink — the closing `round` span is on the
    /// per-round hot path.
    pub(crate) fn emit_span_parts(
        &self,
        name: &'static str,
        id: u64,
        parent: Option<u64>,
        start: f64,
        duration: f64,
        clock: ClockKind,
    ) {
        let mut st = self.lock();
        if st.precount(name, name == "round") && !st.sinks.is_empty() {
            let ev = Event::Span(SpanRecord {
                name: name.to_string(),
                id,
                parent,
                start,
                duration,
                clock,
            });
            st.fan_out(&ev);
        }
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::event::ClockKind;
    use crate::sink::MemorySink;

    fn recording() -> (Telemetry, MemorySink) {
        let tel = Telemetry::new();
        let sink = MemorySink::new(1 << 16);
        tel.install(Box::new(sink.clone()));
        (tel, sink)
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::new();
        assert!(!tel.is_enabled());
        tel.incr("c");
        tel.observe("h", 1.0);
        tel.gauge_set("g", 2.0);
        let span = tel.sim_span("s", 0.0);
        assert_eq!(span.id(), None);
        span.end(1.0);
        assert!(tel.snapshot().is_empty());
    }

    #[test]
    fn timed_guard_measures_even_when_disabled() {
        let tel = Telemetry::new();
        let guard = tel.timed("compute");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let dur = guard.finish();
        assert!(dur >= 0.002, "measured {dur}");
    }

    #[test]
    fn counters_flow_to_registry_and_sink() {
        let (tel, sink) = recording();
        tel.incr_by("cycle.census", 40);
        tel.incr_by("cycle.census", 2);
        assert_eq!(tel.snapshot().counter("cycle.census"), Some(42));
        assert_eq!(sink.counter_total("cycle.census"), Some(42));
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn sim_spans_nest_with_parents() {
        let (tel, sink) = recording();
        let cycle = tel.sim_span("cycle", 0.0);
        let cycle_id = cycle.id().unwrap();
        let phase = tel.sim_span("phase1", 0.0);
        phase.end(0.4);
        cycle.end(5.0);
        let phases = sink.spans_named("phase1");
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].parent, Some(cycle_id));
        assert!((phases[0].duration - 0.4).abs() < 1e-12);
        assert_eq!(phases[0].clock, ClockKind::Sim);
        let cycles = sink.spans_named("cycle");
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].parent, None);
        // Phase emitted before its parent closed.
        let names: Vec<String> = sink.events().iter().map(|e| e.name().to_string()).collect();
        assert_eq!(names, vec!["phase1", "cycle"]);
    }

    #[test]
    fn wall_span_parents_under_sim_span() {
        let (tel, sink) = recording();
        let cycle = tel.sim_span("cycle", 0.0);
        let cycle_id = cycle.id().unwrap();
        let dur = tel.timed("cycle.compute").finish();
        cycle.end(1.0);
        let spans = sink.spans_named("cycle.compute");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent, Some(cycle_id));
        assert_eq!(spans[0].clock, ClockKind::Wall);
        assert!((spans[0].duration - dur).abs() < 1e-3);
    }

    #[test]
    fn abandoned_span_keeps_stack_balanced() {
        let (tel, sink) = recording();
        {
            let _cycle = tel.sim_span("cycle", 0.0);
            // Dropped without end(): simulates an error path.
        }
        let orphan = tel.sim_span("next", 1.0);
        orphan.end(2.0);
        let spans = sink.spans_named("next");
        assert_eq!(spans[0].parent, None, "stale parent leaked");
        assert!(sink.spans_named("cycle").is_empty());
    }

    #[test]
    fn observe_feeds_histogram_and_sink() {
        let (tel, sink) = recording();
        tel.observe("round.duration", 0.03);
        tel.observe("round.duration", 0.05);
        let snap = tel.snapshot();
        let h = snap.histogram("round.duration").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 0.08).abs() < 1e-12);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn custom_histogram_layout_survives_enable() {
        let tel = Telemetry::new();
        tel.register_histogram("lin", Histogram::linear(0.0, 1.0, 10));
        let sink = MemorySink::new(16);
        tel.install(Box::new(sink.clone()));
        tel.observe("lin", 3.5);
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("lin").unwrap().bucket_counts()[3], 1);
    }

    #[test]
    fn multiple_sinks_fan_out() {
        let tel = Telemetry::new();
        let a = MemorySink::new(16);
        let b = MemorySink::new(16);
        tel.install(Box::new(a.clone()));
        tel.install(Box::new(b.clone()));
        tel.incr("x");
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn global_handle_is_shared_and_initially_disabled() {
        let g1 = Telemetry::global();
        let g2 = Telemetry::global();
        assert!(Arc::ptr_eq(&g1.inner, &g2.inner));
        // No test in this crate installs a sink on the global handle.
        assert!(!g1.is_enabled());
    }

    #[test]
    fn span_ids_are_unique_and_monotone() {
        let (tel, _sink) = recording();
        let a = tel.sim_span("a", 0.0);
        let b = tel.sim_span("b", 0.0);
        let (ia, ib) = (a.id().unwrap(), b.id().unwrap());
        assert!(ib > ia);
        b.end(1.0);
        a.end(1.0);
    }

    /// Emits one synthetic inventory round: its counters/observations
    /// first, then the closing `round` span — the reader's contract.
    fn emit_round(tel: &Telemetry, k: u64) {
        tel.incr_by("round.successes", 2);
        tel.observe("round.q_final", 4.0);
        let span = tel.sim_span("round", k as f64);
        span.end(k as f64 + 0.5);
    }

    #[test]
    fn round_sampling_keeps_every_nth_round_atomically() {
        let (tel, sink) = recording();
        tel.configure(TelemetryConfig {
            sample_every_n_rounds: 2,
            max_events: 0,
        });
        for k in 0..4 {
            emit_round(&tel, k);
        }
        // Rounds 0 and 2 survive — spans and their metric events together.
        let spans = sink.spans_named("round");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, 0.0);
        assert_eq!(spans[1].start, 2.0);
        let kept_counters = sink
            .events()
            .iter()
            .filter(|e| e.name() == "round.successes")
            .count();
        assert_eq!(kept_counters, 2, "kept rounds keep their counters");
        // The registry is exempt from sampling: all four rounds counted.
        assert_eq!(tel.snapshot().counter("round.successes"), Some(8));
        let footer = tel.finish();
        assert_eq!(footer.sampled_out, 6); // 2 rounds × 3 events
        assert_eq!(footer.sample_every_n_rounds, 2);
        assert!(!footer.is_complete());
    }

    #[test]
    fn non_round_events_are_never_sampled() {
        let (tel, sink) = recording();
        tel.configure(TelemetryConfig {
            sample_every_n_rounds: 1000,
            max_events: 0,
        });
        tel.incr("cycle.census");
        tel.gauge_set("tracked_tags", 3.0);
        tel.tag_event("read.phase2", 7, 0.5);
        assert_eq!(sink.len(), 3);
        assert_eq!(tel.finish().sampled_out, 0);
    }

    #[test]
    fn max_events_ceiling_drops_and_counts() {
        let (tel, sink) = recording();
        tel.configure(TelemetryConfig {
            sample_every_n_rounds: 1,
            max_events: 3,
        });
        for _ in 0..5 {
            tel.incr("c");
        }
        assert_eq!(sink.len(), 3);
        let footer = tel.finish();
        assert_eq!(footer.emitted, 3);
        assert_eq!(footer.dropped, 2);
        assert!(!footer.is_complete());
        // The footer itself bypasses the ceiling and closes the stream.
        let events = sink.events();
        assert!(matches!(events.last(), Some(Event::Footer(f)) if f.dropped == 2));
        // Registry is exact regardless.
        assert_eq!(tel.snapshot().counter("c"), Some(5));
    }

    #[test]
    fn finish_on_untouched_config_reports_complete() {
        let (tel, sink) = recording();
        tel.incr("a");
        tel.incr("b");
        let footer = tel.finish();
        assert_eq!(footer.emitted, 2);
        assert!(footer.is_complete());
        assert_eq!(footer.sample_every_n_rounds, 1);
        assert_eq!(sink.len(), 3); // two counters + the footer
    }

    #[test]
    fn sampling_is_deterministic_across_identical_runs() {
        let run = || {
            let (tel, sink) = recording();
            tel.configure(TelemetryConfig {
                sample_every_n_rounds: 3,
                max_events: 0,
            });
            for k in 0..10 {
                emit_round(&tel, k);
            }
            tel.finish();
            sink.events()
        };
        assert_eq!(run(), run());
    }
}
