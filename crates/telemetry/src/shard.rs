//! Sharded binary trace streams and their deterministic merge.
//!
//! The fleet arc needs N concurrent writers (future: one per reader /
//! worker thread) whose outputs reconcile into *one* canonical trace.
//! [`ShardedSink`] is the write half: it splits a single emission stream
//! across k per-shard `.twb` files, each self-describing via its
//! [`ShardHeader`]. [`merge_paths`] is the read half: a k-way merge that
//! provably reconstructs the original emission order — and therefore, by
//! re-encoding through the canonical [`encode_stream`], a byte-identical
//! merged file — regardless of how many shards the stream was split into.
//!
//! ## Why the merge is deterministic
//!
//! Every event is stamped with the stream's sim-now clock
//! ([`StampClock`]): the running maximum of simulated instants, taken
//! *after* incorporating the event. Three facts make the (stamp,
//! shard_id, shard_seq) sort key reconstruct emission order exactly:
//!
//! 1. **Stamps are non-decreasing in emission order** (a running max
//!    cannot go down), so equal-stamp events always form one contiguous
//!    run — a *group*. Two events with the same stamp are never separated
//!    by one with a different stamp.
//! 2. **The router never splits a group.** [`ShardedSink`] advances to
//!    the next shard only when the stamp strictly increases, so all
//!    events of a group land in the same shard, where their relative
//!    order is preserved by the per-shard sequence number.
//! 3. **Groups are ordered by their stamps**, and distinct groups have
//!    distinct stamps, so sorting groups by stamp recovers group order.
//!
//! Hence sorting all shard records by (stamp, shard_id, shard_seq) yields
//! the emission sequence: the stamp orders the groups, and within a group
//! the single (shard_id, shard_seq) run preserves intra-group order. The
//! shard_id component of the key never actually breaks a tie between
//! *different* groups — it exists so the comparator is a total order
//! without appealing to the invariant it is checking. The `prop_twb`
//! property tests drive arbitrary streams through every shard count from
//! 1 to 5 and assert the merged bytes are identical.
//!
//! Float caveat: stamps are compared as raw IEEE-754 bit patterns. The
//! clock starts at 0.0 and only ever moves to a *greater finite* value,
//! so every stamp is a non-negative finite double — a domain on which
//! unsigned bit comparison and numeric comparison agree.

use crate::binary::{
    decode_all, encode_stream, BinarySink, DecodeError, DecodedEvent, ShardHeader, StampClock,
};
use crate::event::Event;
use crate::sink::Sink;
use std::fmt;
use std::path::{Path, PathBuf};

/// Splits one emission stream across `k` self-describing `.twb` shard
/// files. Routing is a pure function of the event stream: the current
/// equal-stamp group goes to the current shard, and the router advances
/// round-robin when the stamp strictly increases. Flush-on-Drop and
/// write-error counting are inherited from the per-shard [`BinarySink`]s.
#[derive(Debug)]
pub struct ShardedSink {
    shards: Vec<BinarySink>,
    clock: StampClock,
    current: usize,
    last_stamp: u64,
    routed_any: bool,
}

impl ShardedSink {
    /// Creates `count` shard files derived from `base` (see
    /// [`shard_paths`]). `count` must be at least 1.
    pub fn create<P: AsRef<Path>>(base: P, count: usize) -> std::io::Result<Self> {
        let count = count.max(1);
        let mut shards = Vec::with_capacity(count);
        for (id, path) in shard_paths(base.as_ref(), count).into_iter().enumerate() {
            shards.push(BinarySink::create_shard(
                path,
                ShardHeader {
                    shard_id: id as u64,
                    shard_count: count as u64,
                },
            )?);
        }
        Ok(ShardedSink {
            shards,
            clock: StampClock::new(),
            current: 0,
            last_stamp: 0,
            routed_any: false,
        })
    }

    /// The shard files being written, in shard-id order.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.shards.iter().map(|s| s.path().to_path_buf()).collect()
    }

    /// Event records routed so far, across all shards.
    pub fn records(&self) -> u64 {
        self.shards.iter().map(BinarySink::records).sum()
    }

    /// Write errors accumulated across all shards.
    pub fn write_errors(&self) -> u64 {
        self.shards.iter().map(BinarySink::write_errors).sum()
    }
}

impl Sink for ShardedSink {
    fn record(&mut self, event: &Event) {
        let stamp = self.clock.advance(event);
        if self.routed_any && stamp != self.last_stamp {
            // Strict stamp increase: a new group starts, move on. (The
            // running-max clock never revisits a bit pattern, so
            // inequality here *is* strict numeric increase.)
            self.current = (self.current + 1) % self.shards.len();
        }
        self.last_stamp = stamp;
        self.routed_any = true;
        self.shards[self.current].record_stamped(stamp, event);
    }

    fn flush(&mut self) {
        for s in &mut self.shards {
            s.flush();
        }
    }
}

/// The shard file names for `base` split `count` ways: `count == 1` is
/// the plain single file `base`; otherwise `base.shard0`, `base.shard1`,
/// … (self-description lives in the header, the suffix is for humans).
pub fn shard_paths(base: &Path, count: usize) -> Vec<PathBuf> {
    if count <= 1 {
        return vec![base.to_path_buf()];
    }
    (0..count)
        .map(|k| {
            let mut name = base.as_os_str().to_os_string();
            name.push(format!(".shard{k}"));
            PathBuf::from(name)
        })
        .collect()
}

/// Why a set of shard files would not merge.
#[derive(Debug)]
pub enum MergeError {
    /// A shard file failed to open or read.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// A shard file failed to decode.
    Decode { path: PathBuf, source: DecodeError },
    /// The files disagree about how many shards the stream has.
    MismatchedShardCount {
        expected: u64,
        found: u64,
        path: PathBuf,
    },
    /// Two files claim the same shard id.
    DuplicateShardId { shard_id: u64, path: PathBuf },
    /// The set is incomplete: `shard_count` files are required.
    MissingShards { expected: u64, found: usize },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Io { path, source } => {
                write!(f, "cannot read shard {}: {source}", path.display())
            }
            MergeError::Decode { path, source } => {
                write!(f, "shard {}: {source}", path.display())
            }
            MergeError::MismatchedShardCount {
                expected,
                found,
                path,
            } => write!(
                f,
                "shard {} claims a set of {found}, other shards claim {expected}",
                path.display()
            ),
            MergeError::DuplicateShardId { shard_id, path } => {
                write!(
                    f,
                    "shard id {shard_id} appears twice (second: {})",
                    path.display()
                )
            }
            MergeError::MissingShards { expected, found } => {
                write!(f, "shard set incomplete: {found} of {expected} files given")
            }
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::Io { source, .. } => Some(source),
            MergeError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One decoded shard, ready to merge.
#[derive(Debug)]
pub struct ShardFile {
    pub path: PathBuf,
    pub header: ShardHeader,
    pub records: Vec<DecodedEvent>,
}

/// Reads and decodes one shard file.
pub fn read_shard<P: AsRef<Path>>(path: P) -> Result<ShardFile, MergeError> {
    let path = path.as_ref().to_path_buf();
    let bytes = std::fs::read(&path).map_err(|source| MergeError::Io {
        path: path.clone(),
        source,
    })?;
    let (header, records) = decode_all(&bytes).map_err(|source| MergeError::Decode {
        path: path.clone(),
        source,
    })?;
    Ok(ShardFile {
        path,
        header,
        records,
    })
}

/// Merges a complete shard set back into the original emission sequence.
/// Validates that the files agree on `shard_count`, cover every shard id
/// exactly once, and decode cleanly; then k-way merges on the
/// (sim_now stamp, shard_id, shard_seq) key. Returns events renumbered
/// 1..=N in emission order.
pub fn merge_shards(shards: Vec<ShardFile>) -> Result<Vec<(usize, Event)>, MergeError> {
    let expected = match shards.first() {
        None => return Ok(Vec::new()),
        Some(s) => s.header.shard_count,
    };
    let mut seen = std::collections::BTreeSet::new();
    for s in &shards {
        if s.header.shard_count != expected {
            return Err(MergeError::MismatchedShardCount {
                expected,
                found: s.header.shard_count,
                path: s.path.clone(),
            });
        }
        if !seen.insert(s.header.shard_id) {
            return Err(MergeError::DuplicateShardId {
                shard_id: s.header.shard_id,
                path: s.path.clone(),
            });
        }
    }
    if shards.len() as u64 != expected {
        return Err(MergeError::MissingShards {
            expected,
            found: shards.len(),
        });
    }

    // (stamp bits, shard_id, shard_seq) — stamps are non-negative finite
    // doubles, so unsigned bit order is numeric order (module docs).
    let mut keyed: Vec<(u64, u64, usize, Event)> = shards
        .into_iter()
        .flat_map(|s| {
            let shard_id = s.header.shard_id;
            s.records
                .into_iter()
                .map(move |r| (r.sim_now_bits, shard_id, r.record, r.event))
        })
        .collect();
    keyed.sort_by_key(|&(stamp, shard_id, seq, _)| (stamp, shard_id, seq));
    Ok(keyed
        .into_iter()
        .enumerate()
        .map(|(k, (_, _, _, ev))| (k + 1, ev))
        .collect())
}

/// [`read_shard`] + [`merge_shards`] over a list of paths.
pub fn merge_paths<P: AsRef<Path>>(paths: &[P]) -> Result<Vec<(usize, Event)>, MergeError> {
    let mut shards = Vec::with_capacity(paths.len());
    for p in paths {
        shards.push(read_shard(p)?);
    }
    merge_shards(shards)
}

/// Merges a shard set and re-encodes it as the canonical single-shard
/// `.twb` byte buffer. Because [`encode_stream`] is a pure function of
/// the event sequence and the merge recovers emission order for *any*
/// shard count, every split of the same stream canonicalizes to
/// bit-identical bytes — the property `ci.sh --trace` gates on.
pub fn merge_to_twb<P: AsRef<Path>>(paths: &[P]) -> Result<Vec<u8>, MergeError> {
    let merged = merge_paths(paths)?;
    Ok(encode_stream(merged.iter().map(|(_, ev)| ev)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ClockKind, CounterRecord, SpanRecord, TagRecord};

    /// A stream whose stamps actually move: spans close at increasing
    /// times, tags ride along, counters cluster inside groups.
    fn sample_stream() -> Vec<Event> {
        let mut events = Vec::new();
        for round in 0..20u64 {
            let start = round as f64 * 0.05;
            events.push(Event::Counter(CounterRecord {
                name: "round.offered".into(),
                delta: 3,
                total: 3 * (round + 1),
            }));
            events.push(Event::Span(SpanRecord {
                name: "round".into(),
                id: round + 1,
                parent: None,
                start,
                duration: 0.05,
                clock: ClockKind::Sim,
            }));
            events.push(Event::Tag(TagRecord {
                name: "read.phase1".into(),
                epc: u128::from(round % 5) << 64,
                t: start + 0.05,
            }));
        }
        events
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tagwatch-shard-{}-{name}", std::process::id()))
    }

    fn write_sharded(base: &Path, count: usize, events: &[Event]) -> Vec<PathBuf> {
        let mut sink = ShardedSink::create(base, count).unwrap();
        for ev in events {
            sink.record(ev);
        }
        let paths = sink.paths();
        drop(sink);
        paths
    }

    #[test]
    fn shard_merge_recovers_emission_order_for_any_count() {
        let events = sample_stream();
        for count in 1..=5 {
            let base = tmp(&format!("order-{count}.twb"));
            let paths = write_sharded(&base, count, &events);
            let merged = merge_paths(&paths).unwrap();
            assert_eq!(merged.len(), events.len(), "count={count}");
            for (k, ((n, got), want)) in merged.iter().zip(&events).enumerate() {
                assert_eq!(*n, k + 1);
                assert_eq!(got, want, "count={count}, k={k}");
            }
            for p in paths {
                let _ = std::fs::remove_file(p);
            }
        }
    }

    #[test]
    fn shard_merge_canonical_bytes_are_shard_count_invariant() {
        let events = sample_stream();
        let reference = encode_stream(&events);
        for count in 1..=5 {
            let base = tmp(&format!("bytes-{count}.twb"));
            let paths = write_sharded(&base, count, &events);
            let merged = merge_to_twb(&paths).unwrap();
            assert_eq!(merged, reference, "count={count}");
            for p in paths {
                let _ = std::fs::remove_file(p);
            }
        }
    }

    #[test]
    fn shard_set_validation_catches_missing_and_mismatched() {
        let events = sample_stream();
        let base = tmp("validate.twb");
        let paths = write_sharded(&base, 3, &events);
        match merge_paths(&paths[..2]) {
            Err(MergeError::MissingShards { expected, found }) => {
                assert_eq!((expected, found), (3, 2));
            }
            other => panic!("expected MissingShards, got {other:?}"),
        }
        match merge_paths(&[&paths[0], &paths[0], &paths[1]]) {
            Err(MergeError::DuplicateShardId { shard_id, .. }) => assert_eq!(shard_id, 0),
            other => panic!("expected DuplicateShardId, got {other:?}"),
        }
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn shard_paths_single_is_the_base_file() {
        let base = PathBuf::from("out/trace.twb");
        assert_eq!(shard_paths(&base, 1), vec![base.clone()]);
        let four = shard_paths(&base, 4);
        assert_eq!(four.len(), 4);
        assert_eq!(four[0], PathBuf::from("out/trace.twb.shard0"));
        assert_eq!(four[3], PathBuf::from("out/trace.twb.shard3"));
    }
}
