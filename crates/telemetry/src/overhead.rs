//! Measured telemetry self-cost: what one emitted event costs the host.
//!
//! `obs hotspots` estimates how much of a run's wall time went into
//! telemetry itself as `events_total × per-event cost`. That per-event
//! cost must be a *measured* figure, not a constant someone guessed, so
//! this module times the real emission path — registry update plus sink
//! fan-out through the handle's sampling choke point — on the machine the
//! estimate is for. The criterion bench (`crates/bench/benches/
//! telemetry.rs`) measures the same paths with proper statistics; this
//! in-process calibration exists so `obs hotspots` works standalone, with
//! no bench harness in the loop.
//!
//! The workload mixes the three emission kinds the round hot path
//! actually produces (counter increments, histogram observations, and
//! simulated-clock spans) in the reader's 4:2:1 ratio, into a bounded
//! [`RingSink`] so the measurement itself stays at fixed memory.

use crate::clock;
use crate::handle::Telemetry;
use crate::sink::RingSink;

/// A measured per-event emission cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadEstimate {
    /// Mean host seconds per emitted event.
    pub per_event_seconds: f64,
    /// Events emitted during calibration.
    pub events_measured: u64,
    /// Total host seconds the calibration loop took.
    pub total_seconds: f64,
}

impl OverheadEstimate {
    /// Estimated host seconds a run spent emitting `events` events.
    pub fn cost_of(&self, events: u64) -> f64 {
        self.per_event_seconds * events as f64
    }

    /// An injected (not measured) estimate of `per_event_ns` nanoseconds
    /// per event. `events_measured = 0` marks it as fixed, and the
    /// output of anything fed a fixed estimate is byte-reproducible —
    /// this is what `obs hotspots --overhead-ns` and `obs compare` use
    /// so CI never depends on a wall-clock calibration loop.
    pub fn fixed(per_event_ns: f64) -> Self {
        OverheadEstimate {
            per_event_seconds: per_event_ns * 1e-9,
            events_measured: 0,
            total_seconds: 0.0,
        }
    }
}

/// Calibrates with the default sample size (~70k events, well under a
/// second on anything modern).
pub fn calibrate() -> OverheadEstimate {
    calibrate_iterations(10_000)
}

/// Times `iterations` passes of the mixed emission workload (7 events per
/// pass) against a fresh handle with a bounded ring sink.
pub fn calibrate_iterations(iterations: u64) -> OverheadEstimate {
    let tel = Telemetry::new();
    tel.install(Box::new(RingSink::new(4096)));
    let iterations = iterations.max(1);
    let start = clock::wall_now();
    for k in 0..iterations {
        // The reader's per-round shape: slot-outcome counters, duration /
        // Q observations, one closing span.
        tel.incr_by("round.successes", 3);
        tel.incr_by("round.empties", 2);
        tel.incr_by("round.collisions", 1);
        tel.incr_by("round.reads", 3);
        tel.observe("round.duration", 0.031);
        tel.observe("round.q_final", 4.0);
        let span = tel.sim_span("round", k as f64 * 0.031);
        span.end(k as f64 * 0.031 + 0.031);
    }
    let total_seconds = start.elapsed_seconds();
    let events_measured = iterations * 7;
    OverheadEstimate {
        // Never divide into a zero clock reading (coarse timers).
        per_event_seconds: total_seconds.max(1e-12) / events_measured as f64,
        events_measured,
        total_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_measures_a_positive_cost() {
        let est = calibrate_iterations(500);
        assert_eq!(est.events_measured, 3500);
        assert!(est.per_event_seconds > 0.0);
        assert!(est.per_event_seconds < 1e-3, "implausibly slow: {est:?}");
        let run_cost = est.cost_of(1_000_000);
        assert!((run_cost - est.per_event_seconds * 1e6).abs() < 1e-12);
    }
}
