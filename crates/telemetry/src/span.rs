//! Span guards: RAII timers that record name, start, duration, and parent.
//!
//! Two clocks coexist in Tagwatch. Air time is *simulated* (the reader's
//! clock), so cycle/phase spans take explicit timestamps ([`SimSpan`]).
//! Compute cost is *host* time, so the schedule-cost span uses a
//! wall-clock guard ([`SpanGuard`]). Parenting is tracked per thread: the
//! innermost open span when a new one starts becomes its parent, which
//! yields the cycle → phase hierarchy with no plumbing.

use crate::clock::{self, WallInstant};
use crate::event::ClockKind;
use crate::handle::Telemetry;
use std::cell::RefCell;

thread_local! {
    /// Open-span stack for parent inference. Thread-local, so experiment
    /// worker threads sharing one handle keep independent hierarchies.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn current_parent() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

pub(crate) fn push(id: u64) {
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
}

/// Removes `id` from the stack (innermost occurrence). Tolerates spans
/// closed out of order instead of corrupting the stack.
pub(crate) fn remove(id: u64) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            stack.remove(pos);
        }
    });
}

/// A wall-clock span: starts timing at creation, emits on drop (or
/// [`SpanGuard::finish`], which also returns the elapsed seconds — the
/// controller reports its schedule-cost from this, replacing ad-hoc
/// `Instant` bookkeeping).
///
/// The timer always runs, even with telemetry disabled, so callers can
/// rely on `finish()`; the span *event* is only emitted when the handle
/// had a sink installed at creation time.
#[must_use = "a span guard measures until dropped or finished"]
#[derive(Debug)]
pub struct SpanGuard {
    tel: Telemetry,
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: WallInstant,
    active: bool,
    done: bool,
}

impl SpanGuard {
    pub(crate) fn start(tel: &Telemetry, name: &'static str) -> Self {
        let active = tel.is_enabled();
        let (id, parent) = if active {
            let id = tel.alloc_span_id();
            let parent = current_parent();
            push(id);
            (id, parent)
        } else {
            (0, None)
        };
        SpanGuard {
            tel: tel.clone(),
            name,
            id,
            parent,
            start: clock::wall_now(),
            active,
            done: false,
        }
    }

    /// This span's id, when telemetry is recording.
    pub fn id(&self) -> Option<u64> {
        self.active.then_some(self.id)
    }

    /// Closes the span now and returns the elapsed wall time in seconds.
    pub fn finish(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        let duration = self.start.elapsed_seconds();
        if self.done {
            return duration;
        }
        self.done = true;
        if self.active {
            remove(self.id);
            let start = self
                .start
                .saturating_duration_since(self.tel.origin())
                .as_secs_f64();
            self.tel.emit_span_parts(
                self.name,
                self.id,
                self.parent,
                start,
                duration,
                ClockKind::Wall,
            );
        }
        duration
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

/// A simulated-clock span: the caller supplies start and end timestamps
/// from the reader's clock, keeping exports deterministic under a fixed
/// seed.
#[must_use = "end() the span with its simulated end time"]
#[derive(Debug)]
pub struct SimSpan {
    tel: Telemetry,
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: f64,
    active: bool,
    done: bool,
}

impl SimSpan {
    pub(crate) fn start(tel: &Telemetry, name: &'static str, t_start: f64) -> Self {
        let active = tel.is_enabled();
        let (id, parent) = if active {
            let id = tel.alloc_span_id();
            let parent = current_parent();
            push(id);
            (id, parent)
        } else {
            (0, None)
        };
        SimSpan {
            tel: tel.clone(),
            name,
            id,
            parent,
            start: t_start,
            active,
            done: false,
        }
    }

    /// This span's id, when telemetry is recording.
    pub fn id(&self) -> Option<u64> {
        self.active.then_some(self.id)
    }

    /// Closes the span at simulated time `t_end` and emits it.
    pub fn end(mut self, t_end: f64) {
        if self.done {
            return;
        }
        self.done = true;
        if self.active {
            remove(self.id);
            self.tel.emit_span_parts(
                self.name,
                self.id,
                self.parent,
                self.start,
                (t_end - self.start).max(0.0),
                ClockKind::Sim,
            );
        }
    }
}

impl Drop for SimSpan {
    fn drop(&mut self) {
        // Abandoned span (an error unwound the cycle): keep the parent
        // stack balanced, record nothing.
        if !self.done && self.active {
            remove(self.id);
        }
    }
}
