//! Pluggable event sinks.
//!
//! A [`Sink`] receives every [`Event`] the handle emits, in order. This
//! module holds the in-memory sinks (bounded buffers for tests and
//! flight recording), the buffered JSONL file writer for offline
//! analysis (`repro ... --telemetry out.jsonl`), and the determinism
//! filter; the binary `.twb` writer and its sharded variant live in
//! [`crate::binary`] and [`crate::shard`].

use crate::binary::SINK_BUF_BYTES;
use crate::event::{ClockKind, Event, FooterRecord, SpanRecord, COMPUTE_SECONDS_OBSERVATION};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Receives telemetry events. Implementations must be `Send`: the handle
/// may be shared across experiment worker threads.
pub trait Sink: Send {
    /// Called once per emitted event, in emission order.
    fn record(&mut self, event: &Event);
    /// Flushes any buffered output. Default: no-op.
    fn flush(&mut self) {}
}

/// Boxed sinks are sinks, so adapters (tees, filters) can wrap an
/// arbitrary dynamically-chosen inner sink.
impl Sink for Box<dyn Sink + Send> {
    fn record(&mut self, event: &Event) {
        (**self).record(event);
    }
    fn flush(&mut self) {
        (**self).flush();
    }
}

/// A sink that discards everything. Useful as the inner sink of an
/// adapter that is wanted only for its side channel (e.g. a live monitor
/// with no trace file configured).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

/// Whether `event` is a pure function of the seed and scenario — i.e.
/// carries no host wall-clock data. This is the predicate behind
/// [`SimOnlySink`], exported so other consumers (the live monitor) can
/// restrict themselves to the deterministic substream and stay
/// byte-reproducible across same-seed runs.
pub fn is_sim_deterministic(event: &Event) -> bool {
    match event {
        Event::Span(s) => s.clock == ClockKind::Sim,
        Event::Observe(o) => o.name != COMPUTE_SECONDS_OBSERVATION,
        _ => true,
    }
}

/// A bounded in-memory ring buffer of events. Cheap to clone — clones
/// share the buffer, so tests install one copy and inspect the other.
///
/// When full, the *oldest* event is evicted (and counted); a
/// zero-capacity sink drops everything.
#[derive(Debug, Clone)]
pub struct MemorySink {
    shared: Arc<Mutex<MemoryBuf>>,
}

#[derive(Debug)]
struct MemoryBuf {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: usize,
}

impl MemorySink {
    /// A sink retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            shared: Arc::new(Mutex::new(MemoryBuf {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
            })),
        }
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let buf = self
            .shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        buf.events.iter().cloned().collect()
    }

    /// Number of events evicted (or rejected) since creation.
    pub fn dropped(&self) -> usize {
        self.shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .dropped
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events
            .len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All buffered span records with the given name, oldest first.
    pub fn spans_named(&self, name: &str) -> Vec<SpanRecord> {
        self.events()
            .into_iter()
            .filter_map(|ev| match ev {
                Event::Span(s) if s.name == name => Some(s),
                _ => None,
            })
            .collect()
    }

    /// The running total carried by the *last* counter event with the
    /// given name, if any was buffered.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        self.events().into_iter().rev().find_map(|ev| match ev {
            Event::Counter(c) if c.name == name => Some(c.total),
            _ => None,
        })
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        let mut buf = self
            .shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.capacity == 0 {
            buf.dropped += 1;
            return;
        }
        if buf.events.len() == buf.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(event.clone());
    }
}

/// The always-on flight recorder: a fixed-capacity ring holding the most
/// recent events, with drop accounting, dumped as JSONL on demand.
///
/// Where [`MemorySink`] exists for tests (inspection helpers, unbounded
/// inspection of small streams), `RingSink` is the production shape for
/// long runs that cannot afford an unbounded JSONL file: tracing stays
/// enabled at a hard memory bound, and when something interesting happens
/// the tail of the trace is written out. A dump of a ring that evicted
/// events ends with a synthesized [`FooterRecord`] whose `dropped` field
/// carries the eviction count, so `tagwatch-obs` analyzes the truncated
/// stream under its relaxed (footer-aware) consistency rules instead of
/// mistaking it for a complete trace.
///
/// Clones share the ring, like [`MemorySink`]: install one copy on the
/// handle, keep the other for dumping.
#[derive(Debug, Clone)]
pub struct RingSink {
    shared: Arc<Mutex<RingBuf>>,
}

#[derive(Debug)]
struct RingBuf {
    events: VecDeque<Event>,
    capacity: usize,
    /// Events evicted (oldest-first) or rejected (zero capacity).
    dropped: u64,
    /// Every event ever offered to the ring.
    seen: u64,
}

impl RingSink {
    /// A ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            shared: Arc::new(Mutex::new(RingBuf {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
                seen: 0,
            })),
        }
    }

    fn buf(&self) -> std::sync::MutexGuard<'_, RingBuf> {
        self.shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf().events.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted or rejected since creation.
    pub fn dropped(&self) -> u64 {
        self.buf().dropped
    }

    /// Every event ever offered to the ring (retained + dropped). The
    /// drop *rate* `dropped / seen` is what a health watchdog alarms on.
    pub fn seen(&self) -> u64 {
        self.buf().seen
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf().events.iter().cloned().collect()
    }

    /// Writes the retained events as JSONL. When the ring evicted
    /// anything, a synthesized footer line closes the dump: `emitted` is
    /// the count of events the ring ever received, `dropped` the count
    /// missing from this dump. A ring that never overflowed writes no
    /// footer — the stream is complete as-is (the handle's own
    /// [`crate::Telemetry::finish`] footer, if present, is retained like
    /// any other event).
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let buf = self.buf();
        for ev in &buf.events {
            let line = serde_json::to_string(ev)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            writeln!(w, "{line}")?;
        }
        if buf.dropped > 0 {
            let footer = Event::Footer(FooterRecord {
                emitted: buf.seen,
                sampled_out: 0,
                dropped: buf.dropped,
                sample_every_n_rounds: 1,
                max_events: buf.capacity as u64,
            });
            let line = serde_json::to_string(&footer)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Dumps the ring to a file (see [`RingSink::write_jsonl`]).
    pub fn dump_to_path<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut file = File::create(path)?;
        self.write_jsonl(&mut file)?;
        file.flush()
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: &Event) {
        let mut buf = self.buf();
        buf.seen += 1;
        if buf.capacity == 0 {
            buf.dropped += 1;
            return;
        }
        if buf.events.len() == buf.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(event.clone());
    }
}

/// A buffered JSONL file sink: one `serde_json`-encoded [`Event`] per
/// line, behind a sized [`BufWriter`] (`SINK_BUF_BYTES`). Earlier
/// revisions used a `LineWriter`, paying one `write(2)` per event — the
/// dominant cost `obs hotspots` attributed to trace capture; batching
/// writes is worth ~an order of magnitude in encode throughput (the
/// `trace-bench` figure tracks the number). Crash durability is
/// unchanged in kind: [`Drop`] flushes, so an unwinding run loses at
/// most the final buffer, and a cut-off tail still re-ingests as
/// [`crate::jsonl::ParseError::TruncatedTail`].
///
/// Write errors are counted, not propagated — telemetry must never take
/// the host system down with it.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    path: PathBuf,
    lines: u64,
    write_errors: u64,
}

impl JsonlSink {
    /// Creates (or truncates) `path` for writing.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlSink {
            out: BufWriter::with_capacity(SINK_BUF_BYTES, file),
            path,
            lines: 0,
            write_errors: 0,
        })
    }

    /// The path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        match serde_json::to_string(event) {
            Ok(line) => {
                if writeln!(self.out, "{line}").is_ok() {
                    self.lines += 1;
                } else {
                    self.write_errors += 1;
                }
            }
            Err(_) => self.write_errors += 1,
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// A filter sink that forwards only *simulation-deterministic* events to
/// its inner sink.
///
/// Two event families carry wall-clock data that varies run-to-run even
/// under a fixed seed: spans measured on [`ClockKind::Wall`] (e.g. the
/// controller's `cycle.compute` span) and the derived
/// `cycle.compute_seconds` observation. Everything else in a trace is a
/// pure function of the seed and the scenario. Dropping the wall-clock
/// family yields a stream that is **byte-identical** across same-seed
/// runs — the property the fault-injection determinism gate asserts with
/// a plain `cmp` of two JSONL files (`repro --telemetry-sim-only`).
///
/// Span ids are allocated at span *start* by the handle, before any sink
/// sees the event, so suppressing wall spans here does not perturb the
/// ids of the sim spans that remain.
#[derive(Debug)]
pub struct SimOnlySink<S> {
    inner: S,
    suppressed: u64,
}

impl<S: Sink> SimOnlySink<S> {
    /// Wraps `inner`, forwarding only sim-deterministic events.
    pub fn new(inner: S) -> Self {
        SimOnlySink {
            inner,
            suppressed: 0,
        }
    }

    /// Events withheld from the inner sink so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Consumes the filter, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn is_wall_derived(event: &Event) -> bool {
        !is_sim_deterministic(event)
    }
}

impl<S: Sink> Sink for SimOnlySink<S> {
    fn record(&mut self, event: &Event) {
        if Self::is_wall_derived(event) {
            self.suppressed += 1;
            return;
        }
        self.inner.record(event);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

impl Drop for JsonlSink {
    /// Flushes on drop so a run that never calls [`Sink::flush`] — e.g.
    /// one unwinding from a panic — still leaves a parseable trace with
    /// every buffered line on disk.
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterRecord, ObserveRecord};

    fn counter(name: &str, delta: u64, total: u64) -> Event {
        Event::Counter(CounterRecord {
            name: name.into(),
            delta,
            total,
        })
    }

    #[test]
    fn memory_sink_keeps_most_recent() {
        let mut sink = MemorySink::new(3);
        for k in 0..5 {
            sink.record(&counter("c", 1, k + 1));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.counter_total("c"), Some(5));
        let events = sink.events();
        match &events[0] {
            Event::Counter(c) => assert_eq!(c.total, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_capacity_memory_sink_drops_everything() {
        let mut sink = MemorySink::new(0);
        for k in 0..4 {
            sink.record(&counter("c", 1, k + 1));
        }
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 4);
    }

    #[test]
    fn memory_sink_clones_share_the_buffer() {
        let sink = MemorySink::new(10);
        let mut writer = sink.clone();
        writer.record(&counter("c", 2, 2));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn ring_sink_retains_tail_with_drop_accounting() {
        let sink = RingSink::new(3);
        let mut writer = sink.clone();
        for k in 0..5 {
            writer.record(&counter("c", 1, k + 1));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        match &sink.events()[0] {
            Event::Counter(c) => assert_eq!(c.total, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ring_dump_appends_footer_only_after_eviction() {
        let sink = RingSink::new(8);
        let mut writer = sink.clone();
        for k in 0..4 {
            writer.record(&counter("c", 1, k + 1));
        }
        // No eviction yet: the dump is the complete stream, no footer.
        let mut out = Vec::new();
        sink.write_jsonl(&mut out).unwrap();
        let events = crate::jsonl::read_events(out.as_slice()).unwrap();
        assert_eq!(events.len(), 4);
        assert!(!events.iter().any(|(_, e)| matches!(e, Event::Footer(_))));

        for k in 4..12 {
            writer.record(&counter("c", 1, k + 1));
        }
        let mut out = Vec::new();
        sink.write_jsonl(&mut out).unwrap();
        let events = crate::jsonl::read_events(out.as_slice()).unwrap();
        assert_eq!(events.len(), 9); // 8 retained + footer
        match &events.last().unwrap().1 {
            Event::Footer(f) => {
                assert_eq!(f.emitted, 12);
                assert_eq!(f.dropped, 4);
                assert!(!f.is_complete());
            }
            other => panic!("expected footer, got {other:?}"),
        }
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let sink = RingSink::new(0);
        let mut writer = sink.clone();
        writer.record(&counter("c", 1, 1));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn sim_only_sink_drops_wall_derived_events() {
        use crate::event::{SpanRecord, TagRecord};

        let span = |clock: ClockKind| {
            Event::Span(SpanRecord {
                name: "x".into(),
                id: 1,
                parent: None,
                start: 0.0,
                duration: 1.0,
                clock,
            })
        };
        let memory = MemorySink::new(16);
        let mut sink = SimOnlySink::new(memory.clone());
        sink.record(&span(ClockKind::Sim));
        sink.record(&span(ClockKind::Wall));
        sink.record(&Event::Observe(ObserveRecord {
            name: "cycle.compute_seconds".into(),
            value: 0.25,
        }));
        sink.record(&Event::Observe(ObserveRecord {
            name: "cycle.duration".into(),
            value: 0.25,
        }));
        sink.record(&Event::Tag(TagRecord {
            name: "fault.open.outage".into(),
            epc: 0,
            t: 0.5,
        }));
        assert_eq!(sink.suppressed(), 2);
        let kept = memory.events();
        assert_eq!(kept.len(), 3);
        assert!(kept
            .iter()
            .all(|e| !SimOnlySink::<MemorySink>::is_wall_derived(e)));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!(
            "tagwatch-telemetry-test-{}.jsonl",
            std::process::id()
        ));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.record(&counter("a", 1, 1));
            sink.record(&Event::Observe(ObserveRecord {
                name: "d".into(),
                value: 0.5,
            }));
            assert_eq!(sink.lines(), 2);
            sink.flush();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let _: Event = serde_json::from_str(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_dropped_sink_leaves_parseable_trace() {
        // Regression: a run that drops the sink mid-flight (panic unwind,
        // early return) without ever calling flush() must still leave a
        // complete, re-parseable file on disk.
        let path = std::env::temp_dir().join(format!(
            "tagwatch-telemetry-drop-{}.jsonl",
            std::process::id()
        ));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for k in 0..100u64 {
                sink.record(&counter("c", 1, k + 1));
            }
            // No flush(): Drop alone must guarantee durability.
            drop(sink);
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let events = crate::jsonl::read_events(body.as_bytes()).unwrap();
        assert_eq!(events.len(), 100);
        match &events[99].1 {
            Event::Counter(c) => assert_eq!(c.total, 100),
            other => panic!("unexpected {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
