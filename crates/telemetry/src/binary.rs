//! The compact binary trace format (`.twb`) and its codec.
//!
//! JSONL traces are self-describing but pay for it: every event repeats
//! its field names, metric name, and a decimal rendering of every float.
//! On the obs-run workload that is ~100 bytes per event; the fleet arc in
//! ROADMAP.md (10⁵–10⁶ tags) multiplies that by orders of magnitude. The
//! `.twb` format keeps the *exact same event stream* — decoding yields
//! [`Event`]s bit-identical to what the sink was handed, floats included —
//! at a fraction of the size:
//!
//! * **Interned names and EPCs.** The first occurrence of a metric name
//!   (or tag EPC) emits a one-time definition record; every later
//!   reference is a small varint id. Metric name sets are tiny and EPC
//!   populations are bounded by the tag census, so references dominate.
//! * **Varints everywhere integers live.** Counter deltas, totals, span
//!   ids (zigzag-delta against the previously emitted span), parents, and
//!   footer accounting are all LEB128.
//! * **XOR-delta sim clocks.** Simulated timestamps are strongly
//!   correlated with the stream's running sim clock (a round span starts
//!   where the last one ended; a tag moment usually *is* the current sim
//!   instant). Those fields are stored as the XOR of their IEEE-754 bits
//!   against a reference clock value — losslessly, so equal instants cost
//!   one byte and nearby instants a few. Wall-clock data, which has no
//!   such correlation, is stored as raw 8-byte little-endian floats.
//!
//! Every file opens with the 4-byte magic [`TWB_MAGIC`], a format version,
//! and a **shard header** (`shard_id`, `shard_count`): a single-file trace
//! is simply shard 0 of 1, so one decoder serves both plain traces and the
//! per-shard streams written by [`crate::shard::ShardedSink`].
//!
//! Each event record additionally carries the stream's **sim-now stamp**
//! (the running maximum of simulated instants observed so far, XOR-delta
//! coded). For a single file the stamp is redundant — it is a pure
//! function of the preceding events — but a *shard* only holds a subset of
//! the stream, so the stamp is what lets the k-way merge reconstruct
//! global emission order (see `crate::shard`). The codec keeps stamping
//! uniform rather than special-casing the single-shard layout.
//!
//! The magic and version constants are defined here and **only** here;
//! the `twb-constants` lint rule keeps other modules importing them
//! instead of re-spelling the bytes.

use crate::event::{
    ClockKind, CounterRecord, Event, FooterRecord, GaugeRecord, ObserveRecord, SpanRecord,
    TagRecord,
};
use crate::sink::Sink;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// The four bytes every `.twb` trace starts with.
pub const TWB_MAGIC: [u8; 4] = *b"TWB1";

/// Format version written after the magic. Bump on any layout change; the
/// decoder rejects versions it does not know.
pub const TWB_VERSION: u64 = 1;

/// `BufWriter` capacity for [`BinarySink`] (and [`crate::JsonlSink`]):
/// large enough that hot-path emission amortizes syscalls, small enough
/// that a crashed run loses at most one buffer of tail.
pub const SINK_BUF_BYTES: usize = 64 * 1024;

// Record opcodes. Definition records (string/EPC interning) carry no
// sim-now stamp and no record number; event records carry both.
const OP_STRDEF: u8 = 0x00;
const OP_EPCDEF: u8 = 0x01;
const OP_SPAN_SIM: u8 = 0x02;
const OP_SPAN_WALL: u8 = 0x03;
const OP_COUNTER: u8 = 0x04;
const OP_GAUGE: u8 = 0x05;
const OP_OBSERVE: u8 = 0x06;
const OP_TAG: u8 = 0x07;
const OP_FOOTER: u8 = 0x08;

/// Decoder guard: a claimed string length above this is corruption, not a
/// metric name (the longest real name is tens of bytes).
const MAX_STR_LEN: u64 = 64 * 1024;
/// Decoder guard against table-bombing: more interned entries than any
/// real trace could define.
const MAX_TABLE_LEN: usize = 1 << 20;

/// The self-description every `.twb` file opens with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// This file's position in the shard set, `0 ≤ shard_id < shard_count`.
    pub shard_id: u64,
    /// Total shards the stream was split into (1 for a plain trace).
    pub shard_count: u64,
}

impl ShardHeader {
    /// The header of an unsharded, single-file trace.
    pub fn single() -> Self {
        ShardHeader {
            shard_id: 0,
            shard_count: 1,
        }
    }
}

/// Why a `.twb` stream failed to decode. Record numbers count *event*
/// records (1-based) — the same numbering JSONL gives its lines — and a
/// failure inside an interning record is attributed to the event record
/// it would have preceded.
#[derive(Debug)]
pub enum DecodeError {
    /// The stream ends mid-record (or mid-header): the writer was cut
    /// off. Everything before `record` is intact.
    Truncated {
        /// 1-based number of the event record that is incomplete.
        record: usize,
    },
    /// The bytes cannot be a well-formed record: corruption, not
    /// truncation.
    Corrupt {
        /// 1-based number of the event record being decoded.
        record: usize,
        /// What the decoder objected to.
        message: String,
    },
}

impl DecodeError {
    /// The 1-based event-record number the error is anchored to.
    pub fn record(&self) -> usize {
        match self {
            DecodeError::Truncated { record } | DecodeError::Corrupt { record, .. } => *record,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { record } => write!(
                f,
                "binary trace truncated at record {record}: the writing process \
                 likely died mid-run; records 1..{record} are intact"
            ),
            DecodeError::Corrupt { record, message } => {
                write!(f, "binary trace corrupt at record {record}: {message}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// One decoded event record: its 1-based record number (equal to the line
/// number the same event would have in the run's JSONL trace), the
/// sim-now stamp it was written under, and the event itself.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedEvent {
    /// 1-based event-record number within this file.
    pub record: usize,
    /// Raw bits of the sim-now stamp (see [`StampClock`]); bits rather
    /// than `f64` so the merge key is `Ord` without float caveats.
    pub sim_now_bits: u64,
    /// The event, bit-identical to what the encoder was handed.
    pub event: Event,
}

/// The simulated instant an event pins the stream to, if any: a sim-clock
/// span contributes its *end* (`start + duration`), a tag event its
/// moment `t`. Counters, gauges, observations, wall spans, and footers
/// carry no simulated time.
pub fn sim_instant(event: &Event) -> Option<f64> {
    match event {
        Event::Span(s) if s.clock == ClockKind::Sim => Some(s.start + s.duration),
        Event::Tag(t) => Some(t.t),
        _ => None,
    }
}

/// The stream's running sim clock: the maximum simulated instant seen so
/// far (0.0 before any). It is non-decreasing by construction and a pure
/// function of the event stream prefix, which is what makes it usable as
/// a *global* ordering key for sharded streams: every writer computes the
/// same stamp sequence, and the merge recovers emission order from it
/// (see `crate::shard`). Non-finite or negative instants never advance
/// the clock, so arbitrary (fuzzed) event streams still stamp
/// monotonically.
#[derive(Debug, Clone, Copy)]
pub struct StampClock {
    now: f64,
}

impl Default for StampClock {
    fn default() -> Self {
        StampClock::new()
    }
}

impl StampClock {
    /// A clock at sim time 0.0.
    pub fn new() -> Self {
        StampClock { now: 0.0 }
    }

    /// Advances past `event` and returns the stamp bits to record it
    /// under (the running max *after* incorporating the event).
    pub fn advance(&mut self, event: &Event) -> u64 {
        if let Some(t) = sim_instant(event) {
            if t > self.now {
                self.now = t;
            }
        }
        self.now.to_bits()
    }

    /// The current stamp bits without advancing.
    pub fn bits(&self) -> u64 {
        self.now.to_bits()
    }
}

// ---------------------------------------------------------------------
// Primitive writers.
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_varint128(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-folds a signed delta so small magnitudes of either sign encode
/// short. Works on `i128` so `u64 - u64` deltas can never overflow.
fn zigzag(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

fn unzigzag(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

fn put_f64_raw(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

// ---------------------------------------------------------------------
// Encoder.
// ---------------------------------------------------------------------

/// Streaming `.twb` record encoder. Owns the interning tables and the
/// XOR-delta reference state; one encoder per output file. Encoding is
/// total — any [`Event`] value encodes, and decoding returns it
/// bit-identically — and infallible, since it only appends to a buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    strings: BTreeMap<String, u64>,
    epcs: BTreeMap<u128, u64>,
    /// Stamp bits of the previously encoded event record.
    prev_stamp: u64,
    /// Id of the previously encoded span record.
    prev_span_id: u64,
}

impl Encoder {
    /// A fresh encoder with empty tables and the clock reference at 0.0.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Appends the file header for `shard` to `out`.
    pub fn header(shard: &ShardHeader, out: &mut Vec<u8>) {
        out.extend_from_slice(&TWB_MAGIC);
        put_varint(out, TWB_VERSION);
        put_varint(out, shard.shard_id);
        put_varint(out, shard.shard_count);
    }

    fn intern_str(&mut self, name: &str, out: &mut Vec<u8>) -> u64 {
        if let Some(&id) = self.strings.get(name) {
            return id;
        }
        let id = self.strings.len() as u64;
        self.strings.insert(name.to_string(), id);
        out.push(OP_STRDEF);
        put_varint(out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        id
    }

    fn intern_epc(&mut self, epc: u128, out: &mut Vec<u8>) -> u64 {
        if let Some(&id) = self.epcs.get(&epc) {
            return id;
        }
        let id = self.epcs.len() as u64;
        self.epcs.insert(epc, id);
        out.push(OP_EPCDEF);
        put_varint128(out, epc);
        id
    }

    /// Appends one event record (preceded by any interning records it
    /// needs) to `out`. `stamp_bits` is the sim-now stamp to record the
    /// event under — produce it with [`StampClock::advance`]; for a
    /// sharded stream it must be the *global* clock, not a per-shard one.
    pub fn encode(&mut self, stamp_bits: u64, event: &Event, out: &mut Vec<u8>) {
        // Interning records first, so the event record's references
        // resolve; they are state, not events, and carry no stamp.
        let name_id = match event {
            Event::Footer(_) => 0, // footers carry no name
            other => self.intern_str(other.name(), out),
        };
        let epc_id = match event {
            Event::Tag(t) => self.intern_epc(t.epc, out),
            _ => 0,
        };

        let old_stamp = self.prev_stamp;
        match event {
            Event::Span(s) => {
                out.push(if s.clock == ClockKind::Sim {
                    OP_SPAN_SIM
                } else {
                    OP_SPAN_WALL
                });
                put_varint(out, stamp_bits ^ old_stamp);
                put_varint(out, name_id);
                put_varint128(
                    out,
                    zigzag(i128::from(s.id) - i128::from(self.prev_span_id)),
                );
                match s.parent {
                    None => put_varint(out, 0),
                    Some(p) => put_varint(out, p.wrapping_add(1)),
                }
                if s.clock == ClockKind::Sim {
                    // A sim span usually starts where the stream's clock
                    // previously stood (round N begins where N-1 ended).
                    put_varint(out, s.start.to_bits() ^ old_stamp);
                } else {
                    put_f64_raw(out, s.start);
                }
                put_f64_raw(out, s.duration);
                self.prev_span_id = s.id;
            }
            Event::Counter(c) => {
                out.push(OP_COUNTER);
                put_varint(out, stamp_bits ^ old_stamp);
                put_varint(out, name_id);
                put_varint(out, c.delta);
                put_varint(out, c.total);
            }
            Event::Gauge(g) => {
                out.push(OP_GAUGE);
                put_varint(out, stamp_bits ^ old_stamp);
                put_varint(out, name_id);
                put_f64_raw(out, g.value);
            }
            Event::Observe(o) => {
                out.push(OP_OBSERVE);
                put_varint(out, stamp_bits ^ old_stamp);
                put_varint(out, name_id);
                put_f64_raw(out, o.value);
            }
            Event::Tag(t) => {
                out.push(OP_TAG);
                put_varint(out, stamp_bits ^ old_stamp);
                put_varint(out, name_id);
                put_varint(out, epc_id);
                // A tag moment is usually the instant the clock just
                // advanced to, so XOR against the *new* stamp.
                put_varint(out, t.t.to_bits() ^ stamp_bits);
            }
            Event::Footer(f) => {
                out.push(OP_FOOTER);
                put_varint(out, stamp_bits ^ old_stamp);
                put_varint(out, f.emitted);
                put_varint(out, f.sampled_out);
                put_varint(out, f.dropped);
                put_varint(out, u64::from(f.sample_every_n_rounds));
                put_varint(out, f.max_events);
            }
        }
        self.prev_stamp = stamp_bits;
    }
}

/// Encodes a complete event stream as one canonical single-shard `.twb`
/// byte buffer (header `shard 0 of 1`, fresh interning tables, stamps
/// recomputed from the stream itself). Because encoding is a pure
/// function of the event sequence, any two identical streams — e.g. a
/// 1-shard merge and a 4-shard merge of the same run — produce
/// bit-identical buffers.
pub fn encode_stream<'a, I>(events: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a Event>,
{
    let mut out = Vec::new();
    Encoder::header(&ShardHeader::single(), &mut out);
    let mut enc = Encoder::new();
    let mut clock = StampClock::new();
    for ev in events {
        let stamp = clock.advance(ev);
        enc.encode(stamp, ev, &mut out);
    }
    out
}

// ---------------------------------------------------------------------
// Decoder.
// ---------------------------------------------------------------------

/// Why one record could not be pulled out of the pending buffer.
enum Step {
    /// Ran out of bytes mid-record: wait for more input (or, at end of
    /// stream, report truncation).
    More,
    /// The bytes are structurally invalid.
    Corrupt(String),
}

/// A bounds-checked read cursor over the pending buffer.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn u8(&mut self) -> Result<u8, Step> {
        let b = *self.buf.get(self.pos).ok_or(Step::More)?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], Step> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| Step::Corrupt("length overflows the address space".to_string()))?;
        if end > self.buf.len() {
            return Err(Step::More);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, Step> {
        let mut v = 0u64;
        for k in 0..10 {
            let b = self.u8()?;
            let payload = u64::from(b & 0x7F);
            // The 10th byte may only carry the single remaining bit.
            if k == 9 && payload > 1 {
                return Err(Step::Corrupt("varint exceeds 64 bits".to_string()));
            }
            v |= payload << (7 * k);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(Step::Corrupt("varint continues past 10 bytes".to_string()))
    }

    fn varint128(&mut self) -> Result<u128, Step> {
        let mut v = 0u128;
        for k in 0..19 {
            let b = self.u8()?;
            let payload = u128::from(b & 0x7F);
            if k == 18 && payload > 3 {
                return Err(Step::Corrupt("varint exceeds 128 bits".to_string()));
            }
            v |= payload << (7 * k);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(Step::Corrupt("varint continues past 19 bytes".to_string()))
    }

    fn f64_raw(&mut self) -> Result<f64, Step> {
        let b = self.bytes(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(b);
        Ok(f64::from_bits(u64::from_le_bytes(le)))
    }
}

/// One fully parsed record, not yet committed to decoder state.
enum Parsed {
    Str(String),
    Epc(u128),
    Event { stamp_bits: u64, event: Event },
}

/// Incremental `.twb` decoder: feed it byte chunks of any size (a live
/// follower hands it whatever the file grew by) and collect completed
/// event records. Bytes forming an incomplete trailing record are
/// buffered until the next feed; [`StreamDecoder::finish`] turns leftover
/// bytes at end of stream into [`DecodeError::Truncated`]. The decoder
/// never panics on malformed input — every read is bounds-checked and
/// every table reference validated — which the fuzz proptests pin down.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    pending: Vec<u8>,
    header: Option<ShardHeader>,
    strings: Vec<String>,
    epcs: Vec<u128>,
    prev_stamp: u64,
    prev_span_id: u64,
    /// Event records decoded so far.
    events: usize,
    /// A corrupt stream stays failed: later feeds re-report the error.
    failed: Option<(usize, String)>,
}

impl StreamDecoder {
    /// A decoder expecting a fresh `.twb` stream (header first).
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// The shard header, once enough bytes have arrived to decode it.
    pub fn header(&self) -> Option<&ShardHeader> {
        self.header.as_ref()
    }

    /// Bytes held back because they end mid-record.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Event records decoded so far.
    pub fn events_decoded(&self) -> usize {
        self.events
    }

    fn corrupt(&mut self, message: String) -> DecodeError {
        let record = self.events + 1;
        self.failed = Some((record, message.clone()));
        DecodeError::Corrupt { record, message }
    }

    fn parse_header(cur: &mut Cur<'_>) -> Result<ShardHeader, Step> {
        let magic = cur.bytes(TWB_MAGIC.len())?;
        if magic != TWB_MAGIC {
            return Err(Step::Corrupt(format!(
                "bad magic {magic:02x?}, expected {TWB_MAGIC:02x?}"
            )));
        }
        let version = cur.varint()?;
        if version != TWB_VERSION {
            return Err(Step::Corrupt(format!(
                "unsupported format version {version} (this build reads {TWB_VERSION})"
            )));
        }
        let shard_id = cur.varint()?;
        let shard_count = cur.varint()?;
        if shard_count == 0 || shard_id >= shard_count {
            return Err(Step::Corrupt(format!(
                "invalid shard header: id {shard_id} of {shard_count}"
            )));
        }
        Ok(ShardHeader {
            shard_id,
            shard_count,
        })
    }

    fn lookup_str(&self, id: u64) -> Result<String, Step> {
        usize::try_from(id)
            .ok()
            .and_then(|k| self.strings.get(k))
            .cloned()
            .ok_or_else(|| {
                Step::Corrupt(format!(
                    "string id {id} out of range (table holds {})",
                    self.strings.len()
                ))
            })
    }

    /// Parses one record starting at the cursor, without mutating state.
    fn parse_record(&self, cur: &mut Cur<'_>) -> Result<Parsed, Step> {
        let op = cur.u8()?;
        match op {
            OP_STRDEF => {
                let len = cur.varint()?;
                if len > MAX_STR_LEN {
                    return Err(Step::Corrupt(format!(
                        "string definition claims {len} bytes (cap {MAX_STR_LEN})"
                    )));
                }
                if self.strings.len() >= MAX_TABLE_LEN {
                    return Err(Step::Corrupt("string table overflow".to_string()));
                }
                let bytes = cur.bytes(len as usize)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| Step::Corrupt(format!("string definition not UTF-8: {e}")))?;
                Ok(Parsed::Str(s.to_string()))
            }
            OP_EPCDEF => {
                if self.epcs.len() >= MAX_TABLE_LEN {
                    return Err(Step::Corrupt("EPC table overflow".to_string()));
                }
                Ok(Parsed::Epc(cur.varint128()?))
            }
            OP_SPAN_SIM | OP_SPAN_WALL => {
                let stamp_bits = cur.varint()? ^ self.prev_stamp;
                let name = self.lookup_str(cur.varint()?)?;
                let delta = unzigzag(cur.varint128()?);
                let id = i128::from(self.prev_span_id)
                    .checked_add(delta)
                    .and_then(|v| u64::try_from(v).ok())
                    .ok_or_else(|| Step::Corrupt(format!("span id delta {delta} out of range")))?;
                let parent = match cur.varint()? {
                    0 => None,
                    p => Some(p.wrapping_sub(1)),
                };
                let (start, clock) = if op == OP_SPAN_SIM {
                    (
                        f64::from_bits(cur.varint()? ^ self.prev_stamp),
                        ClockKind::Sim,
                    )
                } else {
                    (cur.f64_raw()?, ClockKind::Wall)
                };
                let duration = cur.f64_raw()?;
                Ok(Parsed::Event {
                    stamp_bits,
                    event: Event::Span(SpanRecord {
                        name,
                        id,
                        parent,
                        start,
                        duration,
                        clock,
                    }),
                })
            }
            OP_COUNTER => {
                let stamp_bits = cur.varint()? ^ self.prev_stamp;
                let name = self.lookup_str(cur.varint()?)?;
                let delta = cur.varint()?;
                let total = cur.varint()?;
                Ok(Parsed::Event {
                    stamp_bits,
                    event: Event::Counter(CounterRecord { name, delta, total }),
                })
            }
            OP_GAUGE | OP_OBSERVE => {
                let stamp_bits = cur.varint()? ^ self.prev_stamp;
                let name = self.lookup_str(cur.varint()?)?;
                let value = cur.f64_raw()?;
                let event = if op == OP_GAUGE {
                    Event::Gauge(GaugeRecord { name, value })
                } else {
                    Event::Observe(ObserveRecord { name, value })
                };
                Ok(Parsed::Event { stamp_bits, event })
            }
            OP_TAG => {
                let stamp_bits = cur.varint()? ^ self.prev_stamp;
                let name = self.lookup_str(cur.varint()?)?;
                let epc_id = cur.varint()?;
                let epc = usize::try_from(epc_id)
                    .ok()
                    .and_then(|k| self.epcs.get(k))
                    .copied()
                    .ok_or_else(|| {
                        Step::Corrupt(format!(
                            "EPC id {epc_id} out of range (table holds {})",
                            self.epcs.len()
                        ))
                    })?;
                let t = f64::from_bits(cur.varint()? ^ stamp_bits);
                Ok(Parsed::Event {
                    stamp_bits,
                    event: Event::Tag(TagRecord { name, epc, t }),
                })
            }
            OP_FOOTER => {
                let stamp_bits = cur.varint()? ^ self.prev_stamp;
                let emitted = cur.varint()?;
                let sampled_out = cur.varint()?;
                let dropped = cur.varint()?;
                let sample_every_n_rounds = u32::try_from(cur.varint()?).map_err(|_| {
                    Step::Corrupt("footer sample_every_n_rounds exceeds u32".to_string())
                })?;
                let max_events = cur.varint()?;
                Ok(Parsed::Event {
                    stamp_bits,
                    event: Event::Footer(FooterRecord {
                        emitted,
                        sampled_out,
                        dropped,
                        sample_every_n_rounds,
                        max_events,
                    }),
                })
            }
            other => Err(Step::Corrupt(format!(
                "unknown record opcode 0x{other:02x}"
            ))),
        }
    }

    /// Feeds the next chunk of the stream, appending every completed
    /// event record to `out`. Returns `Err` on corruption (permanently —
    /// the stream cannot be trusted past that point); truncation is not
    /// an error here, only in [`StreamDecoder::finish`].
    pub fn feed(&mut self, bytes: &[u8], out: &mut Vec<DecodedEvent>) -> Result<(), DecodeError> {
        if let Some((record, message)) = &self.failed {
            return Err(DecodeError::Corrupt {
                record: *record,
                message: message.clone(),
            });
        }
        self.pending.extend_from_slice(bytes);
        let mut consumed = 0usize;
        loop {
            let mut cur = Cur {
                buf: &self.pending[consumed..],
                pos: 0,
            };
            if self.header.is_none() {
                match Self::parse_header(&mut cur) {
                    Ok(h) => {
                        self.header = Some(h);
                        consumed += cur.pos;
                        continue;
                    }
                    Err(Step::More) => break,
                    Err(Step::Corrupt(m)) => {
                        self.pending.drain(..consumed);
                        return Err(self.corrupt(m));
                    }
                }
            }
            if cur.buf.is_empty() {
                break;
            }
            match self.parse_record(&mut cur) {
                Ok(parsed) => {
                    consumed += cur.pos;
                    match parsed {
                        Parsed::Str(s) => self.strings.push(s),
                        Parsed::Epc(e) => self.epcs.push(e),
                        Parsed::Event { stamp_bits, event } => {
                            if let Event::Span(s) = &event {
                                self.prev_span_id = s.id;
                            }
                            self.prev_stamp = stamp_bits;
                            self.events += 1;
                            out.push(DecodedEvent {
                                record: self.events,
                                sim_now_bits: stamp_bits,
                                event,
                            });
                        }
                    }
                }
                Err(Step::More) => break,
                Err(Step::Corrupt(m)) => {
                    self.pending.drain(..consumed);
                    return Err(self.corrupt(m));
                }
            }
        }
        self.pending.drain(..consumed);
        Ok(())
    }

    /// Declares end of stream: leftover pending bytes (or a header that
    /// never completed) mean the file was cut off mid-record.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if let Some((record, message)) = &self.failed {
            return Err(DecodeError::Corrupt {
                record: *record,
                message: message.clone(),
            });
        }
        if !self.pending.is_empty() || self.header.is_none() {
            return Err(DecodeError::Truncated {
                record: self.events + 1,
            });
        }
        Ok(())
    }
}

/// Decodes a complete in-memory `.twb` buffer: header plus every event
/// record, strictly (truncation and corruption are both errors).
pub fn decode_all(bytes: &[u8]) -> Result<(ShardHeader, Vec<DecodedEvent>), DecodeError> {
    let mut dec = StreamDecoder::new();
    let mut out = Vec::new();
    dec.feed(bytes, &mut out)?;
    dec.finish()?;
    match dec.header() {
        Some(h) => Ok((*h, out)),
        None => Err(DecodeError::Truncated { record: 1 }),
    }
}

// ---------------------------------------------------------------------
// The sink.
// ---------------------------------------------------------------------

/// A buffered `.twb` file sink: the binary sibling of
/// [`crate::JsonlSink`]. Events are encoded through one [`Encoder`] and
/// stamped by an internal [`StampClock`], so a single-file binary trace
/// is byte-for-byte the canonical encoding of its event stream
/// ([`encode_stream`] of the same events produces identical bytes).
///
/// Mirrors the JSONL sink's failure contract: write errors are counted,
/// never propagated, and [`Drop`] flushes so a panicking run still leaves
/// every completed record on disk.
#[derive(Debug)]
pub struct BinarySink {
    out: BufWriter<File>,
    path: PathBuf,
    enc: Encoder,
    clock: StampClock,
    scratch: Vec<u8>,
    records: u64,
    bytes: u64,
    write_errors: u64,
}

impl BinarySink {
    /// Creates (or truncates) `path` as an unsharded trace (shard 0 of 1).
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Self::create_shard(path, ShardHeader::single())
    }

    /// Creates (or truncates) `path` as one shard of a sharded stream.
    /// The caller (normally [`crate::shard::ShardedSink`]) is responsible
    /// for stamping with a *global* clock via [`BinarySink::record_stamped`].
    pub fn create_shard<P: AsRef<Path>>(path: P, shard: ShardHeader) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut out = BufWriter::with_capacity(SINK_BUF_BYTES, file);
        let mut header = Vec::new();
        Encoder::header(&shard, &mut header);
        out.write_all(&header)?;
        Ok(BinarySink {
            out,
            path,
            enc: Encoder::new(),
            clock: StampClock::new(),
            scratch: Vec::with_capacity(256),
            records: 0,
            bytes: header.len() as u64,
            write_errors: 0,
        })
    }

    /// The path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Event records successfully written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes handed to the writer so far, header included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Writes that failed (the stream is unusable past the first one,
    /// but telemetry must never take the host down, so they only count).
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Records `event` under an externally computed stamp — the sharded
    /// writer's entry point, where the stamp comes from the global clock.
    pub fn record_stamped(&mut self, stamp_bits: u64, event: &Event) {
        self.scratch.clear();
        self.enc.encode(stamp_bits, event, &mut self.scratch);
        if self.out.write_all(&self.scratch).is_ok() {
            self.records += 1;
            self.bytes += self.scratch.len() as u64;
        } else {
            self.write_errors += 1;
        }
    }
}

impl Sink for BinarySink {
    fn record(&mut self, event: &Event) {
        let stamp = self.clock.advance(event);
        self.record_stamped(stamp, event);
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for BinarySink {
    /// Flushes on drop so a run unwinding from a panic still leaves every
    /// completed record decodable (the decoder reports at worst a
    /// truncated tail, mirroring the JSONL contract).
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> Vec<Event> {
        vec![
            Event::Counter(CounterRecord {
                name: "cycle.census".into(),
                delta: 40,
                total: 40,
            }),
            Event::Span(SpanRecord {
                name: "round".into(),
                id: 1,
                parent: None,
                start: 0.0,
                duration: 0.031,
                clock: ClockKind::Sim,
            }),
            Event::Span(SpanRecord {
                name: "round".into(),
                id: 2,
                parent: Some(1),
                start: 0.031,
                duration: 0.027,
                clock: ClockKind::Sim,
            }),
            Event::Tag(TagRecord {
                name: "read.phase2".into(),
                epc: (1u128 << 95) | 0xDEAD_BEEF,
                t: 0.058,
            }),
            Event::Tag(TagRecord {
                name: "read.phase2".into(),
                epc: (1u128 << 95) | 0xDEAD_BEEF,
                t: 0.058,
            }),
            Event::Span(SpanRecord {
                name: "cycle.compute".into(),
                id: 3,
                parent: None,
                start: 12.5,
                duration: 0.001,
                clock: ClockKind::Wall,
            }),
            Event::Gauge(GaugeRecord {
                name: "tracked_tags".into(),
                value: 12.0,
            }),
            Event::Observe(ObserveRecord {
                name: "round.duration".into(),
                value: 0.031,
            }),
            Event::Footer(FooterRecord {
                emitted: 8,
                sampled_out: 0,
                dropped: 0,
                sample_every_n_rounds: 1,
                max_events: 0,
            }),
        ]
    }

    #[test]
    fn twb_round_trip_is_bit_identical() {
        let events = sample_stream();
        let bytes = encode_stream(&events);
        let (header, decoded) = decode_all(&bytes).unwrap();
        assert_eq!(header, ShardHeader::single());
        assert_eq!(decoded.len(), events.len());
        for (k, (d, want)) in decoded.iter().zip(&events).enumerate() {
            assert_eq!(d.record, k + 1, "record numbers are 1-based and dense");
            assert_eq!(&d.event, want);
        }
    }

    #[test]
    fn twb_stamps_are_non_decreasing_running_max() {
        let events = sample_stream();
        let bytes = encode_stream(&events);
        let (_, decoded) = decode_all(&bytes).unwrap();
        let mut prev = 0.0f64;
        for d in &decoded {
            let now = f64::from_bits(d.sim_now_bits);
            assert!(now >= prev, "stamp went backwards: {now} < {prev}");
            prev = now;
        }
        // The tag at t=0.058 pins the stream clock.
        let last = f64::from_bits(decoded.last().unwrap().sim_now_bits);
        assert!((last - 0.058).abs() < 1e-12);
    }

    #[test]
    fn twb_encoding_is_deterministic() {
        let events = sample_stream();
        assert_eq!(encode_stream(&events), encode_stream(&events));
    }

    #[test]
    fn twb_interning_pays_off_on_repeats() {
        let mut events = Vec::new();
        for k in 0..100u64 {
            events.push(Event::Counter(CounterRecord {
                name: "round.successes".into(),
                delta: 1,
                total: k + 1,
            }));
        }
        let bytes = encode_stream(&events);
        // Header + one string def + 100 small records; far below 10
        // bytes per event.
        assert!(bytes.len() < 100 * 10, "got {} bytes", bytes.len());
    }

    #[test]
    fn twb_truncation_at_every_offset_is_clean() {
        let events = sample_stream();
        let bytes = encode_stream(&events);
        let (_, full) = decode_all(&bytes).unwrap();
        for cut in 0..bytes.len() {
            match decode_all(&bytes[..cut]) {
                Ok((_, prefix)) => {
                    // A cut exactly on a record boundary yields a clean prefix.
                    assert!(prefix.len() <= full.len());
                    assert_eq!(prefix.as_slice(), &full[..prefix.len()]);
                }
                Err(DecodeError::Truncated { record }) => {
                    assert!(record >= 1 && record <= full.len() + 1);
                }
                Err(other) => panic!("cut {cut}: expected truncation, got {other}"),
            }
        }
    }

    #[test]
    fn twb_bad_magic_is_corrupt_not_truncated() {
        let mut bytes = encode_stream(&sample_stream());
        bytes[0] = b'X';
        match decode_all(&bytes) {
            Err(DecodeError::Corrupt { record, .. }) => assert_eq!(record, 1),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn twb_unknown_version_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TWB_MAGIC);
        put_varint(&mut bytes, TWB_VERSION + 1);
        put_varint(&mut bytes, 0);
        put_varint(&mut bytes, 1);
        match decode_all(&bytes) {
            Err(DecodeError::Corrupt { message, .. }) => {
                assert!(message.contains("version"), "{message}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn twb_string_id_out_of_range_is_corrupt() {
        let mut bytes = Vec::new();
        Encoder::header(&ShardHeader::single(), &mut bytes);
        bytes.push(OP_COUNTER);
        put_varint(&mut bytes, 0); // stamp delta
        put_varint(&mut bytes, 7); // undefined string id
        put_varint(&mut bytes, 1);
        put_varint(&mut bytes, 1);
        match decode_all(&bytes) {
            Err(DecodeError::Corrupt { message, .. }) => {
                assert!(message.contains("string id"), "{message}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn twb_oversized_string_claim_is_corrupt() {
        let mut bytes = Vec::new();
        Encoder::header(&ShardHeader::single(), &mut bytes);
        bytes.push(OP_STRDEF);
        put_varint(&mut bytes, MAX_STR_LEN + 1);
        match decode_all(&bytes) {
            Err(DecodeError::Corrupt { message, .. }) => {
                assert!(message.contains("string definition"), "{message}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn twb_stream_decoder_handles_byte_at_a_time_feeds() {
        let events = sample_stream();
        let bytes = encode_stream(&events);
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        for b in &bytes {
            dec.feed(std::slice::from_ref(b), &mut out).unwrap();
        }
        dec.finish().unwrap();
        assert_eq!(out.len(), events.len());
        for (d, want) in out.iter().zip(&events) {
            assert_eq!(&d.event, want);
        }
    }

    #[test]
    fn twb_sink_matches_canonical_encoding() {
        let path =
            std::env::temp_dir().join(format!("tagwatch-twb-sink-{}.twb", std::process::id()));
        let events = sample_stream();
        {
            let mut sink = BinarySink::create(&path).unwrap();
            for ev in &events {
                sink.record(ev);
            }
            assert_eq!(sink.records(), events.len() as u64);
            assert_eq!(sink.write_errors(), 0);
            // No flush: Drop must leave a complete file.
        }
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, encode_stream(&events));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i128, 1, -1, i128::from(u64::MAX), -i128::from(u64::MAX)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
