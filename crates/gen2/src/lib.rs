//! # tagwatch-gen2 — EPC Gen2 link-layer simulator
//!
//! A discrete-event simulation of the EPC Class-1 Generation-2 air
//! protocol's inventory machinery, faithful enough that the phenomena the
//! paper builds on *emerge* instead of being assumed:
//!
//! * framed slotted ALOHA with the COTS Q-adaptive award–punish frame
//!   sizing (§2.1 of the paper),
//! * `Select`-based population partitioning with full MemBank / Pointer /
//!   Length / Mask semantics and all eight Select actions (§5.1),
//! * per-session inventoried flags and the SL flag on every tag,
//! * calibrated air timings such that fitting the paper's cost model
//!   `C(n) = τ0 + n·e·τ̄·ln n` to simulated inventories recovers
//!   `τ0 ≈ 19 ms`, `τ̄ ≈ 0.18 ms` (§2.3, §6).
//!
//! The crate is pure protocol: no RF, no geometry. The reader crate glues
//! this to the channel model.

#![forbid(unsafe_code)]
pub mod batched;
pub mod commands;
pub mod epc;
pub mod mask;
pub mod qadapt;
pub mod round;
pub mod tag;
pub mod timing;

pub use batched::{run_round_batched, RoundWorkspace};
pub use commands::{InvFlag, MemBank, Query, QuerySel, SelAction, SelTarget, Select, Session};
pub use epc::{Epc, ParseEpcError, EPC_BITS};
pub use mask::BitMask;
pub use qadapt::{FrameSizer, IdealDfsa, QAdaptive, SlotOutcome};
pub use round::{run_round, ReadEvent, RoundConfig, RoundResult, SlotStats};
pub use tag::{TagProto, TagState};
pub use timing::{CostModel, LinkTiming};
