//! Select bitmasks — the `S(m, p, l)` triples of §5 of the paper.
//!
//! A bitmask covers a tag iff the tag's EPC bits `[pointer, pointer+length)`
//! equal the mask bits. The paper writes a bitmask as `S(Mask, Pointer,
//! Length)` with the `MemBank` fixed to the EPC bank; this module implements
//! exactly that matching rule plus the builders the scheduler needs.

use crate::epc::{Epc, EPC_BITS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Gen2 Select bitmask over the EPC memory bank.
///
/// ```
/// use tagwatch_gen2::{BitMask, Epc};
///
/// let epc: Epc = "300833B2DDD9014000000001".parse().unwrap();
/// // A 12-bit prefix mask covering this EPC (and any other sharing it).
/// let mask = BitMask::from_epc_range(epc, 0, 12);
/// assert!(mask.matches(epc));
/// assert_eq!(mask.to_string(), "S(0b001100000000, p=0, l=12)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitMask {
    /// Starting bit address (MSB-first) within the EPC.
    pub pointer: u16,
    /// Number of bits compared. `0` matches every tag (an empty
    /// comparison is vacuously true) — this is how "read all" is encoded.
    pub length: u16,
    /// The mask bits, right-aligned.
    pub bits: u128,
}

impl BitMask {
    /// A mask that matches every tag (zero-length comparison).
    pub const MATCH_ALL: BitMask = BitMask {
        pointer: 0,
        length: 0,
        bits: 0,
    };

    /// Builds a mask, validating the bit range and that `bits` fits in
    /// `length` bits.
    pub fn new(bits: u128, pointer: u16, length: u16) -> Self {
        assert!(
            pointer + length <= EPC_BITS,
            "mask range {pointer}+{length} exceeds EPC width"
        );
        if length < 128 {
            assert!(
                bits >> length == 0,
                "mask bits {bits:#x} wider than declared length {length}"
            );
        }
        BitMask {
            pointer,
            length,
            bits,
        }
    }

    /// The mask equal to the substring `[pointer, pointer+length)` of `epc` —
    /// i.e. a mask guaranteed to cover `epc`.
    pub fn from_epc_range(epc: Epc, pointer: u16, length: u16) -> Self {
        BitMask {
            pointer,
            length,
            bits: epc.extract(pointer, length),
        }
    }

    /// The full-EPC mask — covers exactly one EPC value. This is the
    /// paper's "naive solution" building block (§5.2).
    pub fn exact(epc: Epc) -> Self {
        BitMask {
            pointer: 0,
            length: EPC_BITS,
            bits: epc.bits(),
        }
    }

    /// Whether this mask covers `epc`.
    #[inline]
    pub fn matches(&self, epc: Epc) -> bool {
        epc.extract(self.pointer, self.length) == self.bits
    }

    /// Whether this mask matches every EPC.
    #[inline]
    pub fn is_match_all(&self) -> bool {
        self.length == 0
    }
}

impl fmt::Display for BitMask {
    /// Formats like the paper: `S(1011₂, 4, 4)` → `S(0b1011, p=4, l=4)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_match_all() {
            return write!(f, "S(*)");
        }
        write!(
            f,
            "S(0b{:0width$b}, p={}, l={})",
            self.bits,
            self.pointer,
            self.length,
            width = self.length as usize
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epc(v: u128) -> Epc {
        Epc::from_bits(v)
    }

    #[test]
    fn paper_figure_9_example() {
        // Fig. 9(b): 6-bit tags (we right-pad into the 96-bit space by
        // placing the 6 example bits at the top of the EPC).
        let pad = |six: u128| epc(six << 90);
        let t1 = pad(0b001110);
        let t2 = pad(0b010010);
        let t3 = pad(0b101100);
        let non_target = pad(0b110110);

        // S1(11₂, 3, 2) covers 001110 and ...? In the paper's indexing the
        // mask compares bits [3, 5) (0-based MSB-first): 001110 → "11",
        // 010010 → "01", 101100 → "10", 110110 → "11".
        let s1 = BitMask::new(0b11, 3, 2);
        assert!(s1.matches(t1));
        assert!(!s1.matches(t2));
        assert!(!s1.matches(t3));
        assert!(s1.matches(non_target)); // 110110 bits [3,5) = 11 — collateral

        // S2(01₂, 1, 2): 001110 → "01", 010010 → "10", 101100 → "01",
        // 110110 → "10".
        let s2 = BitMask::new(0b01, 1, 2);
        assert!(s2.matches(t1));
        assert!(!s2.matches(t2));
        assert!(s2.matches(t3));
        assert!(!s2.matches(non_target));
    }

    #[test]
    fn match_all_matches_everything() {
        assert!(BitMask::MATCH_ALL.matches(epc(0)));
        assert!(BitMask::MATCH_ALL.matches(epc((1u128 << 96) - 1)));
        assert!(BitMask::MATCH_ALL.is_match_all());
    }

    #[test]
    fn exact_mask_covers_only_its_epc() {
        let a = epc(0xDEADBEEF);
        let b = epc(0xDEADBEEE);
        let m = BitMask::exact(a);
        assert!(m.matches(a));
        assert!(!m.matches(b));
        assert_eq!(m.length, EPC_BITS);
    }

    #[test]
    fn from_epc_range_always_covers_source() {
        let e = epc(0x1234_5678_9ABC_DEF0_1122_3344);
        for &(p, l) in &[(0u16, 1u16), (10, 20), (90, 6), (0, 96), (50, 0)] {
            let m = BitMask::from_epc_range(e, p, l);
            assert!(m.matches(e), "p={p} l={l}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds EPC width")]
    fn new_rejects_out_of_range() {
        BitMask::new(0, 95, 2);
    }

    #[test]
    #[should_panic(expected = "wider than declared length")]
    fn new_rejects_wide_bits() {
        BitMask::new(0b111, 0, 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BitMask::MATCH_ALL.to_string(), "S(*)");
        assert_eq!(BitMask::new(0b10, 5, 2).to_string(), "S(0b10, p=5, l=2)");
    }
}
