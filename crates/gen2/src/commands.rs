//! Gen2 air-interface commands (the subset that governs inventory).
//!
//! The reader talks first; tags only ever respond. The commands modelled
//! here are the ones the paper's two-phase design manipulates: `Select`
//! (with its bitmask fields), `Query`/`QueryRep`/`QueryAdjust` (the slotted
//! ALOHA machinery) and `ACK`.

use crate::mask::BitMask;
use serde::{Deserialize, Serialize};

/// Tag memory banks. Tagwatch always selects on the EPC bank, but the
/// enum is complete for protocol fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemBank {
    /// Bank 00: kill/access passwords.
    Reserved,
    /// Bank 01: CRC-16, PC word, EPC.
    Epc,
    /// Bank 10: tag identification.
    Tid,
    /// Bank 11: user memory.
    User,
}

/// Gen2 inventory sessions. Each session has an independent inventoried
/// flag on every tag, so several readers can inventory the same population
/// without fighting over flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Session {
    S0,
    S1,
    S2,
    S3,
}

impl Session {
    /// Index 0..4 for flag arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Session::S0 => 0,
            Session::S1 => 1,
            Session::S2 => 2,
            Session::S3 => 3,
        }
    }
}

/// The inventoried flag value of a tag within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvFlag {
    A,
    B,
}

impl InvFlag {
    /// The opposite flag value.
    #[inline]
    pub fn toggled(self) -> InvFlag {
        match self {
            InvFlag::A => InvFlag::B,
            InvFlag::B => InvFlag::A,
        }
    }
}

/// What a `Select` command targets: the SL flag, or the inventoried flag
/// of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelTarget {
    /// Modify the selected (SL) flag.
    Sl,
    /// Modify the inventoried flag of the given session.
    Inventoried(Session),
}

/// Gen2 Select actions (EPC Gen2 spec Table 6.29). Each action prescribes
/// what matching and non-matching tags do to the targeted flag:
/// assert (SL / flag→A), deassert (¬SL / flag→B), toggle, or nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelAction {
    /// 000: matching assert; non-matching deassert.
    AssertElseDeassert,
    /// 001: matching assert; non-matching do nothing.
    AssertElseNothing,
    /// 010: matching do nothing; non-matching deassert.
    NothingElseDeassert,
    /// 011: matching toggle; non-matching do nothing.
    ToggleElseNothing,
    /// 100: matching deassert; non-matching assert.
    DeassertElseAssert,
    /// 101: matching deassert; non-matching do nothing.
    DeassertElseNothing,
    /// 110: matching do nothing; non-matching assert.
    NothingElseAssert,
    /// 111: matching do nothing; non-matching toggle.
    NothingElseToggle,
}

/// The effect of a Select action on one tag's flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagOp {
    Assert,
    Deassert,
    Toggle,
    Nothing,
}

impl SelAction {
    /// The operation applied to a tag that matches / does not match the mask.
    pub fn ops(self) -> (FlagOp, FlagOp) {
        use FlagOp::*;
        match self {
            SelAction::AssertElseDeassert => (Assert, Deassert),
            SelAction::AssertElseNothing => (Assert, Nothing),
            SelAction::NothingElseDeassert => (Nothing, Deassert),
            SelAction::ToggleElseNothing => (Toggle, Nothing),
            SelAction::DeassertElseAssert => (Deassert, Assert),
            SelAction::DeassertElseNothing => (Deassert, Nothing),
            SelAction::NothingElseAssert => (Nothing, Assert),
            SelAction::NothingElseToggle => (Nothing, Toggle),
        }
    }
}

/// The `Select` command: partitions the population ahead of an inventory
/// round (§5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Select {
    /// Which flag the action manipulates.
    pub target: SelTarget,
    /// What matching / non-matching tags do to that flag.
    pub action: SelAction,
    /// Memory bank the mask compares against (Tagwatch uses `Epc`).
    pub bank: MemBank,
    /// The bitmask (Pointer, Length, Mask fields).
    pub mask: BitMask,
    /// The Gen2 Truncate flag: matching tags backscatter only the EPC
    /// portion *following* the mask instead of the full PC/EPC/CRC —
    /// shorter successful slots for selectively read tags. Only
    /// meaningful on EPC-bank prefix masks (`pointer == 0`), where the
    /// reader can reconstruct the full EPC from mask ∥ reply.
    pub truncate: bool,
}

impl Select {
    /// The canonical Tagwatch select: assert SL on tags matching `mask`,
    /// deassert on everything else. A subsequent `Query` with `sel = SL`
    /// then reads exactly the covered tags.
    pub fn assert_sl(mask: BitMask) -> Self {
        Select {
            target: SelTarget::Sl,
            action: SelAction::AssertElseDeassert,
            bank: MemBank::Epc,
            mask,
            truncate: false,
        }
    }

    /// Assert SL on matching tags and leave the rest untouched — used to
    /// OR several bitmasks together into one selected set.
    pub fn or_sl(mask: BitMask) -> Self {
        Select {
            target: SelTarget::Sl,
            action: SelAction::AssertElseNothing,
            bank: MemBank::Epc,
            mask,
            truncate: false,
        }
    }

    /// Deassert SL on every tag (match-all mask, deassert action).
    pub fn clear_sl() -> Self {
        Select {
            target: SelTarget::Sl,
            action: SelAction::DeassertElseNothing,
            bank: MemBank::Epc,
            mask: BitMask::MATCH_ALL,
            truncate: false,
        }
    }

    /// Reset the inventoried flag of `session` to A on all tags, so a fresh
    /// full inventory reads everyone.
    pub fn reset_inventoried(session: Session) -> Self {
        Select {
            target: SelTarget::Inventoried(session),
            action: SelAction::AssertElseNothing,
            bank: MemBank::Epc,
            mask: BitMask::MATCH_ALL,
            truncate: false,
        }
    }

    /// Marks this Select as truncating (builder form). Panics unless the
    /// mask is an EPC-bank prefix mask — the only configuration where the
    /// reader can reconstruct full EPCs from truncated replies.
    pub fn with_truncate(mut self) -> Self {
        assert_eq!(self.bank, MemBank::Epc, "truncation is EPC-bank only");
        assert_eq!(
            self.mask.pointer, 0,
            "truncation requires a prefix mask (pointer 0)"
        );
        self.truncate = true;
        self
    }
}

/// The `Sel` field of `Query`: which tags participate in the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuerySel {
    /// All tags regardless of SL.
    All,
    /// Only tags with SL deasserted.
    NotSl,
    /// Only tags with SL asserted.
    Sl,
}

/// The `Query` command: starts a frame of `2^q` slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Slot-count exponent; the frame has `2^q` slots. `0 ..= 15`.
    pub q: u8,
    /// Participation filter on the SL flag.
    pub sel: QuerySel,
    /// Session whose inventoried flag gates participation.
    pub session: Session,
    /// Which inventoried-flag value participates (usually `A`).
    pub target: InvFlag,
}

impl Query {
    /// Frame length `2^q`.
    #[inline]
    pub fn frame_len(&self) -> u32 {
        1u32 << self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_len_is_power_of_two() {
        for q in 0..=15u8 {
            let query = Query {
                q,
                sel: QuerySel::All,
                session: Session::S0,
                target: InvFlag::A,
            };
            assert_eq!(query.frame_len(), 1 << q);
        }
    }

    #[test]
    fn inv_flag_toggles() {
        assert_eq!(InvFlag::A.toggled(), InvFlag::B);
        assert_eq!(InvFlag::B.toggled(), InvFlag::A);
    }

    #[test]
    fn session_indices_unique() {
        let idx: Vec<usize> = [Session::S0, Session::S1, Session::S2, Session::S3]
            .iter()
            .map(|s| s.index())
            .collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_eight_actions_have_distinct_ops() {
        use SelAction::*;
        let actions = [
            AssertElseDeassert,
            AssertElseNothing,
            NothingElseDeassert,
            ToggleElseNothing,
            DeassertElseAssert,
            DeassertElseNothing,
            NothingElseAssert,
            NothingElseToggle,
        ];
        let mut seen = Vec::new();
        for a in actions {
            let ops = a.ops();
            assert!(!seen.contains(&ops), "duplicate ops for {a:?}");
            seen.push(ops);
        }
    }

    #[test]
    fn canonical_selects() {
        let m = BitMask::new(0b1, 0, 1);
        let s = Select::assert_sl(m);
        assert_eq!(s.target, SelTarget::Sl);
        assert_eq!(s.action, SelAction::AssertElseDeassert);
        assert_eq!(s.mask, m);

        let c = Select::clear_sl();
        assert!(c.mask.is_match_all());
        assert_eq!(c.action, SelAction::DeassertElseNothing);

        let r = Select::reset_inventoried(Session::S1);
        assert_eq!(r.target, SelTarget::Inventoried(Session::S1));
    }
}
