//! The inventory-round engine: a discrete-event simulation of one Gen2
//! inventory round over a population of tag state machines.
//!
//! The engine plays the reader's half of the protocol — Query, a slot loop
//! of QueryRep/QueryAdjust, ACKs — against [`TagProto`] instances, charging
//! air time from [`LinkTiming`] for every command and reply. Nothing about
//! contention is hard-coded: empties, collisions, and the Q-adaptive
//! feedback loop all emerge from the tag slot draws, which is what lets the
//! paper's cost model `C(n)` be *validated* against this simulator instead
//! of assumed.

use crate::commands::Query;
use crate::epc::Epc;
use crate::qadapt::{FrameSizer, SlotOutcome};
use crate::tag::{TagProto, TagState};
use crate::timing::LinkTiming;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tagwatch_telemetry::Telemetry;

/// Configuration of a single inventory round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundConfig {
    /// The Query parameters (participation filter, session, target, and the
    /// *initial* Q — the sizer takes over from there).
    pub query: Query,
    /// Probability that a clean single reply is nevertheless undecodable
    /// (fades, capture failures). The reader observes such slots as
    /// collisions. `0.0` disables fault injection.
    pub decode_fail_prob: f64,
    /// Probability that a `QueryRep` broadcast is lost — no tag hears the
    /// slot boundary, so counters don't decrement and the slot is wasted.
    /// `0.0` (the default) disables the fault entirely: no RNG draw is
    /// made, so clean runs keep their exact random stream.
    #[serde(default)]
    pub query_rep_loss_prob: f64,
    /// Probability that a decoded EPC reply is corrupted in flight: the
    /// slot costs full success air time, but the reader discards the
    /// read and the tag is left un-acknowledged (it re-contends after
    /// the next re-draw). `0.0` disables the fault with no RNG draw.
    #[serde(default)]
    pub epc_corrupt_prob: f64,
    /// Round ends after this many consecutive empty slots at Q = 0.
    pub end_empty_threshold: u32,
    /// Hard safety cap on slots per round.
    pub max_slots: usize,
}

impl RoundConfig {
    /// A round with the given Query and sane defaults.
    pub fn new(query: Query) -> Self {
        RoundConfig {
            query,
            decode_fail_prob: 0.0,
            query_rep_loss_prob: 0.0,
            epc_corrupt_prob: 0.0,
            end_empty_threshold: 3,
            max_slots: 100_000,
        }
    }
}

/// One successful tag read within a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadEvent {
    /// Index of the tag in the population slice passed to the engine.
    pub tag_idx: usize,
    /// The EPC backscattered.
    pub epc: Epc,
    /// Time of the read, in seconds *relative to the start of the round*
    /// (the caller offsets by absolute round start).
    pub t: f64,
}

/// Slot-level accounting for a round.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotStats {
    pub empties: usize,
    pub collisions: usize,
    pub successes: usize,
    /// Single replies lost to injected decode failures (a subset of what
    /// the reader *perceives* as collisions).
    pub decode_failures: usize,
    /// Successfully-decoded EPC replies discarded as corrupt (injected
    /// [`RoundConfig::epc_corrupt_prob`]); the slot paid success air
    /// time but delivered nothing.
    #[serde(default)]
    pub epc_corruptions: usize,
    /// Number of QueryAdjust commands issued.
    pub adjusts: usize,
    /// Number of QueryRep commands issued (including ones lost to
    /// injected faults — the reader spends the air time either way).
    /// Work accounting only: not folded into the `round.*` telemetry
    /// counters, so existing traces stay byte-identical.
    #[serde(default)]
    pub query_reps: usize,
}

impl SlotStats {
    /// Total slots elapsed.
    pub fn total_slots(&self) -> usize {
        self.empties
            + self.collisions
            + self.successes
            + self.decode_failures
            + self.epc_corruptions
    }

    /// Folds this round's slot accounting into the telemetry stream:
    /// `round.empties` / `round.collisions` / `round.successes` /
    /// `round.decode_failures` / `round.adjusts` counters plus a
    /// `round.slots` observation for the frame-size distribution.
    pub fn record(&self, tel: &Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        tel.incr_by("round.empties", self.empties as u64);
        tel.incr_by("round.collisions", self.collisions as u64);
        tel.incr_by("round.successes", self.successes as u64);
        tel.incr_by("round.decode_failures", self.decode_failures as u64);
        // Only faulted runs carry corruption; clean traces stay
        // byte-identical to what they emitted before the fault layer
        // existed.
        if self.epc_corruptions > 0 {
            tel.incr_by("round.epc_corruptions", self.epc_corruptions as u64);
        }
        tel.incr_by("round.adjusts", self.adjusts as u64);
        tel.observe("round.slots", self.total_slots() as f64);
    }
}

/// The result of one inventory round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundResult {
    /// Total air time of the round in seconds, including the per-round
    /// overhead and the initial Query (but *not* any preceding Selects —
    /// those belong to the caller, which knows how many it issued).
    pub duration: f64,
    /// Successful reads, in slot order.
    pub reads: Vec<ReadEvent>,
    /// Slot accounting.
    pub stats: SlotStats,
}

impl RoundResult {
    /// Folds this round into the telemetry stream: the slot counters
    /// (see [`SlotStats::record`]), `round.count`, the reads delivered
    /// (`round.reads`), and the air-time histogram (`round.duration`).
    ///
    /// A no-op while `tel` is disabled, so callers in the hot round loop
    /// can call it unconditionally.
    pub fn record(&self, tel: &Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        self.stats.record(tel);
        tel.incr("round.count");
        tel.incr_by("round.reads", self.reads.len() as u64);
        tel.observe("round.duration", self.duration);
    }
}

/// Runs one inventory round to completion.
///
/// Participating tags (per the Query's sel/session/target and their flags)
/// contend in slotted ALOHA; each success flips the tag's inventoried flag
/// so it drops out, and the round ends when the reader is confident the
/// participating population is exhausted.
pub fn run_round<R: Rng + ?Sized>(
    tags: &mut [TagProto],
    cfg: &RoundConfig,
    sizer: &mut dyn FrameSizer,
    timing: &LinkTiming,
    rng: &mut R,
) -> RoundResult {
    let mut t = timing.round_overhead;
    let mut reads = Vec::new();
    let mut stats = SlotStats::default();

    let mut q = sizer.current_q();
    let mut query = Query { q, ..cfg.query };

    // Initial Query starts the first frame.
    t += timing.t_query;
    for tag in tags.iter_mut() {
        tag.handle_query(&query, rng);
    }

    let mut consecutive_empty_at_q0 = 0u32;
    for _slot in 0..cfg.max_slots {
        // Who is backscattering this slot?
        let mut repliers = tags
            .iter()
            .enumerate()
            .filter(|(_, tag)| tag.state() == TagState::Reply)
            .map(|(i, _)| i)
            .collect::<Vec<_>>();

        let outcome = match repliers.len() {
            0 => {
                t += timing.empty_slot();
                stats.empties += 1;
                SlotOutcome::Empty
            }
            1 => {
                if cfg.decode_fail_prob > 0.0 && rng.gen_bool(cfg.decode_fail_prob) {
                    // The lone RN16 was garbled; the reader can't tell this
                    // from a collision.
                    t += timing.collision_slot();
                    stats.decode_failures += 1;
                    SlotOutcome::Collision
                } else {
                    let idx = repliers.pop().expect("one replier"); // lint:allow(panic-policy): singleton branch guarantees exactly one replier
                    let rn16 = tags[idx].replying_rn16().expect("tag is replying"); // lint:allow(panic-policy): a replying tag holds an RN16
                                                                                    // Truncated replies (Gen2 Truncate) carry only the EPC
                                                                                    // bits after the Select mask, plus 16 framing bits.
                    let reply_bits = match tags[idx].truncate_from() {
                        Some(from) => (crate::epc::EPC_BITS - from) + 16,
                        None => 128,
                    };
                    if cfg.epc_corrupt_prob > 0.0 && rng.gen_bool(cfg.epc_corrupt_prob) {
                        // The handshake ran to the EPC backscatter, but
                        // the reply arrived corrupt: full success air
                        // time spent, nothing delivered. The tag was
                        // never validly ACKed, so it keeps its flags and
                        // re-contends after the next re-draw (the
                        // QueryRep below parks it, like a collision).
                        t += timing.success_slot_bits(reply_bits);
                        stats.epc_corruptions += 1;
                        SlotOutcome::Collision
                    } else {
                        let epc = tags[idx]
                            .handle_ack(rn16, cfg.query.session)
                            .expect("rn16 echo must be accepted"); // lint:allow(panic-policy): the tag just issued this RN16
                        t += timing.success_slot_bits(reply_bits);
                        stats.successes += 1;
                        reads.push(ReadEvent {
                            tag_idx: idx,
                            epc,
                            t,
                        });
                        tags[idx].end_of_slot();
                        SlotOutcome::Success
                    }
                }
            }
            _ => {
                t += timing.collision_slot();
                stats.collisions += 1;
                SlotOutcome::Collision
            }
        };

        sizer.on_slot(outcome);

        // Termination: sustained silence at the smallest frame.
        if outcome == SlotOutcome::Empty && sizer.current_q() == 0 && q == 0 {
            consecutive_empty_at_q0 += 1;
            if consecutive_empty_at_q0 >= cfg.end_empty_threshold {
                break;
            }
        } else {
            consecutive_empty_at_q0 = 0;
        }

        // Advance: QueryAdjust on a Q change, else QueryRep.
        let new_q = sizer.current_q();
        if new_q != q {
            q = new_q;
            query = Query { q, ..cfg.query };
            t += timing.t_query_adjust;
            stats.adjusts += 1;
            for tag in tags.iter_mut() {
                tag.handle_query_adjust(&query, rng);
            }
        } else if cfg.query_rep_loss_prob > 0.0 && rng.gen_bool(cfg.query_rep_loss_prob) {
            // The QueryRep broadcast was lost: no tag heard the slot
            // boundary, so no counter decrements — the slot's air time
            // is spent for nothing.
            stats.query_reps += 1;
        } else {
            stats.query_reps += 1;
            for tag in tags.iter_mut() {
                tag.handle_query_rep(rng);
            }
        }
    }

    RoundResult {
        duration: t,
        reads,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{InvFlag, QuerySel, Select, Session};
    use crate::mask::BitMask;
    use crate::qadapt::QAdaptive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize, seed: u64) -> Vec<TagProto> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| TagProto::new(Epc::random(&mut rng)))
            .collect()
    }

    fn open_query(q: u8) -> Query {
        Query {
            q,
            sel: QuerySel::All,
            session: Session::S0,
            target: InvFlag::A,
        }
    }

    #[test]
    fn round_reads_every_tag_exactly_once() {
        for n in [1usize, 2, 5, 17, 40] {
            let mut tags = population(n, 42);
            let mut sizer = QAdaptive::new(4);
            let mut rng = StdRng::seed_from_u64(7);
            let res = run_round(
                &mut tags,
                &RoundConfig::new(open_query(4)),
                &mut sizer,
                &LinkTiming::r420(),
                &mut rng,
            );
            assert_eq!(res.reads.len(), n, "population {n}");
            let mut seen: Vec<usize> = res.reads.iter().map(|r| r.tag_idx).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), n, "duplicate reads for population {n}");
            // All flags flipped.
            for tag in &tags {
                assert_eq!(tag.inventoried[0], InvFlag::B);
            }
        }
    }

    #[test]
    fn empty_population_terminates_quickly() {
        let mut tags: Vec<TagProto> = Vec::new();
        let mut sizer = QAdaptive::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let res = run_round(
            &mut tags,
            &RoundConfig::new(open_query(4)),
            &mut sizer,
            &LinkTiming::r420(),
            &mut rng,
        );
        assert!(res.reads.is_empty());
        assert_eq!(res.stats.successes, 0);
        // Winds down in well under 100 slots and a few ms of air time.
        assert!(res.stats.total_slots() < 100);
        assert!(res.duration < 0.025, "duration {}", res.duration);
    }

    #[test]
    fn read_times_are_increasing_and_within_duration() {
        let mut tags = population(20, 3);
        let mut sizer = QAdaptive::new(5);
        let mut rng = StdRng::seed_from_u64(9);
        let res = run_round(
            &mut tags,
            &RoundConfig::new(open_query(5)),
            &mut sizer,
            &LinkTiming::r420(),
            &mut rng,
        );
        let mut prev = 0.0;
        for r in &res.reads {
            assert!(r.t > prev);
            assert!(r.t <= res.duration);
            prev = r.t;
        }
    }

    #[test]
    fn selective_round_reads_only_sl_tags() {
        let mut tags = population(30, 5);
        // Select tags whose EPC starts with bit pattern of tag 0's first 4
        // bits.
        let mask = BitMask::from_epc_range(tags[0].epc, 0, 4);
        let sel = Select::assert_sl(mask);
        for tag in tags.iter_mut() {
            tag.handle_select(&sel);
        }
        let expected: Vec<usize> = tags
            .iter()
            .enumerate()
            .filter(|(_, t)| mask.matches(t.epc))
            .map(|(i, _)| i)
            .collect();
        let query = Query {
            sel: QuerySel::Sl,
            ..open_query(2)
        };
        let mut sizer = QAdaptive::new(2);
        let mut rng = StdRng::seed_from_u64(11);
        let res = run_round(
            &mut tags,
            &RoundConfig::new(query),
            &mut sizer,
            &LinkTiming::r420(),
            &mut rng,
        );
        let mut got: Vec<usize> = res.reads.iter().map(|r| r.tag_idx).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn per_tag_slot_cost_is_stable_across_population() {
        // The *raw* round engine is near-linear in n (ideal-DFSA-like);
        // the paper's n·ln n growth comes from the reader's dense-mode
        // link adaptation on top (see tagwatch-reader). Here we pin the
        // round engine itself: marginal cost per tag stays within a
        // narrow band as n grows (no collapse, no blow-up).
        let time_for = |n: usize| {
            let mut tags = population(n, 17);
            let mut sizer = QAdaptive::new((n as f64).log2().ceil() as u8);
            let mut rng = StdRng::seed_from_u64(23);
            let mut total = 0.0;
            for _ in 0..20 {
                for t in tags.iter_mut() {
                    t.handle_select(&Select::reset_inventoried(Session::S0));
                }
                total += run_round(
                    &mut tags,
                    &RoundConfig::new(open_query(4)),
                    &mut sizer,
                    &LinkTiming::r420(),
                    &mut rng,
                )
                .duration;
            }
            total / 20.0
        };
        let per_tag_small = (time_for(5) - 0.019) / 5.0;
        let per_tag_large = (time_for(40) - 0.019) / 40.0;
        let ratio = per_tag_large / per_tag_small;
        assert!(
            (0.7..2.5).contains(&ratio),
            "per-tag cost drifted: {per_tag_small} vs {per_tag_large} (ratio {ratio})"
        );
    }

    #[test]
    fn decode_failures_slow_but_do_not_lose_tags() {
        let mut tags = population(15, 29);
        let mut cfg = RoundConfig::new(open_query(4));
        cfg.decode_fail_prob = 0.3;
        let mut sizer = QAdaptive::new(4);
        let mut rng = StdRng::seed_from_u64(31);
        let res = run_round(&mut tags, &cfg, &mut sizer, &LinkTiming::r420(), &mut rng);
        assert_eq!(res.reads.len(), 15, "all tags eventually read");
        assert!(res.stats.decode_failures > 0, "fault injection engaged");
    }

    #[test]
    fn epc_corruption_slows_but_does_not_lose_tags() {
        let mut tags = population(12, 43);
        let mut cfg = RoundConfig::new(open_query(4));
        cfg.epc_corrupt_prob = 0.5;
        let mut sizer = QAdaptive::new(4);
        let mut rng = StdRng::seed_from_u64(47);
        let res = run_round(&mut tags, &cfg, &mut sizer, &LinkTiming::r420(), &mut rng);
        assert_eq!(res.reads.len(), 12, "all tags eventually read");
        assert!(
            res.stats.epc_corruptions > 0,
            "fault injection engaged: {:?}",
            res.stats
        );
        // Corrupt slots never flip flags early: every tag got exactly
        // one *delivered* read.
        let mut seen: Vec<usize> = res.reads.iter().map(|r| r.tag_idx).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn query_rep_loss_wastes_slots_but_terminates() {
        let mut tags = population(10, 53);
        let mut cfg = RoundConfig::new(open_query(4));
        cfg.query_rep_loss_prob = 0.5;
        let mut sizer = QAdaptive::new(4);
        let mut rng = StdRng::seed_from_u64(59);
        let res = run_round(&mut tags, &cfg, &mut sizer, &LinkTiming::r420(), &mut rng);
        assert_eq!(res.reads.len(), 10, "losses delay but don't drop tags");
        assert!(res.stats.total_slots() <= cfg.max_slots);

        // Total loss: the round still terminates (via max_slots at
        // worst) and never panics.
        let mut tags = population(10, 53);
        cfg.query_rep_loss_prob = 1.0;
        cfg.max_slots = 500;
        let mut sizer = QAdaptive::new(4);
        let mut rng = StdRng::seed_from_u64(61);
        let res = run_round(&mut tags, &cfg, &mut sizer, &LinkTiming::r420(), &mut rng);
        assert!(res.stats.total_slots() <= 500);
    }

    #[test]
    fn muted_tags_are_invisible_to_the_round() {
        let mut tags = population(8, 71);
        tags[2].set_muted(true);
        tags[5].set_muted(true);
        let mut sizer = QAdaptive::new(3);
        let mut rng = StdRng::seed_from_u64(73);
        let res = run_round(
            &mut tags,
            &RoundConfig::new(open_query(3)),
            &mut sizer,
            &LinkTiming::r420(),
            &mut rng,
        );
        let seen: Vec<usize> = res.reads.iter().map(|r| r.tag_idx).collect();
        assert_eq!(res.reads.len(), 6);
        assert!(!seen.contains(&2) && !seen.contains(&5));
        // Muted tags kept their A flag: unmuting restores participation.
        tags[2].set_muted(false);
        assert_eq!(tags[2].inventoried[0], InvFlag::A);
    }

    #[test]
    fn zero_fault_probabilities_do_not_disturb_the_rng_stream() {
        // A config with explicit 0.0 fault probabilities must reproduce
        // the exact result of the pre-fault code path: no RNG draw may
        // happen on a disabled fault.
        let run = |cfg: RoundConfig| {
            let mut tags = population(18, 83);
            let mut sizer = QAdaptive::new(4);
            let mut rng = StdRng::seed_from_u64(89);
            run_round(&mut tags, &cfg, &mut sizer, &LinkTiming::r420(), &mut rng)
        };
        let clean = run(RoundConfig::new(open_query(4)));
        let mut zeroed = RoundConfig::new(open_query(4));
        zeroed.query_rep_loss_prob = 0.0;
        zeroed.epc_corrupt_prob = 0.0;
        zeroed.decode_fail_prob = 0.0;
        assert_eq!(run(zeroed), clean);
    }

    #[test]
    fn max_slots_caps_pathological_rounds() {
        let mut tags = population(10, 37);
        let mut cfg = RoundConfig::new(open_query(0));
        cfg.max_slots = 5; // absurdly small on purpose
        let mut sizer = QAdaptive::new(0);
        let mut rng = StdRng::seed_from_u64(41);
        let res = run_round(&mut tags, &cfg, &mut sizer, &LinkTiming::r420(), &mut rng);
        assert!(res.stats.total_slots() <= 5);
    }

    #[test]
    fn round_result_record_emits_counters_and_histogram() {
        use tagwatch_telemetry::MemorySink;
        let mut tags = population(20, 61);
        let mut sizer = QAdaptive::new(5);
        let mut rng = StdRng::seed_from_u64(67);
        let res = run_round(
            &mut tags,
            &RoundConfig::new(open_query(5)),
            &mut sizer,
            &LinkTiming::r420(),
            &mut rng,
        );

        let tel = Telemetry::new();
        let sink = MemorySink::new(256);
        tel.install(Box::new(sink.clone()));
        res.record(&tel);

        let snap = tel.snapshot();
        assert_eq!(snap.counter("round.count"), Some(1));
        assert_eq!(snap.counter("round.reads"), Some(res.reads.len() as u64));
        assert_eq!(
            snap.counter("round.successes"),
            Some(res.stats.successes as u64)
        );
        assert_eq!(
            snap.counter("round.empties"),
            Some(res.stats.empties as u64)
        );
        assert_eq!(
            snap.counter("round.collisions"),
            Some(res.stats.collisions as u64)
        );
        assert_eq!(
            snap.counter("round.adjusts"),
            Some(res.stats.adjusts as u64)
        );
        let h = snap.histogram("round.duration").unwrap();
        assert_eq!(h.count(), 1);
        assert!((h.sum() - res.duration).abs() < 1e-12);
        let slots = snap.histogram("round.slots").unwrap();
        assert!((slots.sum() - res.stats.total_slots() as f64).abs() < 1e-9);

        // Disabled handles are inert: nothing further accumulates.
        tel.set_enabled(false);
        res.record(&tel);
        assert_eq!(tel.snapshot().counter("round.count"), Some(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut tags = population(25, 55);
            let mut sizer = QAdaptive::new(5);
            let mut rng = StdRng::seed_from_u64(77);
            run_round(
                &mut tags,
                &RoundConfig::new(open_query(5)),
                &mut sizer,
                &LinkTiming::r420(),
                &mut rng,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
