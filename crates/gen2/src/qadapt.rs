//! Frame-length control: the Q-adaptive award–punish algorithm of COTS
//! readers, plus an idealised DFSA controller for comparison (§2.1–2.2 of
//! the paper).

use serde::{Deserialize, Serialize};

/// The outcome of one ALOHA slot, as seen by the reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotOutcome {
    /// No tag replied.
    Empty,
    /// Two or more tags replied (or the RN16 was undecodable).
    Collision,
    /// Exactly one tag replied and was read.
    Success,
}

/// Strategy interface for frame-length control during a round.
pub trait FrameSizer {
    /// The Q to use for the *next* slot. The round engine compares this with
    /// the current Q and issues `QueryAdjust` when it changes.
    fn current_q(&self) -> u8;
    /// Feed the outcome of the slot that just finished.
    fn on_slot(&mut self, outcome: SlotOutcome);
    /// Reset for a fresh round with an estimated population (hint only).
    fn reset(&mut self, population_hint: Option<usize>);
}

/// The Gen2 Q-adaptive algorithm (Gen2 spec Annex D.2.1): a floating-point
/// shadow `Qfp` is nudged up on collisions and down on empties; the integer
/// `Q = round(Qfp)` sizes the frame.
///
/// This is exactly the "award-punish mechanism" §2.1 of the paper describes
/// COTS readers using, and is the algorithm whose cost the paper's model
/// `C(n)` approximates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QAdaptive {
    qfp: f64,
    /// Step size `C` in the Gen2 spec; typical values 0.1–0.5.
    pub step: f64,
    /// Lower bound on Q (0 in practice).
    pub q_min: u8,
    /// Upper bound on Q (15 in the spec).
    pub q_max: u8,
    initial_q: u8,
}

impl QAdaptive {
    /// A controller starting at `initial_q` with the conventional step 0.3.
    pub fn new(initial_q: u8) -> Self {
        assert!(initial_q <= 15, "Q must be ≤ 15");
        QAdaptive {
            qfp: initial_q as f64,
            step: 0.3,
            q_min: 0,
            q_max: 15,
            initial_q,
        }
    }

    /// Override the step size `C`.
    pub fn with_step(mut self, step: f64) -> Self {
        assert!(step > 0.0 && step <= 1.0, "step must be in (0, 1]");
        self.step = step;
        self
    }
}

impl FrameSizer for QAdaptive {
    fn current_q(&self) -> u8 {
        (self.qfp.round() as i64).clamp(self.q_min as i64, self.q_max as i64) as u8
    }

    fn on_slot(&mut self, outcome: SlotOutcome) {
        match outcome {
            SlotOutcome::Empty => {
                self.qfp = (self.qfp - self.step).max(self.q_min as f64);
            }
            SlotOutcome::Collision => {
                self.qfp = (self.qfp + self.step).min(self.q_max as f64);
                // A collision in a frame of size 1 proves at least two
                // contenders: force the integer Q to grow immediately, or
                // the colliders park in Arbitrate and the round starves
                // (found by property testing; real reader firmware
                // escalates here too).
                if self.current_q() == 0 {
                    self.qfp = self.qfp.max(1.0);
                }
            }
            SlotOutcome::Success => {}
        }
    }

    fn reset(&mut self, population_hint: Option<usize>) {
        self.qfp = match population_hint {
            // Readers that track population start near log2(n).
            Some(n) if n > 0 => (n as f64)
                .log2()
                .clamp(self.q_min as f64, self.q_max as f64),
            _ => self.initial_q as f64,
        };
    }
}

/// Idealised dynamic FSA: assumes the controller magically knows the number
/// of unread tags and always sets `f = n` (i.e. `Q = round(log2 n)`), the
/// optimum derived from Eqn. 1 of the paper. Used as the "best possible
/// anti-collision" baseline when validating the cost model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdealDfsa {
    remaining: usize,
}

impl IdealDfsa {
    /// A controller for a round expected to read `population` tags.
    pub fn new(population: usize) -> Self {
        IdealDfsa {
            remaining: population,
        }
    }
}

impl FrameSizer for IdealDfsa {
    fn current_q(&self) -> u8 {
        if self.remaining <= 1 {
            0
        } else {
            // Q minimising expected slots-per-read: frame ≈ population.
            (self.remaining as f64).log2().round().clamp(0.0, 15.0) as u8
        }
    }

    fn on_slot(&mut self, outcome: SlotOutcome) {
        if outcome == SlotOutcome::Success {
            self.remaining = self.remaining.saturating_sub(1);
        }
    }

    fn reset(&mut self, population_hint: Option<usize>) {
        if let Some(n) = population_hint {
            self.remaining = n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qadaptive_moves_toward_collisions() {
        let mut q = QAdaptive::new(4);
        assert_eq!(q.current_q(), 4);
        for _ in 0..10 {
            q.on_slot(SlotOutcome::Collision);
        }
        assert!(q.current_q() > 4);
        for _ in 0..40 {
            q.on_slot(SlotOutcome::Empty);
        }
        assert_eq!(q.current_q(), 0);
    }

    #[test]
    fn qadaptive_success_is_neutral() {
        let mut q = QAdaptive::new(5);
        for _ in 0..100 {
            q.on_slot(SlotOutcome::Success);
        }
        assert_eq!(q.current_q(), 5);
    }

    #[test]
    fn qadaptive_clamps_to_bounds() {
        let mut q = QAdaptive::new(15);
        for _ in 0..100 {
            q.on_slot(SlotOutcome::Collision);
        }
        assert_eq!(q.current_q(), 15);
        let mut q = QAdaptive::new(0);
        for _ in 0..100 {
            q.on_slot(SlotOutcome::Empty);
        }
        assert_eq!(q.current_q(), 0);
    }

    #[test]
    fn collision_at_q0_escalates_immediately() {
        let mut q = QAdaptive::new(0);
        q.on_slot(SlotOutcome::Collision);
        assert!(q.current_q() >= 1, "Q stuck at 0 after a frame-1 collision");
    }

    #[test]
    fn qadaptive_reset_uses_hint() {
        let mut q = QAdaptive::new(4);
        q.reset(Some(256));
        assert_eq!(q.current_q(), 8);
        q.reset(None);
        assert_eq!(q.current_q(), 4);
        q.reset(Some(0));
        assert_eq!(q.current_q(), 4);
    }

    #[test]
    #[should_panic(expected = "Q must be")]
    fn qadaptive_rejects_big_q() {
        QAdaptive::new(16);
    }

    #[test]
    fn ideal_dfsa_tracks_population() {
        let mut d = IdealDfsa::new(32);
        assert_eq!(d.current_q(), 5);
        for _ in 0..16 {
            d.on_slot(SlotOutcome::Success);
        }
        assert_eq!(d.current_q(), 4);
        for _ in 0..15 {
            d.on_slot(SlotOutcome::Success);
        }
        assert_eq!(d.current_q(), 0);
        // Empties/collisions don't change the ideal estimate.
        d.on_slot(SlotOutcome::Empty);
        d.on_slot(SlotOutcome::Collision);
        assert_eq!(d.current_q(), 0);
    }
}
