//! EPC-96 identifiers with Gen2-style bit addressing.
//!
//! The `Select` command addresses tag memory by *bit index*, MSB first:
//! bit 0 is the most significant bit of the EPC. All bit arithmetic in the
//! bitmask scheduler (§5 of the paper) reduces to extracting bit ranges of
//! these identifiers, so we store the 96 bits in the low bits of a `u128`
//! and do range extraction with shifts.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Number of bits in an EPC-96 identifier.
pub const EPC_BITS: u16 = 96;

/// A 96-bit Electronic Product Code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Epc(u128);

impl Epc {
    /// Builds an EPC from the low 96 bits of `value`. Panics if any of the
    /// high 32 bits are set, to catch accidental truncation at the caller.
    pub fn from_bits(value: u128) -> Self {
        assert!(
            value >> EPC_BITS == 0,
            "EPC value wider than 96 bits: {value:#x}"
        );
        Epc(value)
    }

    /// Builds an EPC from 12 big-endian bytes.
    pub fn from_bytes(bytes: [u8; 12]) -> Self {
        let mut v: u128 = 0;
        for b in bytes {
            v = (v << 8) | b as u128;
        }
        Epc(v)
    }

    /// A uniformly random EPC — the paper's Phase-II experiments deploy
    /// "tags with random EPCs" (§7.2).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let hi: u32 = rng.gen();
        let lo: u64 = rng.gen();
        Epc(((hi as u128) << 64) | lo as u128)
    }

    /// An SGTIN-96-style structured EPC, the scheme real supply chains
    /// encode (GS1 TDS): `[8-bit header 0x30][3-bit filter][3-bit
    /// partition][24-bit company prefix][20-bit item reference][38-bit
    /// serial]`. Tags of the same product share 58 leading bits — prefix
    /// structure the bitmask scheduler can exploit (see the `ablate-epc`
    /// experiment).
    ///
    /// Panics if a field overflows its width.
    pub fn sgtin96(filter: u8, company: u32, item: u32, serial: u64) -> Self {
        assert!(filter < 8, "filter is 3 bits");
        assert!(company < 1 << 24, "company prefix is 24 bits here");
        assert!(item < 1 << 20, "item reference is 20 bits here");
        assert!(serial < 1 << 38, "serial is 38 bits");
        let mut v: u128 = 0x30; // SGTIN-96 header
        v = (v << 3) | filter as u128;
        v = (v << 3) | 5; // partition value for a 24-bit company prefix
        v = (v << 24) | company as u128;
        v = (v << 20) | item as u128;
        v = (v << 38) | serial as u128;
        Epc(v)
    }

    /// The raw 96 bits, right-aligned in a `u128`.
    #[inline]
    pub fn bits(self) -> u128 {
        self.0
    }

    /// The 12 big-endian bytes.
    pub fn to_bytes(self) -> [u8; 12] {
        let mut out = [0u8; 12];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = (self.0 >> (8 * (11 - i))) as u8;
        }
        out
    }

    /// The bit at MSB-first index `i` (`0 ..= 95`).
    #[inline]
    pub fn bit(self, i: u16) -> bool {
        assert!(i < EPC_BITS, "bit index {i} out of range");
        (self.0 >> (EPC_BITS - 1 - i)) & 1 == 1
    }

    /// Extracts `length` bits starting at MSB-first bit `pointer`,
    /// right-aligned in the returned `u128`. `length == 0` returns 0.
    ///
    /// Panics if the range runs off the end of the EPC.
    #[inline]
    pub fn extract(self, pointer: u16, length: u16) -> u128 {
        assert!(
            pointer + length <= EPC_BITS,
            "bit range {pointer}+{length} exceeds {EPC_BITS}"
        );
        if length == 0 {
            return 0;
        }
        let shift = EPC_BITS - pointer - length;
        let mask = if length == 128 {
            u128::MAX
        } else {
            (1u128 << length) - 1
        };
        (self.0 >> shift) & mask
    }
}

impl fmt::Display for Epc {
    /// Formats as 24 uppercase hex digits, the conventional EPC notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:024X}", self.0)
    }
}

/// Errors from parsing an EPC hex string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEpcError {
    /// Input was not exactly 24 hex digits.
    BadLength(usize),
    /// Input contained a non-hex character.
    BadDigit(char),
}

impl fmt::Display for ParseEpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEpcError::BadLength(n) => {
                write!(f, "EPC hex string must be 24 digits, got {n}")
            }
            ParseEpcError::BadDigit(c) => write!(f, "invalid hex digit {c:?} in EPC"),
        }
    }
}

impl std::error::Error for ParseEpcError {}

impl FromStr for Epc {
    type Err = ParseEpcError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 24 {
            return Err(ParseEpcError::BadLength(s.len()));
        }
        let mut v: u128 = 0;
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(ParseEpcError::BadDigit(c))?;
            v = (v << 4) | d as u128;
        }
        Ok(Epc(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn byte_round_trip() {
        let bytes = [
            0x30, 0x08, 0x33, 0xB2, 0xDD, 0xD9, 0x01, 0x40, 0x00, 0x00, 0x00, 0x01,
        ];
        let epc = Epc::from_bytes(bytes);
        assert_eq!(epc.to_bytes(), bytes);
    }

    #[test]
    fn hex_round_trip() {
        let s = "300833B2DDD9014000000001";
        let epc: Epc = s.parse().unwrap();
        assert_eq!(epc.to_string(), s);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "123".parse::<Epc>().unwrap_err(),
            ParseEpcError::BadLength(3)
        );
        assert_eq!(
            "30X833B2DDD9014000000001".parse::<Epc>().unwrap_err(),
            ParseEpcError::BadDigit('X')
        );
    }

    #[test]
    fn bit_is_msb_first() {
        // EPC with only the top bit set.
        let epc = Epc::from_bits(1u128 << 95);
        assert!(epc.bit(0));
        for i in 1..EPC_BITS {
            assert!(!epc.bit(i));
        }
        // EPC with only the bottom bit set.
        let epc = Epc::from_bits(1);
        assert!(epc.bit(95));
        assert!(!epc.bit(0));
    }

    #[test]
    fn extract_matches_per_bit() {
        let mut rng = StdRng::seed_from_u64(11);
        let epc = Epc::random(&mut rng);
        for &(p, l) in &[(0u16, 8u16), (4, 12), (88, 8), (0, 96), (95, 1), (10, 0)] {
            let got = epc.extract(p, l);
            let mut want: u128 = 0;
            for i in 0..l {
                want = (want << 1) | epc.bit(p + i) as u128;
            }
            assert_eq!(got, want, "pointer {p} length {l}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn extract_out_of_range_panics() {
        Epc::from_bits(0).extract(90, 10);
    }

    #[test]
    #[should_panic(expected = "wider than 96")]
    fn from_bits_rejects_wide_values() {
        Epc::from_bits(1u128 << 96);
    }

    #[test]
    fn sgtin96_layout() {
        let epc = Epc::sgtin96(1, 0xABCDEF, 0x12345, 42);
        // Header in the top byte.
        assert_eq!(epc.extract(0, 8), 0x30);
        assert_eq!(epc.extract(8, 3), 1);
        assert_eq!(epc.extract(11, 3), 5);
        assert_eq!(epc.extract(14, 24), 0xABCDEF);
        assert_eq!(epc.extract(38, 20), 0x12345);
        assert_eq!(epc.extract(58, 38), 42);
        // Same product, different serials share a 58-bit prefix.
        let sibling = Epc::sgtin96(1, 0xABCDEF, 0x12345, 43);
        assert_eq!(epc.extract(0, 58), sibling.extract(0, 58));
        assert_ne!(epc, sibling);
    }

    #[test]
    #[should_panic(expected = "serial is 38 bits")]
    fn sgtin96_rejects_wide_serial() {
        Epc::sgtin96(0, 0, 0, 1 << 38);
    }

    #[test]
    fn random_is_seeded() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(Epc::random(&mut a), Epc::random(&mut b));
    }

    #[test]
    fn ordering_matches_numeric() {
        let a = Epc::from_bits(5);
        let b = Epc::from_bits(9);
        assert!(a < b);
    }
}
