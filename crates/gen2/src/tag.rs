//! The tag-side protocol state machine.
//!
//! A Gen2 tag is a slave: it carries an SL flag, four per-session
//! inventoried flags, a slot counter, and a tiny state machine
//! (Ready → Arbitrate → Reply → Acknowledged). This module implements the
//! subset of tag behaviour that inventory exercises, faithfully enough
//! that the link-layer dynamics of the paper (frame-slotted ALOHA under
//! Q-adaptive, Select-based population partitioning) emerge rather than
//! being hard-coded.

use crate::commands::{FlagOp, InvFlag, MemBank, Query, QuerySel, SelTarget, Select, Session};
use crate::epc::Epc;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tag inventory states (Gen2 spec §6.3.2.4, minus the access states we
/// don't need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TagState {
    /// Energised, waiting for a Query it participates in.
    Ready,
    /// Holding a non-zero slot counter, waiting for its slot.
    Arbitrate,
    /// Slot counter hit zero: backscattering RN16 this slot.
    Reply,
    /// RN16 acknowledged: backscattering PC/EPC/CRC.
    Acknowledged,
}

/// A simulated tag's protocol-visible state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagProto {
    /// The tag's EPC.
    pub epc: Epc,
    /// The tag's TID (bank 10): factory-programmed identity with vendor /
    /// model prefixes. `None` models a tag whose TID is not of interest;
    /// TID-bank Selects then never match it.
    pub tid: Option<Epc>,
    /// The SL flag manipulated by `Select`.
    pub sl: bool,
    /// Per-session inventoried flags.
    pub inventoried: [InvFlag; 4],
    /// Whether the tag is currently energised (in the reader field). Tags
    /// out of the field ignore all commands.
    pub powered: bool,
    /// Whether the tag is muted by an injected fault: energised and
    /// retaining all volatile state, but not hearing or answering any
    /// command (a hand over the tag, a detuned neighbour). Managed via
    /// [`TagProto::set_muted`] so mid-round mutes park cleanly.
    #[serde(default)]
    muted: bool,
    state: TagState,
    /// Slot counter (SC in the paper's §2.1).
    slot_counter: u32,
    /// The RN16 backscattered in the current slot.
    rn16: u16,
    /// When set by a truncating Select, the tag backscatters only the EPC
    /// bits from this index on (Gen2 Truncate).
    truncate_from: Option<u16>,
}

impl TagProto {
    /// A fresh, powered tag with SL deasserted and all sessions at A.
    pub fn new(epc: Epc) -> Self {
        TagProto {
            epc,
            tid: None,
            sl: false,
            inventoried: [InvFlag::A; 4],
            powered: true,
            muted: false,
            state: TagState::Ready,
            slot_counter: 0,
            rn16: 0,
            truncate_from: None,
        }
    }

    /// Sets the tag's TID (builder form) — enables TID-bank Selects, e.g.
    /// vendor filtering.
    pub fn with_tid(mut self, tid: Epc) -> Self {
        self.tid = Some(tid);
        self
    }

    /// The bit index truncated replies start at, if a truncating Select
    /// matched this tag.
    pub fn truncate_from(&self) -> Option<u16> {
        self.truncate_from
    }

    /// Current inventory state.
    pub fn state(&self) -> TagState {
        self.state
    }

    /// Current slot counter (for diagnostics/tests).
    pub fn slot_counter(&self) -> u32 {
        self.slot_counter
    }

    /// Whether the tag would participate in `query` (flags only — the tag
    /// must also be powered).
    pub fn participates(&self, query: &Query) -> bool {
        if !self.powered || self.muted {
            return false;
        }
        let sel_ok = match query.sel {
            QuerySel::All => true,
            QuerySel::Sl => self.sl,
            QuerySel::NotSl => !self.sl,
        };
        sel_ok && self.inventoried[query.session.index()] == query.target
    }

    /// Applies a `Select` command to this tag's flags. Tags apply Select
    /// regardless of inventory state (and abandon any round in progress).
    pub fn handle_select(&mut self, select: &Select) {
        if !self.powered || self.muted {
            return;
        }
        // EPC and TID banks carry modelled contents; Reserved/User masks
        // never match (their contents are not modelled).
        let matched = match select.bank {
            MemBank::Epc => select.mask.matches(self.epc),
            MemBank::Tid => self.tid.is_some_and(|t| select.mask.matches(t)),
            MemBank::Reserved | MemBank::User => false,
        };
        // Truncation state follows the most recent Select: set when a
        // truncating Select matches, cleared by any other Select (the spec
        // requires the truncating Select to be the last one issued).
        self.truncate_from = if matched && select.truncate {
            Some(select.mask.pointer + select.mask.length)
        } else {
            None
        };
        let (on_match, on_miss) = select.action.ops();
        let op = if matched { on_match } else { on_miss };
        match select.target {
            SelTarget::Sl => match op {
                FlagOp::Assert => self.sl = true,
                FlagOp::Deassert => self.sl = false,
                FlagOp::Toggle => self.sl = !self.sl,
                FlagOp::Nothing => {}
            },
            SelTarget::Inventoried(session) => {
                let flag = &mut self.inventoried[session.index()];
                match op {
                    FlagOp::Assert => *flag = InvFlag::A,
                    FlagOp::Deassert => *flag = InvFlag::B,
                    FlagOp::Toggle => *flag = flag.toggled(),
                    FlagOp::Nothing => {}
                }
            }
        }
        // A Select always returns the tag to Ready (it starts a new round).
        self.state = TagState::Ready;
    }

    /// Handles `Query`: participating tags draw a random slot in
    /// `[0, 2^q)`; slot 0 replies immediately.
    pub fn handle_query<R: Rng + ?Sized>(&mut self, query: &Query, rng: &mut R) {
        if !self.participates(query) {
            self.state = TagState::Ready;
            return;
        }
        self.slot_counter = rng.gen_range(0..query.frame_len());
        if self.slot_counter == 0 {
            self.rn16 = rng.gen();
            self.state = TagState::Reply;
        } else {
            self.state = TagState::Arbitrate;
        }
    }

    /// Handles `QueryAdjust` with the *new* q value: participating tags
    /// re-draw their slot. (Real tags adjust Q by ±1 from the Query's value;
    /// passing the resolved q keeps the simulator honest without modelling
    /// the 3-bit UpDn encoding.)
    pub fn handle_query_adjust<R: Rng + ?Sized>(&mut self, query: &Query, rng: &mut R) {
        // Tags in Reply/Arbitrate (i.e. still in the round) re-draw; tags in
        // Ready were not participating; Acknowledged tags already flipped.
        match self.state {
            TagState::Arbitrate | TagState::Reply => {
                self.handle_query(query, rng);
            }
            TagState::Ready | TagState::Acknowledged => {}
        }
    }

    /// Handles `QueryRep`: decrement the slot counter; a tag reaching zero
    /// backscatters a fresh RN16.
    pub fn handle_query_rep<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if !self.powered || self.muted {
            return;
        }
        match self.state {
            TagState::Arbitrate => {
                self.slot_counter = self.slot_counter.saturating_sub(1);
                if self.slot_counter == 0 {
                    self.rn16 = rng.gen();
                    self.state = TagState::Reply;
                }
            }
            TagState::Reply => {
                // Our slot passed without an ACK (collision or decode
                // failure). Per the spec the tag returns to Arbitrate with a
                // wrapped (maximal) slot counter — effectively parked until
                // the next Query/QueryAdjust re-draw.
                self.state = TagState::Arbitrate;
                self.slot_counter = u32::MAX;
            }
            TagState::Ready | TagState::Acknowledged => {}
        }
    }

    /// The RN16 this tag is currently backscattering, if in Reply state.
    pub fn replying_rn16(&self) -> Option<u16> {
        (self.state == TagState::Reply).then_some(self.rn16)
    }

    /// Handles `ACK(rn16)`: if it echoes our RN16, backscatter the EPC and
    /// flip the session's inventoried flag (the tag is "read"). Returns the
    /// EPC on success.
    pub fn handle_ack(&mut self, rn16: u16, session: Session) -> Option<Epc> {
        if self.state == TagState::Reply && self.rn16 == rn16 {
            self.state = TagState::Acknowledged;
            let flag = &mut self.inventoried[session.index()];
            *flag = flag.toggled();
            Some(self.epc)
        } else {
            None
        }
    }

    /// Ends the acknowledged handshake: the tag leaves the round.
    pub fn end_of_slot(&mut self) {
        if self.state == TagState::Acknowledged {
            self.state = TagState::Ready;
        }
    }

    /// Models the tag leaving the reader field (loses all volatile state;
    /// S0/SL reset like a power cycle, S2/S3 flags persist briefly on real
    /// tags but we model the conservative full reset).
    pub fn power_down(&mut self) {
        self.powered = false;
        self.state = TagState::Ready;
        self.sl = false;
        self.inventoried = [InvFlag::A; 4];
        self.slot_counter = 0;
        self.truncate_from = None;
    }

    /// Re-energises the tag.
    pub fn power_up(&mut self) {
        self.powered = true;
    }

    /// Whether the tag is fault-muted.
    pub fn muted(&self) -> bool {
        self.muted
    }

    /// Mutes or unmutes the tag. Muting mid-round parks the tag in Ready
    /// (it stops backscattering instantly) but — unlike
    /// [`TagProto::power_down`] — keeps SL, the session flags, and the
    /// truncation state: the tag never lost power, it just cannot hear
    /// the reader. An unmuted tag rejoins at the next Query.
    pub fn set_muted(&mut self, muted: bool) {
        if muted && !self.muted {
            self.state = TagState::Ready;
            self.slot_counter = 0;
        }
        self.muted = muted;
    }

    /// Crate-internal write-back for the batched round engine: overwrites
    /// the volatile round state in one shot. The batched engine tracks
    /// slot draws in SoA form and reconciles the struct only at ACK time
    /// and at round end; callers must pass exactly the state the scalar
    /// per-slot path would have left (the differential engine tests pin
    /// this equivalence down to struct equality).
    pub(crate) fn sync_round_state(&mut self, state: TagState, slot_counter: u32, rn16: u16) {
        self.state = state;
        self.slot_counter = slot_counter;
        self.rn16 = rn16;
    }

    /// Crate-internal read for the batched round engine: the RN16 the
    /// struct currently holds, regardless of state. The scalar path only
    /// overwrites this field on slot activation, so the batched engine
    /// seeds its SoA copy from here to reproduce stale-RN16 carryover
    /// exactly.
    pub(crate) fn current_rn16(&self) -> u16 {
        self.rn16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{SelAction, Select};
    use crate::mask::BitMask;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q(q: u8, sel: QuerySel) -> Query {
        Query {
            q,
            sel,
            session: Session::S0,
            target: InvFlag::A,
        }
    }

    #[test]
    fn fresh_tag_participates_in_open_query() {
        let tag = TagProto::new(Epc::from_bits(1));
        assert!(tag.participates(&q(4, QuerySel::All)));
        assert!(tag.participates(&q(4, QuerySel::NotSl)));
        assert!(!tag.participates(&q(4, QuerySel::Sl)));
    }

    #[test]
    fn q_zero_replies_immediately() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tag = TagProto::new(Epc::from_bits(1));
        tag.handle_query(&q(0, QuerySel::All), &mut rng);
        assert_eq!(tag.state(), TagState::Reply);
        assert!(tag.replying_rn16().is_some());
    }

    #[test]
    fn ack_flips_inventoried_and_returns_epc() {
        let mut rng = StdRng::seed_from_u64(2);
        let epc = Epc::from_bits(0xABC);
        let mut tag = TagProto::new(epc);
        tag.handle_query(&q(0, QuerySel::All), &mut rng);
        let rn = tag.replying_rn16().unwrap();
        assert_eq!(tag.handle_ack(rn, Session::S0), Some(epc));
        assert_eq!(tag.inventoried[0], InvFlag::B);
        tag.end_of_slot();
        assert_eq!(tag.state(), TagState::Ready);
        // Flag B → no longer participates in target-A queries.
        assert!(!tag.participates(&q(4, QuerySel::All)));
    }

    #[test]
    fn wrong_rn16_is_ignored() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut tag = TagProto::new(Epc::from_bits(1));
        tag.handle_query(&q(0, QuerySel::All), &mut rng);
        let rn = tag.replying_rn16().unwrap();
        assert_eq!(tag.handle_ack(rn.wrapping_add(1), Session::S0), None);
        assert_eq!(tag.state(), TagState::Reply);
        assert_eq!(tag.inventoried[0], InvFlag::A);
    }

    #[test]
    fn query_rep_counts_down() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut tag = TagProto::new(Epc::from_bits(1));
        // Find a seed-dependent draw with a non-zero slot.
        loop {
            tag.handle_query(&q(4, QuerySel::All), &mut rng);
            if tag.state() == TagState::Arbitrate {
                break;
            }
        }
        let sc = tag.slot_counter();
        assert!(sc > 0);
        for _ in 0..sc {
            assert_ne!(tag.state(), TagState::Reply);
            tag.handle_query_rep(&mut rng);
        }
        assert_eq!(tag.state(), TagState::Reply);
    }

    #[test]
    fn unacked_reply_parks_until_redraw() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut tag = TagProto::new(Epc::from_bits(1));
        tag.handle_query(&q(0, QuerySel::All), &mut rng);
        assert_eq!(tag.state(), TagState::Reply);
        // Slot ends with no ACK (collision): tag parks in Arbitrate with a
        // wrapped counter…
        tag.handle_query_rep(&mut rng);
        assert_eq!(tag.state(), TagState::Arbitrate);
        assert_eq!(tag.slot_counter(), u32::MAX);
        // …it won't reply on mere QueryReps…
        tag.handle_query_rep(&mut rng);
        assert_ne!(tag.state(), TagState::Reply);
        // …but a QueryAdjust re-draw brings it back into contention.
        tag.handle_query_adjust(&q(0, QuerySel::All), &mut rng);
        assert_eq!(tag.state(), TagState::Reply);
    }

    #[test]
    fn select_assert_sl_partitions_population() {
        let covered = Epc::from_bits(0b101 << 93);
        let uncovered = Epc::from_bits(0b010 << 93);
        let mask = BitMask::new(0b101, 0, 3);
        let sel = Select::assert_sl(mask);
        let mut a = TagProto::new(covered);
        let mut b = TagProto::new(uncovered);
        a.handle_select(&sel);
        b.handle_select(&sel);
        assert!(a.sl);
        assert!(!b.sl);
        assert!(a.participates(&q(4, QuerySel::Sl)));
        assert!(!b.participates(&q(4, QuerySel::Sl)));
    }

    #[test]
    fn or_sl_unions_masks() {
        let t1 = TagProto::new(Epc::from_bits(0b00 << 94));
        let t2 = TagProto::new(Epc::from_bits(0b01 << 94));
        let t3 = TagProto::new(Epc::from_bits(0b11 << 94));
        let mut tags = [t1, t2, t3];
        // Clear, then OR two single-bit-pattern masks.
        for t in &mut tags {
            t.handle_select(&Select::clear_sl());
            t.handle_select(&Select::or_sl(BitMask::new(0b00, 0, 2)));
            t.handle_select(&Select::or_sl(BitMask::new(0b01, 0, 2)));
        }
        assert!(tags[0].sl);
        assert!(tags[1].sl);
        assert!(!tags[2].sl);
    }

    #[test]
    fn reset_inventoried_restores_participation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut tag = TagProto::new(Epc::from_bits(7));
        tag.handle_query(&q(0, QuerySel::All), &mut rng);
        let rn = tag.replying_rn16().unwrap();
        tag.handle_ack(rn, Session::S0).unwrap();
        tag.end_of_slot();
        assert!(!tag.participates(&q(4, QuerySel::All)));
        tag.handle_select(&Select::reset_inventoried(Session::S0));
        assert!(tag.participates(&q(4, QuerySel::All)));
    }

    #[test]
    fn unpowered_tag_is_inert() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut tag = TagProto::new(Epc::from_bits(7));
        tag.power_down();
        assert!(!tag.participates(&q(4, QuerySel::All)));
        tag.handle_select(&Select::assert_sl(BitMask::MATCH_ALL));
        assert!(!tag.sl);
        tag.handle_query(&q(0, QuerySel::All), &mut rng);
        assert_eq!(tag.state(), TagState::Ready);
        tag.power_up();
        assert!(tag.participates(&q(4, QuerySel::All)));
    }

    #[test]
    fn muted_tag_is_silent_but_keeps_flags() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut tag = TagProto::new(Epc::from_bits(9));
        // Establish some volatile state: SL asserted, S0 flipped to B.
        tag.handle_select(&Select::assert_sl(BitMask::MATCH_ALL));
        tag.handle_query(&q(0, QuerySel::All), &mut rng);
        let rn = tag.replying_rn16().unwrap();
        tag.handle_ack(rn, Session::S0).unwrap();
        tag.end_of_slot();
        assert!(tag.sl);
        assert_eq!(tag.inventoried[0], InvFlag::B);

        tag.set_muted(true);
        assert!(tag.muted());
        // Silent: no participation, Selects and Queries bounce off.
        assert!(!tag.participates(&q(4, QuerySel::Sl)));
        tag.handle_select(&Select::clear_sl());
        assert!(tag.sl, "selects must not reach a muted tag");
        tag.handle_query(&q(0, QuerySel::Sl), &mut rng);
        assert_eq!(tag.state(), TagState::Ready);

        // Unmute: state preserved, participation restored (session B, so
        // a target-B query sees it).
        tag.set_muted(false);
        assert!(tag.sl);
        assert_eq!(tag.inventoried[0], InvFlag::B);
        let target_b = Query {
            target: InvFlag::B,
            ..q(4, QuerySel::Sl)
        };
        assert!(tag.participates(&target_b));
    }

    #[test]
    fn muting_mid_reply_parks_the_tag() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut tag = TagProto::new(Epc::from_bits(3));
        tag.handle_query(&q(0, QuerySel::All), &mut rng);
        assert_eq!(tag.state(), TagState::Reply);
        tag.set_muted(true);
        assert_eq!(tag.state(), TagState::Ready);
        assert!(tag.replying_rn16().is_none());
        // QueryReps while muted are ignored entirely.
        tag.handle_query_rep(&mut rng);
        assert_eq!(tag.state(), TagState::Ready);
    }

    #[test]
    fn tid_bank_select_filters_by_vendor() {
        // Two tags, same random EPC space, different TID vendor prefixes.
        let vendor_a = Epc::from_bits(0xE2_801100u128 << 64); // "vendor 0x801"
        let vendor_b = Epc::from_bits(0xE2_802200u128 << 64);
        let mut a = TagProto::new(Epc::from_bits(1)).with_tid(vendor_a);
        let mut b = TagProto::new(Epc::from_bits(2)).with_tid(vendor_b);
        // Select on the TID's first 20 bits (class + vendor).
        let sel = Select {
            target: SelTarget::Sl,
            action: SelAction::AssertElseDeassert,
            bank: MemBank::Tid,
            mask: BitMask::from_epc_range(vendor_a, 0, 20),
            truncate: false,
        };
        a.handle_select(&sel);
        b.handle_select(&sel);
        assert!(a.sl, "vendor A tag selected");
        assert!(!b.sl, "vendor B tag deselected");
    }

    #[test]
    fn tidless_tag_never_matches_tid_selects() {
        let mut tag = TagProto::new(Epc::from_bits(0));
        let sel = Select {
            target: SelTarget::Sl,
            action: SelAction::AssertElseDeassert,
            bank: MemBank::Tid,
            mask: BitMask::MATCH_ALL,
            truncate: false,
        };
        tag.handle_select(&sel);
        // No TID → non-matching → deassert branch.
        assert!(!tag.sl);
    }

    #[test]
    fn user_bank_never_matches() {
        let mut tag = TagProto::new(Epc::from_bits(0));
        let sel = Select {
            target: SelTarget::Sl,
            action: SelAction::AssertElseDeassert,
            bank: MemBank::User,
            mask: BitMask::MATCH_ALL,
            truncate: false,
        };
        tag.handle_select(&sel);
        assert!(!tag.sl);
    }
}
