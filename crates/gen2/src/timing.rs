//! Air-interface timing and the paper's inventory-cost model.
//!
//! Two layers live here:
//!
//! 1. [`LinkTiming`] — per-command and per-slot air times for the simulated
//!    reader, derived from a fast R420-style link profile (FM0, 640 kHz
//!    backscatter) plus the large per-round overhead COTS readers exhibit
//!    (regulatory carrier drop, LLRP reporting, state reset). The profile is
//!    calibrated so that a least-squares fit of simulated inventories
//!    recovers the paper's empirical parameters `τ0 ≈ 19 ms`,
//!    `τ̄ ≈ 0.18 ms` (§2.3, §6).
//! 2. [`CostModel`] — the paper's closed-form inventory cost
//!    `C(n) = τ0 + n·e·τ̄·ln n` (Definition 1) and the individual reading
//!    rate `Λ(n) = 1/C(n)` (Eqn. 6), which the Phase-II scheduler uses to
//!    price bitmasks.

use serde::{Deserialize, Serialize};

/// Air-time profile of the simulated reader, all in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkTiming {
    /// `Select` command (long: carries the mask bits).
    pub t_select: f64,
    /// `Query` command (starts a round / frame).
    pub t_query: f64,
    /// `QueryRep` command (advances one slot).
    pub t_query_rep: f64,
    /// `QueryAdjust` command (resizes the frame).
    pub t_query_adjust: f64,
    /// `ACK` command.
    pub t_ack: f64,
    /// Tag RN16 backscatter.
    pub t_rn16: f64,
    /// Tag PC/EPC/CRC backscatter.
    pub t_epc: f64,
    /// Reader→tag turnaround (T1 in the spec).
    pub t1: f64,
    /// Tag→reader turnaround (T2).
    pub t2: f64,
    /// No-reply detection timeout (T3).
    pub t3: f64,
    /// Fixed per-inventory-round overhead: carrier drop, session reset,
    /// report flush. This is the dominant part of the paper's start-up
    /// cost τ0 and is what makes many short selective rounds expensive.
    pub round_overhead: f64,
    /// Per-successful-read reporting/processing cost (LLRP report
    /// generation, host round-trip). Zero in batched inventory mode; a
    /// few milliseconds in streaming/tracking mode, where it caps the
    /// aggregate read rate.
    pub t_report: f64,
    /// Antenna multiplexer switch time. Paid when continuous (dwell-mode)
    /// reading rotates antennas between rounds — a mux settle, not a
    /// carrier restart.
    pub t_antenna_switch: f64,
}

impl LinkTiming {
    /// The calibrated R420-like profile (see module docs). Values are in
    /// the range of an FM0/640 kHz link with Tari 6.25 µs:
    ///
    /// * empty slot  ≈ 70 µs
    /// * collided slot ≈ 114 µs
    /// * successful slot ≈ 434 µs
    /// * weighted mean at the DFSA operating point ≈ 0.2 ms ≈ τ̄
    /// * round start ≈ 18.4 ms + Select ≈ τ0
    pub fn r420() -> Self {
        LinkTiming {
            t_select: 0.65e-3,
            t_query: 0.20e-3,
            t_query_rep: 40e-6,
            t_query_adjust: 60e-6,
            t_ack: 80e-6,
            t_rn16: 34e-6,
            t_epc: 200e-6,
            t1: 20e-6,
            t2: 20e-6,
            t3: 10e-6,
            round_overhead: 18.35e-3,
            t_report: 0.0,
            t_antenna_switch: 0.5e-3,
        }
    }

    /// The streaming/tracking profile: same air rates, but every read
    /// pays an LLRP reporting cost. Used with dwell-based continuous
    /// (dual-target) reading, this reproduces the reading-rate regime of
    /// the paper's tracking experiments (Fig. 1), where IRR scales like
    /// 1/n rather than being τ0-bound.
    pub fn r420_tracking() -> Self {
        LinkTiming {
            t_report: 2.5e-3,
            ..Self::r420()
        }
    }

    /// Scales all *slot-rate* timings (commands, replies, turnarounds) by
    /// `factor`, leaving the per-round overhead and Select cost untouched.
    ///
    /// This models ImpinJ-style "Autoset" dense-reader-mode adaptation:
    /// as the population (and thus collision rate) grows, the reader
    /// switches to slower, more robust link settings (higher Miller
    /// factor, lower BLF). Empirically that is what makes the measured
    /// inventory cost grow like `n·ln n` (the paper's Fig. 2) rather than
    /// linearly as ideal DFSA would.
    pub fn scaled(&self, factor: f64) -> LinkTiming {
        assert!(factor >= 1.0, "link can only slow down, got {factor}");
        LinkTiming {
            t_select: self.t_select,
            round_overhead: self.round_overhead,
            t_report: self.t_report,
            t_antenna_switch: self.t_antenna_switch,
            t_query: self.t_query * factor,
            t_query_rep: self.t_query_rep * factor,
            t_query_adjust: self.t_query_adjust * factor,
            t_ack: self.t_ack * factor,
            t_rn16: self.t_rn16 * factor,
            t_epc: self.t_epc * factor,
            t1: self.t1 * factor,
            t2: self.t2 * factor,
            t3: self.t3 * factor,
        }
    }

    /// Duration of an empty slot: QueryRep, wait T1, give up after T3.
    #[inline]
    pub fn empty_slot(&self) -> f64 {
        self.t_query_rep + self.t1 + self.t3
    }

    /// Duration of a collided slot: QueryRep, RN16s collide, reader moves on.
    #[inline]
    pub fn collision_slot(&self) -> f64 {
        self.t_query_rep + self.t1 + self.t_rn16 + self.t2
    }

    /// Duration of a successful slot: the full RN16 → ACK → EPC handshake
    /// plus any per-read reporting cost.
    #[inline]
    pub fn success_slot(&self) -> f64 {
        self.success_slot_bits(128)
    }

    /// Duration of a successful slot whose EPC reply carries `epc_bits`
    /// bits of payload (plus framing). A full PC/EPC-96/CRC reply is 128
    /// bits; truncated replies (Gen2 Truncate) are shorter and save
    /// proportionally on the backscatter time.
    #[inline]
    pub fn success_slot_bits(&self, epc_bits: u16) -> f64 {
        let epc_time = self.t_epc * epc_bits as f64 / 128.0;
        self.t_query_rep
            + self.t1
            + self.t_rn16
            + self.t2
            + self.t_ack
            + self.t1
            + epc_time
            + self.t2
            + self.t_report
    }
}

impl Default for LinkTiming {
    fn default() -> Self {
        LinkTiming::r420()
    }
}

/// The paper's inventory-cost model (Definition 1) with fitted parameters.
///
/// ```
/// use tagwatch_gen2::CostModel;
///
/// let m = CostModel::paper(); // τ0 = 19 ms, τ̄ = 0.18 ms
/// // Reading 40 tags once costs ~91 ms → each tag is sampled at ~11 Hz.
/// assert!((m.inventory_cost(40) - 0.0912).abs() < 1e-3);
/// assert!((m.irr(40) - 11.0).abs() < 0.5);
/// // The drop from a lone tag is the paper's ~84% headline.
/// assert!(m.irr(1) / m.irr(40) > 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Start-up cost τ0 in seconds (paper: 19 ms).
    pub tau0: f64,
    /// Mean slot duration τ̄ in seconds (paper: 0.18 ms).
    pub tau_bar: f64,
}

impl CostModel {
    /// The parameters the paper fits on its testbed (§6 "Parameter choice").
    pub fn paper() -> Self {
        CostModel {
            tau0: 19e-3,
            tau_bar: 0.18e-3,
        }
    }

    /// Inventory cost `C(n)`: total time to identify `n` tags once.
    ///
    /// ```text
    /// C(n) = τ0 + n·e·τ̄·ln(n)   for n > 1
    /// C(n) = τ0 + τ̄             for n ≤ 1
    /// ```
    pub fn inventory_cost(&self, n: usize) -> f64 {
        if n > 1 {
            self.tau0 + n as f64 * std::f64::consts::E * self.tau_bar * (n as f64).ln()
        } else {
            self.tau0 + self.tau_bar
        }
    }

    /// Individual reading rate `Λ(n) = 1 / C(n)` in Hz (Eqn. 6).
    pub fn irr(&self, n: usize) -> f64 {
        1.0 / self.inventory_cost(n)
    }

    /// Least-squares fit of (τ0, τ̄) from measured `(n, C(n))` pairs.
    ///
    /// `C(n) = τ0 + x(n)·τ̄` with `x(n) = n·e·ln(n)` (and `x ≈ 1` for
    /// `n ≤ 1`) is linear in the parameters, so ordinary least squares
    /// suffices — this mirrors the paper's §2.3 parameter estimation.
    pub fn fit(samples: &[(usize, f64)]) -> Option<CostModel> {
        if samples.len() < 2 {
            return None;
        }
        let x = |n: usize| -> f64 {
            if n > 1 {
                n as f64 * std::f64::consts::E * (n as f64).ln()
            } else {
                1.0
            }
        };
        let m = samples.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for &(n, c) in samples {
            let xi = x(n);
            sx += xi;
            sy += c;
            sxx += xi * xi;
            sxy += xi * c;
        }
        let denom = m * sxx - sx * sx;
        if denom.abs() < 1e-18 {
            return None;
        }
        let tau_bar = (m * sxy - sx * sy) / denom;
        let tau0 = (sy - tau_bar * sx) / m;
        Some(CostModel { tau0, tau_bar })
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn slot_durations_ordering() {
        let t = LinkTiming::r420();
        assert!(t.empty_slot() < t.collision_slot());
        assert!(t.collision_slot() < t.success_slot());
        // Sanity against the calibration targets.
        assert!((t.empty_slot() - 70e-6).abs() < 1e-6);
        assert!((t.collision_slot() - 114e-6).abs() < 1e-6);
        assert!((t.success_slot() - 434e-6).abs() < 1e-6);
    }

    #[test]
    fn mean_slot_near_tau_bar() {
        // At the DFSA operating point f = n the slot mix is ≈ 36.8% empty,
        // 26.4% collision, 36.8% success; the weighted mean should land in
        // the neighbourhood of the paper's fitted τ̄ = 0.18 ms.
        let t = LinkTiming::r420();
        let mean = 0.368 * t.empty_slot() + 0.264 * t.collision_slot() + 0.368 * t.success_slot();
        assert!(
            (0.15e-3..0.25e-3).contains(&mean),
            "mean slot {mean} out of calibration band"
        );
    }

    #[test]
    fn truncated_success_slots_are_shorter() {
        let t = LinkTiming::r420();
        let full = t.success_slot();
        // A 40-bit prefix mask leaves 96 − 40 = 56 EPC bits + 16 framing.
        let truncated = t.success_slot_bits(72);
        assert!(truncated < full);
        assert!((full - truncated - t.t_epc * 56.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn tracking_profile_adds_report_cost() {
        let base = LinkTiming::r420();
        let tr = LinkTiming::r420_tracking();
        assert_eq!(base.t_report, 0.0);
        assert!((tr.success_slot() - base.success_slot() - 2.5e-3).abs() < 1e-12);
        assert_eq!(tr.empty_slot(), base.empty_slot());
    }

    #[test]
    fn scaled_touches_only_slot_rates() {
        let t = LinkTiming::r420();
        let s = t.scaled(2.0);
        assert_eq!(s.round_overhead, t.round_overhead);
        assert_eq!(s.t_select, t.t_select);
        assert_eq!(s.t_epc, 2.0 * t.t_epc);
        assert_eq!(s.empty_slot(), 2.0 * t.empty_slot());
        assert_eq!(s.success_slot(), 2.0 * t.success_slot());
    }

    #[test]
    #[should_panic(expected = "slow down")]
    fn scaled_rejects_speedup() {
        LinkTiming::r420().scaled(0.5);
    }

    #[test]
    fn paper_cost_values() {
        let m = CostModel::paper();
        // C(1) = 19.18 ms → Λ(1) ≈ 52 Hz, the model value behind Fig. 2's
        // left edge.
        assert!((m.inventory_cost(1) - 19.18e-3).abs() < 1e-6);
        assert!((m.irr(1) - 52.1).abs() < 1.0);
        // Λ(40): the paper reports IRR dropping to ~12 Hz near n = 40.
        let irr40 = m.irr(40);
        assert!((10.0..14.0).contains(&irr40), "Λ(40) = {irr40}");
    }

    #[test]
    fn irr_is_monotonically_decreasing() {
        let m = CostModel::paper();
        let mut prev = f64::INFINITY;
        for n in 1..=400 {
            let v = m.irr(n);
            assert!(v < prev, "Λ({n}) = {v} not < {prev}");
            prev = v;
        }
    }

    #[test]
    fn eighty_four_percent_drop_claim() {
        // §1/§2.3: "IRR will drastically decrease by 84% when the total
        // number of tags is over 30..40". Check the model reproduces the
        // relative drop from n=1 to n=40.
        let m = CostModel::paper();
        let drop = 1.0 - m.irr(40) / m.irr(1);
        assert!((0.7..0.9).contains(&drop), "drop {drop}");
    }

    #[test]
    fn fit_recovers_exact_parameters() {
        let truth = CostModel {
            tau0: 19e-3,
            tau_bar: 0.18e-3,
        };
        let samples: Vec<(usize, f64)> = (1..=40).map(|n| (n, truth.inventory_cost(n))).collect();
        let fitted = CostModel::fit(&samples).unwrap();
        assert!((fitted.tau0 - truth.tau0).abs() < 1e-9);
        assert!((fitted.tau_bar - truth.tau_bar).abs() < 1e-12);
    }

    #[test]
    fn fit_needs_two_samples() {
        assert!(CostModel::fit(&[]).is_none());
        assert!(CostModel::fit(&[(5, 0.1)]).is_none());
        // Degenerate: identical n values → singular system.
        assert!(CostModel::fit(&[(5, 0.1), (5, 0.1)]).is_none());
    }
}
