//! The batched inventory-round engine: frame-structured slot simulation
//! over SoA tag state, bit-identical to [`crate::round::run_round`].
//!
//! The scalar engine walks every tag on every slot — an O(n) scan per
//! slot, O(n²) per round — because that is literally what the air
//! interface does. But the *outcome* of a frame is fully determined the
//! moment the slot draws land: a tag drawing slot `k` backscatters on the
//! k-th heard `QueryRep`, collides or succeeds depending only on how many
//! neighbours drew the same `k`, and parks until the next `QueryAdjust`
//! otherwise. This engine exploits that: it keeps the participants'
//! draws in flat arrays sorted by slot, advances a cursor instead of
//! re-scanning the population, and reconciles the tag structs only at
//! ACK time and at round end.
//!
//! **Equivalence is by construction, not by assertion.** Every RNG touch
//! goes through the same [`TagProto`] handlers (initial `Query`,
//! `QueryAdjust`) or the same literal draw sequence (`gen::<u16>()` on
//! slot activation in tag-index order, fault `gen_bool`s in the scalar
//! order), so the random stream, the [`RoundResult`], and the final tag
//! structs are byte-identical to the scalar engine's — a property the
//! differential engine tests (in-crate and workspace-level proptests)
//! pin down. The scalar path stays alive behind `--engine reference`.
//!
//! Envelope: the frame cursor counts heard `QueryRep`s in a `u32`, so a
//! single frame longer than `u32::MAX` slots (≈ 50 sim-days at Gen2 slot
//! times; the default `max_slots` is 100 000) would diverge from the
//! scalar park-counter arithmetic. Far outside any configured workload.

use crate::commands::Query;
use crate::qadapt::{FrameSizer, SlotOutcome};
use crate::round::{ReadEvent, RoundConfig, RoundResult, SlotStats};
use crate::tag::{TagProto, TagState};
use crate::timing::LinkTiming;
use rand::Rng;

/// Reusable SoA buffers for [`run_round_batched`]. One workspace per
/// reader: after the first round every buffer has reached steady-state
/// capacity and the engine stops allocating entirely (the allocation
/// regression test counts this).
#[derive(Debug, Clone, Default)]
pub struct RoundWorkspace {
    /// Tag index (into the population slice) per participant.
    idx: Vec<u32>,
    /// Current slot draw per participant. Repurposed once a participant
    /// parks: then it records the heard-QueryRep count at park time, so
    /// the write-back can reproduce the scalar park-counter decrements.
    draw: Vec<u32>,
    /// RN16 drawn at the participant's most recent slot activation.
    rn16: Vec<u16>,
    /// Replied without an ACK (collision / decode failure) and is parked
    /// until the next QueryAdjust.
    parked: Vec<bool>,
    /// Successfully ACKed — out of the round, struct already final.
    done: Vec<bool>,
    /// Participants still counting down (draw > 0), sorted by
    /// `(draw, tag index)`; a cursor walks this instead of re-scanning.
    order: Vec<u32>,
    /// Participants backscattering in the current slot, tag-index order.
    repliers: Vec<u32>,
    /// Recycled reads buffer: moved into the returned [`RoundResult`],
    /// handed back via [`RoundWorkspace::recycle`].
    reads: Vec<ReadEvent>,
}

impl RoundWorkspace {
    /// An empty workspace; buffers grow to population size on first use.
    pub fn new() -> Self {
        RoundWorkspace::default()
    }

    /// Returns a consumed [`RoundResult`]'s reads buffer to the
    /// workspace so the next round reuses its capacity instead of
    /// allocating. Callers that keep the result (or never call this)
    /// lose nothing but the recycling.
    pub fn recycle(&mut self, result: RoundResult) {
        let mut reads = result.reads;
        reads.clear();
        // Keep the larger of the two buffers (relevant only if the
        // caller interleaved results from elsewhere).
        if reads.capacity() > self.reads.capacity() {
            self.reads = reads;
        }
    }

    /// Rebuilds the countdown order: every live participant still
    /// holding a non-zero draw, sorted by `(draw, tag index)`. Entries
    /// are created in ascending tag-index order, so the participant
    /// index is a valid tie-breaker — which is what makes the
    /// activation-time RN16 draws land in the scalar engine's tag order.
    fn rebuild_order(&mut self) {
        self.order.clear();
        for p in 0..self.idx.len() {
            if !self.done[p] && self.draw[p] > 0 {
                self.order.push(p as u32);
            }
        }
        let draw = &self.draw;
        self.order.sort_unstable_by_key(|&p| (draw[p as usize], p));
    }

    fn clear(&mut self) {
        self.idx.clear();
        self.draw.clear();
        self.rn16.clear();
        self.parked.clear();
        self.done.clear();
        self.order.clear();
        self.repliers.clear();
    }

    fn push_participant(&mut self, tag_idx: usize, draw: u32, rn16: u16) -> u32 {
        let p = self.idx.len() as u32;
        self.idx.push(tag_idx as u32);
        self.draw.push(draw);
        self.rn16.push(rn16);
        self.parked.push(false);
        self.done.push(false);
        p
    }
}

/// Runs one inventory round to completion on the batched engine.
///
/// Drop-in equivalent of [`crate::round::run_round`] (same result, same
/// RNG stream consumption, same final tag state) with a reusable
/// workspace instead of per-slot scans and allocations.
pub fn run_round_batched<R: Rng + ?Sized>(
    tags: &mut [TagProto],
    cfg: &RoundConfig,
    sizer: &mut dyn FrameSizer,
    timing: &LinkTiming,
    rng: &mut R,
    ws: &mut RoundWorkspace,
) -> RoundResult {
    let mut t = timing.round_overhead;
    let mut reads = std::mem::take(&mut ws.reads);
    reads.clear();
    let mut stats = SlotStats::default();

    let mut q = sizer.current_q();
    let mut query = Query { q, ..cfg.query };

    // Initial Query: identical struct-level dispatch (and thus identical
    // RNG stream) to the scalar engine; the outcome is read back into
    // the SoA arrays. Participants drawing slot 0 already drew their
    // RN16 inside `handle_query`, so they enter `repliers` directly.
    t += timing.t_query;
    ws.clear();
    // Bound every scratch vector by the population size while they are
    // empty: each holds at most one entry per tag, so after this no slot
    // or frame can force a reallocation mid-round — and from round 2
    // onward the reserves are no-ops, making the steady-state hot path
    // allocation-free (the workspace test and the workspace-level
    // allocation regression test both pin this).
    ws.idx.reserve(tags.len());
    ws.draw.reserve(tags.len());
    ws.rn16.reserve(tags.len());
    ws.parked.reserve(tags.len());
    ws.done.reserve(tags.len());
    ws.order.reserve(tags.len());
    ws.repliers.reserve(tags.len());
    for (i, tag) in tags.iter_mut().enumerate() {
        tag.handle_query(&query, rng);
        // The SoA RN16 column always mirrors what the scalar path would
        // leave in the struct: the fresh draw for slot-0 repliers, the
        // stale pre-round value for everyone else (the scalar engine only
        // overwrites the field on activation, and tags that never
        // activate carry the stale value out of the round).
        match tag.state() {
            TagState::Reply => {
                let p = ws.push_participant(i, 0, tag.current_rn16());
                ws.repliers.push(p);
            }
            TagState::Arbitrate => {
                ws.push_participant(i, tag.slot_counter(), tag.current_rn16());
            }
            TagState::Ready | TagState::Acknowledged => {}
        }
    }
    ws.rebuild_order();
    // Cursor into `order`: everything before it has been activated.
    let mut ptr = 0usize;
    // Heard (non-lost) QueryReps since the last frame start: the slot
    // level currently backscattering.
    let mut heard: u32 = 0;

    let mut consecutive_empty_at_q0 = 0u32;
    for _slot in 0..cfg.max_slots {
        let outcome = match ws.repliers.len() {
            0 => {
                t += timing.empty_slot();
                stats.empties += 1;
                SlotOutcome::Empty
            }
            1 => {
                if cfg.decode_fail_prob > 0.0 && rng.gen_bool(cfg.decode_fail_prob) {
                    // The lone RN16 was garbled; the reader can't tell
                    // this from a collision. The tag stays in Reply and
                    // parks at the next heard QueryRep.
                    t += timing.collision_slot();
                    stats.decode_failures += 1;
                    SlotOutcome::Collision
                } else {
                    let p = ws.repliers[0] as usize;
                    let tag_idx = ws.idx[p] as usize;
                    let rn16 = ws.rn16[p];
                    let reply_bits = match tags[tag_idx].truncate_from() {
                        Some(from) => (crate::epc::EPC_BITS - from) + 16,
                        None => 128,
                    };
                    if cfg.epc_corrupt_prob > 0.0 && rng.gen_bool(cfg.epc_corrupt_prob) {
                        t += timing.success_slot_bits(reply_bits);
                        stats.epc_corruptions += 1;
                        SlotOutcome::Collision
                    } else {
                        // Reconcile the struct with the SoA view, then run
                        // the scalar path's exact ACK handshake so flag
                        // toggling and state transitions stay identical.
                        let tag = &mut tags[tag_idx];
                        tag.sync_round_state(TagState::Reply, 0, rn16);
                        let epc = tag
                            .handle_ack(rn16, cfg.query.session)
                            .expect("rn16 echo must be accepted"); // lint:allow(panic-policy): the tag just issued this RN16
                        t += timing.success_slot_bits(reply_bits);
                        stats.successes += 1;
                        reads.push(ReadEvent { tag_idx, epc, t });
                        tag.end_of_slot();
                        ws.done[p] = true;
                        ws.repliers.clear();
                        SlotOutcome::Success
                    }
                }
            }
            _ => {
                t += timing.collision_slot();
                stats.collisions += 1;
                SlotOutcome::Collision
            }
        };

        sizer.on_slot(outcome);

        // Termination: sustained silence at the smallest frame.
        if outcome == SlotOutcome::Empty && sizer.current_q() == 0 && q == 0 {
            consecutive_empty_at_q0 += 1;
            if consecutive_empty_at_q0 >= cfg.end_empty_threshold {
                break;
            }
        } else {
            consecutive_empty_at_q0 = 0;
        }

        // Advance: QueryAdjust on a Q change, else QueryRep.
        let new_q = sizer.current_q();
        if new_q != q {
            q = new_q;
            query = Query { q, ..cfg.query };
            t += timing.t_query_adjust;
            stats.adjusts += 1;
            // Every live participant re-draws through the struct handler
            // in tag-index order (workspace entries are created in index
            // order, so ascending `p` is index order). Done tags are in
            // Ready and the scalar handler no-ops them without touching
            // the RNG, so skipping them is exact.
            ws.repliers.clear();
            for p in 0..ws.idx.len() {
                if ws.done[p] {
                    continue;
                }
                let tag = &mut tags[ws.idx[p] as usize];
                tag.handle_query_adjust(&query, rng);
                ws.parked[p] = false;
                if tag.state() == TagState::Reply {
                    ws.draw[p] = 0;
                    ws.rn16[p] = tag.replying_rn16().unwrap_or(0);
                    ws.repliers.push(p as u32);
                } else {
                    ws.draw[p] = tag.slot_counter();
                }
            }
            ws.rebuild_order();
            ptr = 0;
            heard = 0;
        } else if cfg.query_rep_loss_prob > 0.0 && rng.gen_bool(cfg.query_rep_loss_prob) {
            // The QueryRep broadcast was lost: no tag heard the slot
            // boundary, so nothing parks or activates.
            stats.query_reps += 1;
        } else {
            stats.query_reps += 1;
            heard = heard.saturating_add(1);
            // Un-ACKed repliers park (scalar: Reply → Arbitrate at
            // u32::MAX, no draw); `draw` now records the park level so
            // the write-back can reproduce the scalar countdown.
            for &p in &ws.repliers {
                ws.parked[p as usize] = true;
                ws.draw[p as usize] = heard;
            }
            ws.repliers.clear();
            // The next countdown bucket activates: tags whose draw equals
            // the heard count backscatter, drawing an RN16 each — in tag
            // index order, exactly as the scalar per-tag loop does.
            while ptr < ws.order.len() {
                let p = ws.order[ptr] as usize;
                if ws.draw[p] != heard {
                    break;
                }
                ws.rn16[p] = rng.gen::<u16>();
                ws.repliers.push(p as u32);
                ptr += 1;
            }
        }
    }

    // Write the SoA view back into the structs so downstream code (and
    // the next round) sees exactly the state the scalar engine leaves.
    for p in 0..ws.idx.len() {
        if ws.done[p] {
            continue; // handle_ack/end_of_slot already left the final state
        }
        let tag = &mut tags[ws.idx[p] as usize];
        if ws.parked[p] {
            // Scalar: parked at u32::MAX, then decremented once per heard
            // QueryRep since the park.
            tag.sync_round_state(
                TagState::Arbitrate,
                u32::MAX - (heard - ws.draw[p]),
                ws.rn16[p],
            );
        } else if ws.draw[p] <= heard {
            // Activated and still backscattering when the round ended
            // (slot-cap exit mid-frame).
            tag.sync_round_state(TagState::Reply, 0, ws.rn16[p]);
        } else {
            // Still counting down. The RN16 column carries the scalar
            // struct's value (last activation this round, or the stale
            // pre-round value if the tag never activated).
            tag.sync_round_state(TagState::Arbitrate, ws.draw[p] - heard, ws.rn16[p]);
        }
    }

    RoundResult {
        duration: t,
        reads,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{InvFlag, QuerySel, Select, Session};
    use crate::epc::Epc;
    use crate::qadapt::QAdaptive;
    use crate::round::run_round;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize, seed: u64) -> Vec<TagProto> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| TagProto::new(Epc::random(&mut rng)))
            .collect()
    }

    fn open_query(q: u8) -> Query {
        Query {
            q,
            sel: QuerySel::All,
            session: Session::S0,
            target: InvFlag::A,
        }
    }

    /// Runs both engines from identical initial state and asserts the
    /// results, the final tag structs, and the RNG stream position all
    /// match byte-for-byte.
    fn assert_engines_agree(mut tags: Vec<TagProto>, cfg: &RoundConfig, q: u8, seed: u64) {
        let mut tags_ref = tags.clone();
        let mut sizer_ref = QAdaptive::new(q);
        let mut rng_ref = StdRng::seed_from_u64(seed);
        let reference = run_round(
            &mut tags_ref,
            cfg,
            &mut sizer_ref,
            &LinkTiming::r420(),
            &mut rng_ref,
        );

        let mut sizer = QAdaptive::new(q);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ws = RoundWorkspace::new();
        let batched = run_round_batched(
            &mut tags,
            cfg,
            &mut sizer,
            &LinkTiming::r420(),
            &mut rng,
            &mut ws,
        );

        assert_eq!(reference, batched, "RoundResult diverged");
        assert_eq!(tags_ref, tags, "final tag state diverged");
        // Same stream position: the next draw must match.
        assert_eq!(
            rand::Rng::gen::<u64>(&mut rng_ref),
            rand::Rng::gen::<u64>(&mut rng),
            "RNG stream position diverged"
        );
    }

    #[test]
    fn matches_reference_across_populations_and_seeds() {
        for n in [0usize, 1, 2, 3, 5, 17, 40, 100] {
            for seed in [7u64, 42, 1234] {
                let cfg = RoundConfig::new(open_query(4));
                assert_engines_agree(population(n, seed ^ 0x5EED), &cfg, 4, seed);
            }
        }
    }

    #[test]
    fn matches_reference_under_faults() {
        for (dfp, qrl, ecp) in [
            (0.3, 0.0, 0.0),
            (0.0, 0.4, 0.0),
            (0.0, 0.0, 0.5),
            (0.2, 0.2, 0.2),
            (1.0, 0.0, 1.0),
        ] {
            let mut cfg = RoundConfig::new(open_query(4));
            cfg.decode_fail_prob = dfp;
            cfg.query_rep_loss_prob = qrl;
            cfg.epc_corrupt_prob = ecp;
            assert_engines_agree(population(18, 83), &cfg, 4, 89);
        }
    }

    #[test]
    fn matches_reference_with_tight_slot_cap() {
        // max_slots exits mid-frame: active repliers and half-counted
        // waiters must write back the scalar engine's exact state.
        for cap in [1usize, 3, 5, 12] {
            let mut cfg = RoundConfig::new(open_query(3));
            cfg.max_slots = cap;
            assert_engines_agree(population(20, 11), &cfg, 3, 13);
        }
    }

    #[test]
    fn matches_reference_with_muted_and_selected_tags() {
        let mut tags = population(16, 19);
        tags[2].set_muted(true);
        tags[7].set_muted(true);
        for tag in tags.iter_mut() {
            tag.handle_select(&Select::reset_inventoried(Session::S0));
        }
        let cfg = RoundConfig::new(open_query(4));
        assert_engines_agree(tags, &cfg, 4, 23);
    }

    #[test]
    fn matches_reference_across_consecutive_rounds() {
        // Round k+1 starts from round k's final tag state, so any
        // write-back discrepancy compounds; three chained rounds with a
        // dual-target flip catch it.
        let mut tags_ref = population(25, 31);
        let mut tags = tags_ref.clone();
        let mut rng_ref = StdRng::seed_from_u64(37);
        let mut rng = StdRng::seed_from_u64(37);
        let mut ws = RoundWorkspace::new();
        let mut target = InvFlag::A;
        for _round in 0..3 {
            let cfg = RoundConfig::new(Query {
                target,
                ..open_query(4)
            });
            let mut sizer_ref = QAdaptive::new(4);
            let mut sizer = QAdaptive::new(4);
            let reference = run_round(
                &mut tags_ref,
                &cfg,
                &mut sizer_ref,
                &LinkTiming::r420(),
                &mut rng_ref,
            );
            let batched = run_round_batched(
                &mut tags,
                &cfg,
                &mut sizer,
                &LinkTiming::r420(),
                &mut rng,
                &mut ws,
            );
            assert_eq!(reference, batched);
            assert_eq!(tags_ref, tags);
            ws.recycle(batched);
            target = target.toggled();
        }
    }

    #[test]
    fn workspace_stops_allocating_after_first_round() {
        let mut tags = population(30, 41);
        let mut rng = StdRng::seed_from_u64(43);
        let mut ws = RoundWorkspace::new();
        let cfg = RoundConfig::new(open_query(4));
        let mut sizer = QAdaptive::new(4);
        let first = run_round_batched(
            &mut tags,
            &cfg,
            &mut sizer,
            &LinkTiming::r420(),
            &mut rng,
            &mut ws,
        );
        let caps_after_first = (
            ws.idx.capacity(),
            ws.order.capacity(),
            ws.repliers.capacity(),
        );
        let reads_cap = first.reads.capacity();
        ws.recycle(first);
        assert!(ws.reads.capacity() >= reads_cap, "reads buffer recycled");
        for tag in tags.iter_mut() {
            tag.handle_select(&Select::reset_inventoried(Session::S0));
        }
        let mut sizer = QAdaptive::new(4);
        let second = run_round_batched(
            &mut tags,
            &cfg,
            &mut sizer,
            &LinkTiming::r420(),
            &mut rng,
            &mut ws,
        );
        assert_eq!(second.reads.len(), 30);
        assert_eq!(
            (
                ws.idx.capacity(),
                ws.order.capacity(),
                ws.repliers.capacity(),
            ),
            caps_after_first,
            "steady-state round grew a workspace buffer"
        );
    }

    #[test]
    fn empty_population_terminates_like_reference() {
        let cfg = RoundConfig::new(open_query(4));
        assert_engines_agree(Vec::new(), &cfg, 4, 1);
    }
}
