//! # tagwatch-obs — trace analysis and regression gating
//!
//! The offline half of the telemetry story: `tagwatch-telemetry` streams
//! events out of a run, this crate turns the stream back into answers.
//!
//! Three layers, bottom-up:
//!
//! * [`model`] — parses JSONL (or in-memory events) into a validated
//!   [`model::Trace`]: the cycle → phase1/phase2 → round span tree plus
//!   counter/gauge/observation series and per-tag moments. Malformed
//!   streams are rejected with [`model::TraceError`]s that name the
//!   offending line.
//! * [`analyze`] — derives a [`analyze::RunReport`] from a trace: per-tag
//!   IRR and starvation windows, mobile-detector confusion against
//!   `truth.mobile` ground truth, Q-adaptation oscillation, per-phase
//!   duty cycles and slot breakdowns, and mask-cover efficiency.
//! * [`diff`] / [`bench`] — compare two runs ([`diff::DiffReport`]) under
//!   a relative threshold with per-metric gating directions, and persist
//!   schema-versioned [`bench::BenchSnapshot`]s (`BENCH_<n>.json`) that
//!   `ci.sh --obs` diffs against a committed baseline.
//! * [`export`] / [`hotspots`] / [`trend`] — the profiling layer:
//!   Chrome/Perfetto `trace_event` and flamegraph collapsed-stack
//!   exporters over the span tree (both clocks), a per-family hotspot
//!   report with a measured telemetry self-overhead estimate, and trend
//!   analysis across a `BENCH_*.json` series.
//! * [`compare`] — variance-aware A/B performance comparison: proves two
//!   runs did byte-identical sim work (seed, scale, every counter —
//!   including the deterministic `perf.work.*` work counters), then
//!   judges wall-side rate deltas against the trial stddev noise band.
//!
//! The `obs` binary (`obs report` / `obs diff` / `obs export` /
//! `obs flame` / `obs hotspots` / `obs trend` / `obs compare`) is a thin
//! shell over these layers.

#![forbid(unsafe_code)]
pub mod analyze;
pub mod bench;
pub mod compare;
pub mod diff;
pub mod export;
pub mod hotspots;
pub mod model;
pub mod trend;

pub use analyze::{AnalyzeConfig, FaultReport, FaultWindow, RunReport};
pub use bench::{BenchSnapshot, BENCH_SCHEMA_VERSION};
pub use compare::CompareReport;
pub use diff::{DiffReport, Direction};
pub use export::{chrome_trace, flame_lines};
pub use hotspots::HotspotReport;
pub use model::{Trace, TraceError};
pub use trend::TrendReport;
