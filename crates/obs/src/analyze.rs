//! Analyzers: a validated [`Trace`] becomes a [`RunReport`] — per-tag IRR
//! and starvation, detector confusion against ground truth, Q-adaptation
//! diagnostics, per-phase duty cycles and slot breakdowns, and mask-cover
//! efficiency. Everything here is derived purely from the event stream, so
//! the same numbers come out of a live `MemorySink` and a JSONL file read
//! back days later.
//!
//! The verdict types and the per-analyzer accumulation live in
//! `tagwatch-monitor` ([`tagwatch_monitor::online`]); this module replays
//! a closed [`Trace`] through those same accumulators, so the batch
//! report and a live [`tagwatch_monitor::OnlineAnalyzers`] fed the same
//! events agree byte-for-byte by construction.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::Serialize;
use tagwatch::metrics::{mean, percentile};
use tagwatch_monitor::online::{ConfusionAccum, FaultAccum, QAccum, TagAccum};
pub use tagwatch_monitor::verdict::{
    ConfusionSummary, FaultReport, FaultWindow, QDiagnostics, StarvationEvent, StarvationReport,
    TagStats, TagSummary,
};
use tagwatch_monitor::verdict::{ASSESS_MOBILE, FAULT_COUNTERS, READ_PHASE1, READ_PHASE2};

use crate::model::{CycleNode, RoundStats, Trace};

/// Knobs for trace analysis.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeConfig {
    /// A gap between consecutive reads of one tag longer than this many
    /// simulated seconds counts as a starvation window (§2.2's fairness
    /// concern: rate adaptation must not starve stationary tags).
    pub starvation_gap: f64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            starvation_gap: 10.0,
        }
    }
}

/// Robust percentile: `None` on an empty sample instead of a panic.
fn pct(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(percentile(samples, p))
    }
}

/// Summary statistics over one duration (or other scalar) sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, serde::Deserialize)]
pub struct DurationStats {
    pub count: usize,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

impl DurationStats {
    /// `None` for an empty sample — a stats block of zeros would read as
    /// "measured and instant" rather than "absent".
    pub fn from_samples(samples: &[f64]) -> Option<DurationStats> {
        Some(DurationStats {
            count: samples.len(),
            mean: mean(samples),
            p50: pct(samples, 50.0)?,
            p95: pct(samples, 95.0)?,
            p99: pct(samples, 99.0)?,
        })
    }
}

/// Slot-outcome totals with derived rates.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SlotTotals {
    pub slots: f64,
    pub empties: u64,
    pub collisions: u64,
    pub successes: u64,
    pub decode_failures: u64,
    pub success_rate: f64,
    pub collision_rate: f64,
}

impl SlotTotals {
    fn from_stats(s: &RoundStats) -> SlotTotals {
        let outcomes = (s.empties + s.collisions + s.successes + s.decode_failures) as f64;
        let rate = |n: u64| {
            if outcomes > 0.0 {
                n as f64 / outcomes
            } else {
                0.0
            }
        };
        SlotTotals {
            slots: s.slots,
            empties: s.empties,
            collisions: s.collisions,
            successes: s.successes,
            decode_failures: s.decode_failures,
            success_rate: rate(s.successes),
            collision_rate: rate(s.collisions),
        }
    }
}

/// Where one phase's air time went.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseDuty {
    pub phase: String,
    pub rounds: usize,
    /// Simulated seconds spent in this phase, summed over cycles.
    pub sim_seconds: f64,
    /// Fraction of total cycle air time.
    pub fraction: f64,
    /// Tag reports delivered by this phase.
    pub reports: u64,
    /// Reports per second of total trace window (aggregate reading rate).
    pub irr: f64,
    pub slots: SlotTotals,
}

/// How selective Phase II reads land: on intended targets (the cycle's
/// mobile set) or as collateral from mask cover.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CoverEfficiency {
    /// Phase II reads of tags the cycle flagged mobile.
    pub target_reads: usize,
    /// Phase II reads of everyone else swept up by the cover masks.
    pub collateral_reads: usize,
    /// target / (target + collateral); 0 with no Phase II reads.
    pub efficiency: f64,
}

/// Scheduler mode mix over the run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ScheduleSummary {
    pub selective: u64,
    pub read_all: u64,
    pub read_all_no_targets: u64,
    pub read_all_too_many_targets: u64,
    pub read_all_configured: u64,
    pub masks: u64,
    /// selective / (selective + read_all); 0 with no scheduled cycles.
    pub selective_fraction: f64,
}

/// Everything the analyzers derive from one trace.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    pub events: usize,
    pub cycles: usize,
    pub sim_seconds: f64,
    /// Span-duration stats keyed `cycle` / `phase1` / `phase2` / `round`,
    /// plus wall-clock `compute`.
    pub durations: BTreeMap<String, DurationStats>,
    pub tags: TagSummary,
    pub starvation: StarvationReport,
    /// Present only when the trace carries `truth.mobile` annotations.
    pub confusion: Option<ConfusionSummary>,
    pub q: QDiagnostics,
    pub duty: Vec<PhaseDuty>,
    pub cover: CoverEfficiency,
    pub schedule: ScheduleSummary,
    /// Present only when the trace carries fault-injection markers or
    /// counters (clean runs stay clean).
    pub fault: Option<FaultReport>,
    /// Round metrics the builder could not attach to any round span.
    pub unattributed_rounds: bool,
}

impl RunReport {
    /// Runs every analyzer over a validated trace.
    pub fn analyze(trace: &Trace, cfg: &AnalyzeConfig) -> RunReport {
        let sim_seconds = trace.sim_seconds();
        RunReport {
            events: trace.events_total,
            cycles: trace.cycles.len(),
            sim_seconds,
            durations: duration_stats(trace),
            tags: tag_summary(trace, sim_seconds),
            starvation: starvation(trace, cfg.starvation_gap),
            confusion: confusion(trace),
            q: q_diagnostics(trace),
            duty: duty_cycles(trace, sim_seconds),
            cover: cover_efficiency(trace),
            schedule: schedule_summary(trace),
            fault: fault_report(trace, sim_seconds),
            unattributed_rounds: trace.unattributed != RoundStats::default(),
        }
    }

    /// Flattens the report into `name → value` for threshold diffing.
    /// Key families: `irr.*`, `dur.*`, `duty.*`, `slots.*`,
    /// `confusion.*`, `starvation.*`, `q.*`, `cover.*`, `schedule.*`,
    /// `wall.*`, `reads.*`, `cycles`.
    pub fn metric_map(&self) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("cycles".into(), self.cycles as f64);
        m.insert("reads.total".into(), self.tags.reads_total as f64);
        m.insert("irr.tag.mean".into(), self.tags.irr_mean);
        m.insert("irr.tag.min".into(), self.tags.irr_min);
        for (name, d) in &self.durations {
            let prefix = if name == "compute" { "wall" } else { "dur" };
            m.insert(format!("{prefix}.{name}.p50"), d.p50);
            m.insert(format!("{prefix}.{name}.p95"), d.p95);
            m.insert(format!("{prefix}.{name}.p99"), d.p99);
        }
        for d in &self.duty {
            m.insert(format!("irr.{}", d.phase), d.irr);
            m.insert(format!("duty.{}", d.phase), d.fraction);
            m.insert(
                format!("slots.{}.success_rate", d.phase),
                d.slots.success_rate,
            );
            m.insert(
                format!("slots.{}.collision_rate", d.phase),
                d.slots.collision_rate,
            );
        }
        if let Some(c) = &self.confusion {
            m.insert("confusion.tpr".into(), c.tpr);
            m.insert("confusion.fpr".into(), c.fpr);
            m.insert("confusion.accuracy".into(), c.accuracy);
        }
        m.insert(
            "starvation.tags".into(),
            self.starvation.starved_tags as f64,
        );
        m.insert(
            "starvation.events".into(),
            self.starvation.events.len() as f64,
        );
        m.insert("q.mean".into(), self.q.mean_q);
        m.insert("q.oscillation".into(), self.q.oscillation);
        m.insert("cover.efficiency".into(), self.cover.efficiency);
        m.insert(
            "schedule.selective_fraction".into(),
            self.schedule.selective_fraction,
        );
        if let Some(fr) = &self.fault {
            m.insert("fault.windows".into(), fr.windows.len() as f64);
            m.insert("fault.faulted_seconds".into(), fr.faulted_seconds);
            m.insert("fault.irr_faulted".into(), fr.irr_faulted);
            m.insert("fault.irr_clean".into(), fr.irr_clean);
            m.insert("fault.degradation".into(), fr.degradation);
            m.insert("fault.restarts".into(), fr.reader_restarts as f64);
        }
        m
    }
}

fn duration_stats(trace: &Trace) -> BTreeMap<String, DurationStats> {
    let mut samples: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for c in &trace.cycles {
        samples.entry("cycle").or_default().push(c.span.duration);
        for (key, p) in [("phase1", &c.phase1), ("phase2", &c.phase2)] {
            if let Some(p) = p {
                samples.entry(key).or_default().push(p.span.duration);
            }
        }
        if let Some(s) = &c.compute {
            samples.entry("compute").or_default().push(s.duration);
        }
    }
    for r in trace.all_rounds() {
        samples.entry("round").or_default().push(r.span.duration);
    }
    samples
        .into_iter()
        .filter_map(|(k, v)| DurationStats::from_samples(&v).map(|d| (k.to_string(), d)))
        .collect()
}

/// Shared per-tag read-timeline accumulator, fed from `read.*` events.
fn tag_accum(trace: &Trace) -> TagAccum {
    let mut acc = TagAccum::default();
    for t in &trace.tags {
        if t.rec.name == READ_PHASE1 || t.rec.name == READ_PHASE2 {
            acc.push(t.rec.epc, t.rec.t);
        }
    }
    acc
}

fn tag_summary(trace: &Trace, sim_seconds: f64) -> TagSummary {
    tag_accum(trace).summary(sim_seconds)
}

/// Internal read gaps above the threshold. Gaps are measured between
/// consecutive reads of the same tag — the window where the tag was
/// demonstrably present yet unread — so a tag that left the scene does
/// not register a phantom starvation tail.
fn starvation(trace: &Trace, gap_threshold: f64) -> StarvationReport {
    tag_accum(trace).starvation(gap_threshold)
}

/// Tags attributed to each cycle by stream position: a cycle's tag events
/// are emitted right after its span closes and before the next cycle's.
/// Returns, per cycle, the set of EPCs for each tag-event name.
fn tags_by_cycle(trace: &Trace) -> Vec<(&CycleNode, BTreeMap<&str, BTreeSet<u128>>)> {
    let mut out: Vec<(&CycleNode, BTreeMap<&str, BTreeSet<u128>>)> =
        trace.cycles.iter().map(|c| (c, BTreeMap::new())).collect();
    if out.is_empty() {
        return out;
    }
    for t in &trace.tags {
        // The last cycle whose span line precedes this tag event.
        let idx = match out.iter().rposition(|(c, _)| c.line < t.line) {
            Some(i) => i,
            None => continue, // pre-run annotation (e.g. truth.mobile)
        };
        out[idx]
            .1
            .entry(t.rec.name.as_str())
            .or_default()
            .insert(t.rec.epc);
    }
    out
}

fn confusion(trace: &Trace) -> Option<ConfusionSummary> {
    // Replay in stream order: a cycle's tag events land after its span
    // line and before the next cycle's, so opening cycles as their line
    // passes reproduces the live per-cycle bucketing exactly.
    let mut acc = ConfusionAccum::default();
    let mut cycles = trace.cycles.iter().peekable();
    for t in &trace.tags {
        while cycles.peek().is_some_and(|c| c.line < t.line) {
            cycles.next();
            acc.cycle_open();
        }
        acc.tag(&t.rec.name, t.rec.epc);
    }
    for _ in cycles {
        acc.cycle_open();
    }
    acc.finalize()
}

fn q_diagnostics(trace: &Trace) -> QDiagnostics {
    let mut acc = QAccum::default();
    for r in trace.all_rounds() {
        acc.push_round(r.stats.q_final);
    }
    acc.set_adjusts_total(trace.counter("round.adjusts"));
    acc.finalize()
}

fn duty_cycles(trace: &Trace, sim_seconds: f64) -> Vec<PhaseDuty> {
    let cycle_air: f64 = trace.cycles.iter().map(|c| c.span.duration).sum();
    let mut out = Vec::new();
    for (key, reports_counter, is_phase2) in [
        ("phase1", "phase1.reports", false),
        ("phase2", "phase2.reports", true),
    ] {
        let mut sim = 0.0;
        let mut rounds = 0;
        let mut stats = RoundStats::default();
        for c in &trace.cycles {
            let phase = if is_phase2 {
                c.phase2.as_ref()
            } else {
                c.phase1.as_ref()
            };
            if let Some(p) = phase {
                sim += p.span.duration;
                rounds += p.rounds.len();
                stats.absorb(&p.stats());
            }
        }
        let reports = trace.counter(reports_counter);
        out.push(PhaseDuty {
            phase: key.to_string(),
            rounds,
            sim_seconds: sim,
            fraction: if cycle_air > 0.0 {
                sim / cycle_air
            } else {
                0.0
            },
            reports,
            irr: if sim_seconds > 0.0 {
                reports as f64 / sim_seconds
            } else {
                0.0
            },
            slots: SlotTotals::from_stats(&stats),
        });
    }
    out
}

fn cover_efficiency(trace: &Trace) -> CoverEfficiency {
    let mut target = 0usize;
    let mut collateral = 0usize;
    // Per cycle: phase2 reads of that cycle's mobile set vs everyone else.
    // Counted over tag *events* (multiplicity matters — a collateral tag
    // read five times costs five reports), so recount from the raw stream
    // with the per-cycle mobile sets.
    let by_cycle = tags_by_cycle(trace);
    let mut cycle_ranges: Vec<(usize, &BTreeMap<&str, BTreeSet<u128>>)> =
        by_cycle.iter().map(|(c, t)| (c.line, t)).collect();
    cycle_ranges.sort_by_key(|(line, _)| *line);
    for t in &trace.tags {
        if t.rec.name != READ_PHASE2 {
            continue;
        }
        let Some((_, tags)) = cycle_ranges.iter().rev().find(|(line, _)| *line < t.line) else {
            continue;
        };
        let is_target = tags
            .get(ASSESS_MOBILE)
            .is_some_and(|m| m.contains(&t.rec.epc));
        if is_target {
            target += 1;
        } else {
            collateral += 1;
        }
    }
    let total = target + collateral;
    CoverEfficiency {
        target_reads: target,
        collateral_reads: collateral,
        efficiency: if total > 0 {
            target as f64 / total as f64
        } else {
            0.0
        },
    }
}

/// Pairs fault window-edge markers and splits the trace's reading rate
/// into under-injection and clean time. Returns `None` for traces with
/// no trace of fault activity at all, so clean-run reports are
/// unchanged by the fault machinery's existence.
fn fault_report(trace: &Trace, sim_seconds: f64) -> Option<FaultReport> {
    let mut acc = FaultAccum::default();
    for t in &trace.tags {
        if t.rec.name == READ_PHASE1 || t.rec.name == READ_PHASE2 {
            acc.read(t.rec.t);
        } else {
            acc.marker(&t.rec.name, t.rec.epc, t.rec.t);
        }
    }
    for name in FAULT_COUNTERS {
        acc.counter(name, trace.counter(name));
    }
    acc.finalize(sim_seconds)
}

fn schedule_summary(trace: &Trace) -> ScheduleSummary {
    let selective = trace.counter("schedule.selective");
    let read_all = trace.counter("schedule.read_all");
    let scheduled = selective + read_all;
    ScheduleSummary {
        selective,
        read_all,
        read_all_no_targets: trace.counter("schedule.read_all.no_targets"),
        read_all_too_many_targets: trace.counter("schedule.read_all.too_many_targets"),
        read_all_configured: trace.counter("schedule.read_all.configured"),
        masks: trace.counter("cycle.masks"),
        selective_fraction: if scheduled > 0 {
            selective as f64 / scheduled as f64
        } else {
            0.0
        },
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run report")?;
        writeln!(
            f,
            "  events {}  cycles {}  sim {:.3} s",
            self.events, self.cycles, self.sim_seconds
        )?;
        if !self.durations.is_empty() {
            writeln!(f, "  durations (s)")?;
            writeln!(
                f,
                "    {:<10} {:>7} {:>12} {:>12} {:>12} {:>12}",
                "span", "count", "mean", "p50", "p95", "p99"
            )?;
            for (name, d) in &self.durations {
                writeln!(
                    f,
                    "    {:<10} {:>7} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
                    name, d.count, d.mean, d.p50, d.p95, d.p99
                )?;
            }
        }
        for d in &self.duty {
            writeln!(
                f,
                "  {}: {} rounds, {:.3} s air ({:.1}% of cycles), {} reports, \
                 {:.2} reports/s, success {:.1}%, collision {:.1}%",
                d.phase,
                d.rounds,
                d.sim_seconds,
                d.fraction * 100.0,
                d.reports,
                d.irr,
                d.slots.success_rate * 100.0,
                d.slots.collision_rate * 100.0
            )?;
        }
        writeln!(
            f,
            "  tags: {} seen, {} reads, IRR mean {:.3}/s min {:.3}/s max {:.3}/s",
            self.tags.tags,
            self.tags.reads_total,
            self.tags.irr_mean,
            self.tags.irr_min,
            self.tags.irr_max
        )?;
        writeln!(
            f,
            "  starvation (> {:.1} s): {} tags, {} windows",
            self.starvation.gap_threshold,
            self.starvation.starved_tags,
            self.starvation.events.len()
        )?;
        for e in self.starvation.events.iter().take(5) {
            writeln!(
                f,
                "    {} unread {:.2} s  [{:.2}, {:.2}]",
                e.epc, e.gap, e.from, e.to
            )?;
        }
        if self.starvation.events.len() > 5 {
            writeln!(f, "    … {} more", self.starvation.events.len() - 5)?;
        }
        match &self.confusion {
            Some(c) => writeln!(
                f,
                "  detector: TPR {:.3}  FPR {:.3}  accuracy {:.3}  \
                 (tp {} fp {} tn {} fn {}, {} cycles)",
                c.tpr, c.fpr, c.accuracy, c.tp, c.fp, c.tn, c.fn_, c.cycles
            )?,
            None => writeln!(f, "  detector: no truth.mobile annotations in trace")?,
        }
        writeln!(
            f,
            "  q: {} rounds, mean {:.2}, {} reversals (oscillation {:.2}), \
             {:.2} adjusts/round",
            self.q.rounds,
            self.q.mean_q,
            self.q.reversals,
            self.q.oscillation,
            self.q.adjusts_per_round
        )?;
        writeln!(
            f,
            "  cover: {} target + {} collateral phase2 reads ({:.1}% efficient)",
            self.cover.target_reads,
            self.cover.collateral_reads,
            self.cover.efficiency * 100.0
        )?;
        writeln!(
            f,
            "  schedule: {} selective / {} read-all ({:.1}% selective), {} masks",
            self.schedule.selective,
            self.schedule.read_all,
            self.schedule.selective_fraction * 100.0,
            self.schedule.masks
        )?;
        if let Some(fr) = &self.fault {
            writeln!(
                f,
                "  faults: {} windows, {:.3} s injected, IRR {:.2}/s faulted \
                 vs {:.2}/s clean ({:.0}% of clean), {} restarts",
                fr.windows.len(),
                fr.faulted_seconds,
                fr.irr_faulted,
                fr.irr_clean,
                fr.degradation * 100.0,
                fr.reader_restarts
            )?;
            for w in fr.windows.iter().take(8) {
                writeln!(
                    f,
                    "    [{:.2}, {:.2}{}] {:<16} {} reads ({:.2}/s)",
                    w.start,
                    w.end,
                    if w.closed { "" } else { "…" },
                    w.slug,
                    w.reads,
                    w.irr
                )?;
            }
            if fr.windows.len() > 8 {
                writeln!(f, "    … {} more", fr.windows.len() - 8)?;
            }
        }
        if self.unattributed_rounds {
            writeln!(f, "  note: round metrics present with no round span")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_monitor::verdict::TRUTH_MOBILE;
    use tagwatch_telemetry::{
        ClockKind, CounterRecord, Event, ObserveRecord, SpanRecord, TagRecord,
    };

    fn span(name: &str, id: u64, parent: Option<u64>, start: f64, dur: f64) -> Event {
        Event::Span(SpanRecord {
            name: name.into(),
            id,
            parent,
            start,
            duration: dur,
            clock: ClockKind::Sim,
        })
    }

    fn counter(name: &str, delta: u64, total: u64) -> Event {
        Event::Counter(CounterRecord {
            name: name.into(),
            delta,
            total,
        })
    }

    fn observe(name: &str, value: f64) -> Event {
        Event::Observe(ObserveRecord {
            name: name.into(),
            value,
        })
    }

    fn tag(name: &str, epc: u128, t: f64) -> Event {
        Event::Tag(TagRecord {
            name: name.into(),
            epc,
            t,
        })
    }

    /// Two cycles of 10 s each. Tag 1 is truly mobile and detected in both
    /// cycles; tag 2 is stationary but falsely flagged in cycle 2; tag 3
    /// is stationary, read only in phase1, and starved between reads.
    fn synthetic() -> Vec<Event> {
        let mut ev = vec![tag(TRUTH_MOBILE, 1, 0.0)];
        let mut next_id = 1;
        // Running counter totals (deltas 3,2 per cycle → 3,5,8,10).
        let succ_totals = [[3u64, 5], [8, 10]];
        for k in 0..2u64 {
            let t0 = k as f64 * 10.0;
            let round_p1 = next_id;
            let p1 = next_id + 1;
            let round_p2 = next_id + 2;
            let p2 = next_id + 3;
            let cycle = next_id + 4;
            next_id += 5;
            ev.push(counter("round.successes", 3, succ_totals[k as usize][0]));
            ev.push(observe("round.slots", 8.0));
            ev.push(observe("round.q_final", if k == 0 { 3.0 } else { 4.0 }));
            ev.push(span("round", round_p1, Some(p1), t0, 2.0));
            ev.push(span("phase1", p1, Some(cycle), t0, 2.0));
            ev.push(counter("round.successes", 2, succ_totals[k as usize][1]));
            ev.push(observe("round.slots", 4.0));
            ev.push(observe("round.q_final", if k == 0 { 2.0 } else { 5.0 }));
            ev.push(span("round", round_p2, Some(p2), t0 + 2.0, 8.0));
            ev.push(span("phase2", p2, Some(cycle), t0 + 2.0, 8.0));
            ev.push(span("cycle", cycle, None, t0, 10.0));
            ev.push(counter("phase1.reports", 3, 3 * (k + 1)));
            ev.push(counter("phase2.reports", 2, 2 * (k + 1)));
            ev.push(counter("schedule.selective", 1, k + 1));
            // census: all three tags each cycle
            ev.push(tag(READ_PHASE1, 1, t0 + 0.5));
            ev.push(tag(READ_PHASE1, 2, t0 + 0.6));
            ev.push(tag(READ_PHASE1, 3, t0 + 0.7));
            // detector: tag 1 both cycles, tag 2 only in cycle 2
            ev.push(tag(ASSESS_MOBILE, 1, t0 + 2.0));
            if k == 1 {
                ev.push(tag(ASSESS_MOBILE, 2, t0 + 2.0));
            }
            // phase2 reads tags 1 and 2 each cycle. Tag 2 is collateral
            // in cycle 1 but a (falsely flagged) target in cycle 2 — the
            // cover analyzer scores schedule intent, not ground truth.
            ev.push(tag(READ_PHASE2, 1, t0 + 4.0));
            ev.push(tag(READ_PHASE2, 2, t0 + 5.0));
        }
        ev
    }

    fn report() -> RunReport {
        let trace = Trace::from_events(&synthetic()).unwrap();
        RunReport::analyze(&trace, &AnalyzeConfig::default())
    }

    #[test]
    fn durations_and_duty_cover_both_phases() {
        let r = report();
        assert_eq!(r.cycles, 2);
        assert!((r.sim_seconds - 20.0).abs() < 1e-9);
        assert_eq!(r.durations["cycle"].count, 2);
        assert!((r.durations["cycle"].p50 - 10.0).abs() < 1e-9);
        assert_eq!(r.durations["round"].count, 4);
        let p1 = &r.duty[0];
        let p2 = &r.duty[1];
        assert_eq!((p1.phase.as_str(), p2.phase.as_str()), ("phase1", "phase2"));
        assert!((p1.fraction - 0.2).abs() < 1e-9);
        assert!((p2.fraction - 0.8).abs() < 1e-9);
        assert_eq!(p1.reports, 6);
        assert_eq!(p2.reports, 4);
        assert_eq!(p1.slots.successes, 6);
        assert!((p1.slots.success_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_tag_irr_and_starvation() {
        let r = report();
        assert_eq!(r.tags.tags, 3);
        assert_eq!(r.tags.reads_total, 10);
        // Tag 1: 4 reads over 20 s.
        let t1 = r.tags.per_tag.iter().find(|t| t.epc == "0x1").unwrap();
        assert!((t1.irr - 0.2).abs() < 1e-9);
        // Tag 3 read only at 0.7 and 10.7 — one 10 s gap above a 9 s bar.
        let trace = Trace::from_events(&synthetic()).unwrap();
        let starve = starvation(&trace, 9.0);
        assert_eq!(starve.starved_tags, 1);
        assert_eq!(starve.events.len(), 1);
        assert_eq!(starve.events[0].epc, "0x3");
        assert!((starve.events[0].gap - 10.0).abs() < 1e-9);
        // Default 10 s bar: the 10.0 s gap is not strictly greater.
        assert_eq!(r.starvation.events.len(), 0);
    }

    #[test]
    fn confusion_counts_per_cycle_census() {
        let r = report();
        let c = r.confusion.expect("truth annotations present");
        // Cycle 1: tag1 tp, tag2 tn, tag3 tn. Cycle 2: tag1 tp, tag2 fp,
        // tag3 tn.
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 3, 0));
        assert!((c.tpr - 1.0).abs() < 1e-9);
        assert!((c.fpr - 0.25).abs() < 1e-9);
        assert_eq!(c.cycles, 2);
    }

    #[test]
    fn q_oscillation_counts_reversals() {
        let r = report();
        // Q series 3, 2, 4, 5 → deltas -1, +2, +1 → one reversal over two
        // delta pairs.
        assert_eq!(r.q.rounds, 4);
        assert_eq!(r.q.reversals, 1);
        assert!((r.q.oscillation - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cover_efficiency_splits_target_and_collateral() {
        let r = report();
        // Cycle 1: tag1 target, tag2 collateral. Cycle 2: both reads hit
        // assessed-mobile tags, so both count as target.
        assert_eq!(r.cover.target_reads, 3);
        assert_eq!(r.cover.collateral_reads, 1);
        assert!((r.cover.efficiency - 0.75).abs() < 1e-9);
    }

    #[test]
    fn metric_map_exposes_gateable_keys() {
        let r = report();
        let m = r.metric_map();
        assert!(m.contains_key("irr.phase1"));
        assert!(m.contains_key("irr.phase2"));
        assert!(m.contains_key("dur.cycle.p50"));
        assert!(m.contains_key("dur.round.p95"));
        assert!(m.contains_key("confusion.tpr"));
        assert!(m.contains_key("q.oscillation"));
        assert!((m["irr.phase1"] - 6.0 / 20.0).abs() < 1e-9);
        assert!((m["schedule.selective_fraction"] - 1.0).abs() < 1e-9);
        // Sanity: the human rendering mentions the same data.
        let text = r.to_string();
        assert!(text.contains("phase2"), "{text}");
        assert!(text.contains("detector"), "{text}");
    }

    #[test]
    fn fault_markers_become_attributed_windows() {
        // One 10 s cycle; reads at 1, 3, 3.5, 5, 7, 9 s; a burst-noise
        // window [2, 4) covering two of them.
        let mut ev = vec![span("cycle", 1, None, 0.0, 10.0)];
        for (i, t) in [1.0, 3.0, 3.5, 5.0, 7.0, 9.0].iter().enumerate() {
            ev.push(tag(READ_PHASE1, i as u128 + 1, *t));
        }
        ev.push(tag("fault.open.burst_noise", 0, 2.0));
        ev.push(tag("fault.close.burst_noise", 0, 4.0));
        let trace = Trace::from_events(&ev).unwrap();
        let r = RunReport::analyze(&trace, &AnalyzeConfig::default());
        let fr = r.fault.as_ref().expect("fault markers present");
        assert_eq!(fr.windows.len(), 1);
        let w = &fr.windows[0];
        assert_eq!(w.slug, "burst_noise");
        assert!(w.closed);
        assert!((w.start - 2.0).abs() < 1e-9 && (w.end - 4.0).abs() < 1e-9);
        assert_eq!(w.reads, 2);
        assert!((w.irr - 1.0).abs() < 1e-9);
        assert!((fr.faulted_seconds - 2.0).abs() < 1e-9);
        assert!((fr.irr_faulted - 1.0).abs() < 1e-9);
        assert!((fr.irr_clean - 0.5).abs() < 1e-9);
        assert!((fr.degradation - 2.0).abs() < 1e-9);
        let m = r.metric_map();
        assert!((m["fault.windows"] - 1.0).abs() < 1e-9);
        assert!((m["fault.degradation"] - 2.0).abs() < 1e-9);
        assert!(r.to_string().contains("burst_noise"));
    }

    #[test]
    fn unclosed_fault_window_extends_to_trace_end() {
        let ev = vec![
            span("cycle", 1, None, 0.0, 10.0),
            tag(READ_PHASE1, 1, 8.0),
            tag("fault.open.antenna_outage", 3, 6.0),
        ];
        let trace = Trace::from_events(&ev).unwrap();
        let r = RunReport::analyze(&trace, &AnalyzeConfig::default());
        let fr = r.fault.expect("open marker present");
        let w = &fr.windows[0];
        assert_eq!(w.event_idx, 3);
        assert!(!w.closed);
        assert!((w.end - 10.0).abs() < 1e-9, "end = {}", w.end);
        assert_eq!(w.reads, 1);
        assert!((fr.faulted_seconds - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_fault_windows_merge_for_the_union_split() {
        let ev = vec![
            span("cycle", 1, None, 0.0, 10.0),
            tag("fault.open.select_loss", 0, 1.0),
            tag("fault.close.select_loss", 0, 5.0),
            tag("fault.open.query_rep_loss", 1, 4.0),
            tag("fault.close.query_rep_loss", 1, 6.0),
        ];
        let trace = Trace::from_events(&ev).unwrap();
        let r = RunReport::analyze(&trace, &AnalyzeConfig::default());
        let fr = r.fault.expect("markers present");
        assert_eq!(fr.windows.len(), 2);
        // [1,5) ∪ [4,6) = [1,6): 5 s faulted, not 6.
        assert!((fr.faulted_seconds - 5.0).abs() < 1e-9);
    }

    /// The byte-equality contract behind `obs tail`: a closed trace
    /// replayed event-by-event through the online analyzers must yield
    /// exactly the batch report's verdicts — not approximately, but as
    /// identical JSON, since `ci.sh --monitor` compares serializations.
    fn assert_online_matches_batch(events: &[Event]) {
        let trace = Trace::from_events(events).unwrap();
        let batch = RunReport::analyze(&trace, &AnalyzeConfig::default());
        let mut online = tagwatch_monitor::OnlineAnalyzers::default();
        for e in events {
            online.push(e);
        }
        let live = online.verdicts();
        fn js<T: Serialize>(v: &T) -> String {
            serde_json::to_string(v).unwrap()
        }
        assert_eq!(js(&live.tags), js(&batch.tags), "tag summary diverged");
        assert_eq!(
            js(&live.starvation),
            js(&batch.starvation),
            "starvation diverged"
        );
        assert_eq!(
            js(&live.confusion),
            js(&batch.confusion),
            "confusion diverged"
        );
        assert_eq!(js(&live.q), js(&batch.q), "q diagnostics diverged");
        assert_eq!(js(&live.fault), js(&batch.fault), "fault report diverged");
        assert!(
            (live.sim_seconds - batch.sim_seconds).abs() < 1e-12,
            "sim window diverged: {} vs {}",
            live.sim_seconds,
            batch.sim_seconds
        );
    }

    #[test]
    fn online_matches_batch_on_the_synthetic_trace() {
        assert_online_matches_batch(&synthetic());
    }

    #[test]
    fn online_matches_batch_on_fault_traces() {
        let mut ev = vec![span("cycle", 1, None, 0.0, 10.0)];
        for (i, t) in [1.0, 3.0, 3.5, 5.0, 7.0, 9.0].iter().enumerate() {
            ev.push(tag(READ_PHASE1, i as u128 + 1, *t));
        }
        ev.push(tag("fault.open.burst_noise", 0, 2.0));
        ev.push(tag("fault.close.burst_noise", 0, 4.0));
        ev.push(tag("fault.open.antenna_outage", 1, 6.0)); // never closes
        ev.push(counter("fault.selects_lost", 2, 2));
        assert_online_matches_batch(&ev);
    }

    #[test]
    fn online_matches_batch_with_alarm_tags_interleaved() {
        // Watchdog feedback events must be verdict-neutral on both sides.
        let mut ev = synthetic();
        ev.push(tag("alarm.stale", 0, 20.0));
        assert_online_matches_batch(&ev);
    }

    #[test]
    fn report_without_truth_or_tags_degrades_gracefully() {
        let ev = vec![span("cycle", 1, None, 0.0, 1.0)];
        let trace = Trace::from_events(&ev).unwrap();
        let r = RunReport::analyze(&trace, &AnalyzeConfig::default());
        assert!(r.confusion.is_none());
        assert!(r.fault.is_none(), "clean traces carry no fault section");
        assert_eq!(r.tags.tags, 0);
        assert_eq!(r.cover.target_reads + r.cover.collateral_reads, 0);
        let m = r.metric_map();
        assert!(!m.contains_key("confusion.tpr"));
        // No phase spans → duty entries exist with zeroed stats.
        assert_eq!(r.duty.len(), 2);
        assert_eq!(r.duty[0].rounds, 0);
    }
}
