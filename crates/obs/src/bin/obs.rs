//! The trace-analysis CLI.
//!
//! ```text
//! obs report <run.jsonl> [--json] [--starvation-gap SECS]
//! obs diff <baseline> <current> [--threshold FRAC] [--json]
//! obs export --chrome <run.jsonl> [-o out.json]
//! obs flame <run.jsonl> [--clock sim|wall] [-o out.folded]
//! obs hotspots <run.jsonl>
//! obs trend <BENCH_1.json> <BENCH_2.json> [...]
//! ```
//!
//! `report` validates a telemetry JSONL trace and prints the full
//! [`RunReport`] (human table, or JSON with `--json`). `diff` compares
//! two runs — each side is either a trace or a `BENCH_<n>.json` snapshot
//! (auto-detected) — and exits 2 when a gated metric regressed beyond the
//! relative threshold, which is what `ci.sh` keys on; a vacuous snapshot
//! (no comparable aggregates) is refused outright. `export --chrome`
//! emits Chrome `trace_event` JSON viewable in Perfetto / `chrome://
//! tracing`, with the simulated and wall clocks on separate tracks.
//! `flame` emits `flamegraph.pl` / inferno collapsed-stack lines weighted
//! by self time on the chosen clock. `hotspots` prints per-span-family
//! wall-vs-sim totals plus a measured telemetry self-overhead estimate.
//! `trend` lines up metric trajectories across a series of snapshots.
//!
//! Exit codes: 0 ok / gate passed, 1 usage or unreadable input,
//! 2 gate failed.

use std::collections::BTreeMap;
use std::process::ExitCode;

use tagwatch_obs::analyze::{AnalyzeConfig, RunReport};
use tagwatch_obs::bench::BenchSnapshot;
use tagwatch_obs::diff::DiffReport;
use tagwatch_obs::export::{chrome_trace, flame_lines};
use tagwatch_obs::hotspots::HotspotReport;
use tagwatch_obs::model::Trace;
use tagwatch_obs::trend::TrendReport;
use tagwatch_telemetry::{overhead, ClockKind, Event};

fn usage() -> String {
    "usage: obs <command>\n\
     \x20 obs report <run.jsonl> [--json] [--starvation-gap SECS]\n\
     \x20 obs analyze … (alias of report)\n\
     \x20 obs diff <baseline> <current> [--threshold FRAC] [--json]\n\
     \x20 obs export --chrome <run.jsonl> [-o out.json]\n\
     \x20 obs flame <run.jsonl> [--clock sim|wall] [-o out.folded]\n\
     \x20 obs hotspots <run.jsonl>\n\
     \x20 obs trend <BENCH_1.json> <BENCH_2.json> [...]\n\
     \n\
     report   validate a telemetry trace and print its analysis\n\
     diff     gate a run against a baseline (traces or BENCH_*.json\n\
     \x20        snapshots, auto-detected); exit 2 on regression\n\
     export   emit a Chrome trace_event JSON profile (open in Perfetto\n\
     \x20        or chrome://tracing; sim and wall clocks as tracks)\n\
     flame    emit collapsed stacks for flamegraph.pl / inferno,\n\
     \x20        weighted by per-span self time on the chosen clock\n\
     hotspots per-span-family time attribution + telemetry overhead\n\
     trend    metric trajectories across a BENCH_*.json series\n\
     \n\
     --threshold is a relative fraction: 0.10 (the default) fails moves\n\
     beyond ±10% on gated metrics"
        .to_string()
}

/// Writes to `-o PATH`, or stdout when no output path was given.
fn emit(out: Option<&str>, text: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path:?}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// What a diff operand turned out to be.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Kind {
    Trace,
    Snapshot,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Trace => "trace",
            Kind::Snapshot => "snapshot",
        }
    }
}

/// Loads a diff operand as a metric map, auto-detecting JSONL traces
/// (first line parses as a telemetry event) vs BENCH snapshots.
fn load_metrics(path: &str, cfg: &AnalyzeConfig) -> Result<(Kind, BTreeMap<String, f64>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
    if serde_json::from_str::<Event>(first).is_ok() {
        let trace = Trace::from_reader(text.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
        return Ok((Kind::Trace, RunReport::analyze(&trace, cfg).metric_map()));
    }
    match BenchSnapshot::load(path) {
        Ok(snap) if snap.is_vacuous() => Err(format!(
            "{path}: snapshot has no comparable aggregates (no figures, counters, \
             or durations) — a diff against it would pass vacuously; regenerate it \
             with `repro --bench-json`"
        )),
        Ok(snap) => Ok((Kind::Snapshot, snap.metric_map())),
        Err(e) => Err(format!(
            "{path}: not a telemetry trace (first line is not an event) and not a \
             BENCH snapshot ({e})"
        )),
    }
}

fn cmd_report(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut json = false;
    let mut cfg = AnalyzeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--starvation-gap" => {
                let v = it.next().ok_or("--starvation-gap needs a value")?;
                cfg.starvation_gap = v.parse().map_err(|_| format!("bad starvation gap {v:?}"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    let path = path.ok_or_else(usage)?;
    let trace = Trace::from_path(&path).map_err(|e| format!("{path}: {e}"))?;
    let report = RunReport::analyze(&trace, &cfg);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        print!("{report}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut json = false;
    let mut threshold: f64 = 0.10;
    let cfg = AnalyzeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold = v.parse().map_err(|_| format!("bad threshold {v:?}"))?;
                if threshold.is_nan() || threshold < 0.0 {
                    return Err(format!("threshold must be ≥ 0, got {threshold}"));
                }
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p => paths.push(p.to_string()),
        }
    }
    let [baseline, current] = paths.as_slice() else {
        return Err(format!("diff needs exactly two inputs\n{}", usage()));
    };
    let (kind_b, map_b) = load_metrics(baseline, &cfg)?;
    let (kind_c, map_c) = load_metrics(current, &cfg)?;
    if kind_b != kind_c {
        return Err(format!(
            "cannot diff a {} against a {} — the metric families do not line up \
             (compare trace↔trace or snapshot↔snapshot)",
            kind_b.name(),
            kind_c.name()
        ));
    }
    let report = DiffReport::diff(&map_b, &map_c, threshold);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("diff serializes")
        );
    } else {
        print!("{report}");
    }
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// Shared trace-loading front half of the exporter commands.
fn load_trace(path: &str) -> Result<Trace, String> {
    Trace::from_path(path).map_err(|e| format!("{path}: {e}"))
}

fn cmd_export(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut out = None;
    let mut chrome = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chrome" => chrome = true,
            "-o" | "--output" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    if !chrome {
        return Err(format!(
            "export needs a format flag (only --chrome exists today)\n{}",
            usage()
        ));
    }
    let path = path.ok_or_else(usage)?;
    let trace = load_trace(&path)?;
    emit(out.as_deref(), &chrome_trace(&trace))?;
    if let Some(out) = &out {
        eprintln!(
            "wrote {} spans to {out} — open in https://ui.perfetto.dev or chrome://tracing",
            trace.spans.len()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_flame(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut out = None;
    let mut clock = ClockKind::Sim;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--clock" => {
                clock = match it.next().ok_or("--clock needs sim or wall")?.as_str() {
                    "sim" => ClockKind::Sim,
                    "wall" => ClockKind::Wall,
                    v => return Err(format!("bad clock {v:?} (want sim or wall)")),
                };
            }
            "-o" | "--output" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    let path = path.ok_or_else(usage)?;
    let trace = load_trace(&path)?;
    emit(out.as_deref(), &flame_lines(&trace, clock))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_hotspots(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        return Err(format!("hotspots needs exactly one trace\n{}", usage()));
    };
    let trace = load_trace(path)?;
    // Calibrate on this host, now — the whole point is that the
    // per-event cost is measured where the estimate will be read.
    let est = overhead::calibrate();
    print!("{}", HotspotReport::analyze(&trace, &est));
    Ok(ExitCode::SUCCESS)
}

fn cmd_trend(args: &[String]) -> Result<ExitCode, String> {
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if let Some(bad) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("unknown option {bad:?}\n{}", usage()));
    }
    if paths.len() < 2 {
        return Err(format!("trend needs at least two snapshots\n{}", usage()));
    }
    let report = TrendReport::load_series(&paths).map_err(|e| format!("trend: {e}"))?;
    print!("{report}");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "report" | "analyze" => cmd_report(rest),
            "diff" => cmd_diff(rest),
            "export" => cmd_export(rest),
            "flame" => cmd_flame(rest),
            "hotspots" => cmd_hotspots(rest),
            "trend" => cmd_trend(rest),
            "--help" | "-h" => Err(usage()),
            other => Err(format!("unknown command {other:?}\n{}", usage())),
        },
        None => Err(usage()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
