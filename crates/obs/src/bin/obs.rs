//! The trace-analysis CLI.
//!
//! ```text
//! obs report <run.jsonl> [--json] [--starvation-gap SECS]
//! obs diff <baseline> <current> [--threshold FRAC] [--json]
//! ```
//!
//! `report` validates a telemetry JSONL trace and prints the full
//! [`RunReport`] (human table, or JSON with `--json`). `diff` compares
//! two runs — each side is either a trace or a `BENCH_<n>.json` snapshot
//! (auto-detected) — and exits 2 when a gated metric regressed beyond the
//! relative threshold, which is what `ci.sh --obs` keys on.
//!
//! Exit codes: 0 ok / gate passed, 1 usage or unreadable input,
//! 2 gate failed.

use std::collections::BTreeMap;
use std::process::ExitCode;

use tagwatch_obs::analyze::{AnalyzeConfig, RunReport};
use tagwatch_obs::bench::BenchSnapshot;
use tagwatch_obs::diff::DiffReport;
use tagwatch_obs::model::Trace;
use tagwatch_telemetry::Event;

fn usage() -> String {
    "usage: obs <command>\n\
     \x20 obs report <run.jsonl> [--json] [--starvation-gap SECS]\n\
     \x20 obs diff <baseline> <current> [--threshold FRAC] [--json]\n\
     \n\
     report   validate a telemetry trace and print its analysis\n\
     diff     gate a run against a baseline (traces or BENCH_*.json\n\
     \x20        snapshots, auto-detected); exit 2 on regression\n\
     \n\
     --threshold is a relative fraction: 0.10 (the default) fails moves\n\
     beyond ±10% on gated metrics"
        .to_string()
}

/// What a diff operand turned out to be.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Kind {
    Trace,
    Snapshot,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Trace => "trace",
            Kind::Snapshot => "snapshot",
        }
    }
}

/// Loads a diff operand as a metric map, auto-detecting JSONL traces
/// (first line parses as a telemetry event) vs BENCH snapshots.
fn load_metrics(path: &str, cfg: &AnalyzeConfig) -> Result<(Kind, BTreeMap<String, f64>), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
    if serde_json::from_str::<Event>(first).is_ok() {
        let trace =
            Trace::from_reader(text.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
        return Ok((Kind::Trace, RunReport::analyze(&trace, cfg).metric_map()));
    }
    match BenchSnapshot::load(path) {
        Ok(snap) => Ok((Kind::Snapshot, snap.metric_map())),
        Err(e) => Err(format!(
            "{path}: not a telemetry trace (first line is not an event) and not a \
             BENCH snapshot ({e})"
        )),
    }
}

fn cmd_report(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut json = false;
    let mut cfg = AnalyzeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--starvation-gap" => {
                let v = it.next().ok_or("--starvation-gap needs a value")?;
                cfg.starvation_gap = v
                    .parse()
                    .map_err(|_| format!("bad starvation gap {v:?}"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    let path = path.ok_or_else(usage)?;
    let trace = Trace::from_path(&path).map_err(|e| format!("{path}: {e}"))?;
    let report = RunReport::analyze(&trace, &cfg);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        print!("{report}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut json = false;
    let mut threshold = 0.10;
    let cfg = AnalyzeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("bad threshold {v:?}"))?;
                if !(threshold >= 0.0) {
                    return Err(format!("threshold must be ≥ 0, got {threshold}"));
                }
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p => paths.push(p.to_string()),
        }
    }
    let [baseline, current] = paths.as_slice() else {
        return Err(format!("diff needs exactly two inputs\n{}", usage()));
    };
    let (kind_b, map_b) = load_metrics(baseline, &cfg)?;
    let (kind_c, map_c) = load_metrics(current, &cfg)?;
    if kind_b != kind_c {
        return Err(format!(
            "cannot diff a {} against a {} — the metric families do not line up \
             (compare trace↔trace or snapshot↔snapshot)",
            kind_b.name(),
            kind_c.name()
        ));
    }
    let report = DiffReport::diff(&map_b, &map_c, threshold);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("diff serializes")
        );
    } else {
        print!("{report}");
    }
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "report" => cmd_report(rest),
            "diff" => cmd_diff(rest),
            "--help" | "-h" => Err(usage()),
            other => Err(format!("unknown command {other:?}\n{}", usage())),
        },
        None => Err(usage()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
