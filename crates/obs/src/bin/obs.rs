//! The trace-analysis CLI.
//!
//! ```text
//! obs report <run.jsonl> [--json] [--starvation-gap SECS]
//! obs diff <baseline> <current> [--threshold FRAC] [--sim-only] [--json]
//! obs export --chrome <run.jsonl> [-o out.json]
//! obs flame <run.jsonl> [--clock sim|wall] [-o out.folded]
//! obs hotspots <run.jsonl> [--overhead-ns N]
//! obs trend [BENCH_1.json BENCH_2.json ...]
//! obs compare <A.json> <B.json> [--k K] [--json]
//! obs compare --traces <a.jsonl> <b.jsonl> [--json]
//! obs tail <run.jsonl> [--watch] [--json] [--interval-ms MS]
//!                      [--max-wait-ms MS] [--starvation-gap SECS]
//! obs watch <monitor-dir> [--check <run.jsonl>] [--json]
//! obs pack <trace> -o <out.twb> [--shards N]
//! obs ingest <shard...> [-o out] [--format jsonl|binary]
//! ```
//!
//! `report` validates a telemetry JSONL trace and prints the full
//! [`RunReport`] (human table, or JSON with `--json`). `diff` compares
//! two runs — each side is either a trace or a `BENCH_<n>.json` snapshot
//! (auto-detected) — and exits 2 when a gated metric regressed beyond the
//! relative threshold, which is what `ci.sh` keys on; a vacuous snapshot
//! (no comparable aggregates) is refused outright; `--sim-only` drops the
//! wall-derived `wall.*` / `fig.*` families so a gate can demand exact
//! (`--threshold 0`) agreement on the deterministic remainder. `export
//! --chrome` emits Chrome `trace_event` JSON viewable in Perfetto /
//! `chrome://tracing`, with the simulated and wall clocks on separate
//! tracks. `flame` emits `flamegraph.pl` / inferno collapsed-stack lines
//! weighted by self time on the chosen clock. `hotspots` prints
//! per-span-family wall-vs-sim totals plus a telemetry self-overhead
//! estimate — measured on this host by default, or injected with
//! `--overhead-ns N` for byte-reproducible output. `trend` lines up
//! metric trajectories across a series of snapshots; with no arguments it
//! reads the `bench-history/` archive (falling back to `BENCH_*.json` in
//! the current directory, deprecated). `compare` is the A/B optimization
//! verdict: it first proves both runs did byte-identical sim work (seed,
//! scale, every counter — `perf.work.*` included) and exits 2 "not
//! comparable" otherwise; only then does it judge wall-side work-rate
//! deltas, failing (exit 2) when a median rate regressed beyond `k·σ` of
//! the trial stddev (`--k`, default 3). `--traces` mode compares two
//! finished traces instead: same counter totals and bit-identical sim
//! span families, then per-wall-family self time side by side. `tail` streams a (possibly still growing) trace
//! through the online analyzers — with `--watch` it follows the file
//! until the closing footer lands, printing a status line as events
//! arrive. `watch` reads a `--monitor` status directory: it prints the
//! latest `MonitorSnapshot`, and with `--check` replays the finished
//! trace through the batch analyzers and exits 2 unless every verdict
//! in the snapshot is byte-identical (it also validates the Prometheus
//! exposition file). `pack` re-encodes any trace (JSONL or `.twb`) as
//! compact `.twb` — optionally split across `--shards N` self-describing
//! shard files — and prints the size accounting. `ingest` is the inverse:
//! it reads one trace or merges a complete shard set deterministically,
//! then writes the canonical stream as JSONL (default) or canonical
//! single-shard `.twb` (`--format binary`). Every analysis command
//! accepts either format transparently — `.twb` is sniffed from its
//! leading magic, and record numbering matches the JSONL line numbering,
//! so verdicts are byte-identical across formats.
//!
//! Exit codes: 0 ok / gate passed, 1 usage or unreadable input,
//! 2 gate failed.

use std::collections::BTreeMap;
use std::process::ExitCode;

use tagwatch_monitor::{
    exposition, MonitorSnapshot, OnlineAnalyzers, OnlineConfig, TraceFollower, EXPOSITION_FILE,
};
use tagwatch_obs::analyze::{AnalyzeConfig, RunReport};
use tagwatch_obs::bench::BenchSnapshot;
use tagwatch_obs::compare::{CompareReport, SpeedupRequirement};
use tagwatch_obs::diff::DiffReport;
use tagwatch_obs::export::{chrome_trace, flame_lines};
use tagwatch_obs::hotspots::HotspotReport;
use tagwatch_obs::model::Trace;
use tagwatch_obs::trend::TrendReport;
use tagwatch_telemetry::binary::encode_stream;
use tagwatch_telemetry::shard::{merge_paths, ShardedSink};
use tagwatch_telemetry::{format, overhead, ClockKind, Event, Sink, TraceFormat};

fn usage() -> String {
    "usage: obs <command>\n\
     \x20 obs report <run.jsonl> [--json] [--starvation-gap SECS]\n\
     \x20 obs analyze … (alias of report)\n\
     \x20 obs diff <baseline> <current> [--threshold FRAC] [--sim-only] [--json]\n\
     \x20 obs export --chrome <run.jsonl> [-o out.json]\n\
     \x20 obs flame <run.jsonl> [--clock sim|wall] [-o out.folded]\n\
     \x20 obs hotspots <run.jsonl> [--overhead-ns N]\n\
     \x20 obs trend [BENCH_1.json BENCH_2.json ...]\n\
     \x20 obs compare <A.json> <B.json> [--k K] [--json]\n\
     \x20             [--require-speedup [figures.]FIG.METRIC:FACTOR]\n\
     \x20 obs compare --traces <a.jsonl> <b.jsonl> [--json]\n\
     \x20 obs tail <run.jsonl> [--watch] [--json] [--interval-ms MS]\n\
     \x20          [--max-wait-ms MS] [--starvation-gap SECS]\n\
     \x20 obs watch <monitor-dir> [--check <run.jsonl>] [--json]\n\
     \x20 obs pack <trace> -o <out.twb> [--shards N]\n\
     \x20 obs ingest <shard...> [-o out] [--format jsonl|binary]\n\
     \n\
     report   validate a telemetry trace and print its analysis\n\
     diff     gate a run against a baseline (traces or BENCH_*.json\n\
     \x20        snapshots, auto-detected); exit 2 on regression;\n\
     \x20        --sim-only ignores wall-derived metrics\n\
     export   emit a Chrome trace_event JSON profile (open in Perfetto\n\
     \x20        or chrome://tracing; sim and wall clocks as tracks)\n\
     flame    emit collapsed stacks for flamegraph.pl / inferno,\n\
     \x20        weighted by per-span self time on the chosen clock\n\
     hotspots per-span-family time attribution + telemetry overhead\n\
     \x20        (--overhead-ns injects a fixed per-event cost instead of\n\
     \x20        calibrating, for byte-reproducible output)\n\
     trend    metric trajectories across a BENCH_*.json series; with no\n\
     \x20        arguments, reads the bench-history/ archive\n\
     compare  A/B perf verdict: exit 2 unless both runs did identical\n\
     \x20        sim work; then flag work rates that regressed beyond\n\
     \x20        k·stddev (--k, default 3) of the --trials noise band;\n\
     \x20        --require-speedup additionally demands B's best-trial\n\
     \x20        rate reach FACTOR× A's (repeatable; snapshot mode)\n\
     tail     stream a trace through the online analyzers; --watch\n\
     \x20        follows a growing file until the footer lands\n\
     watch    print a --monitor status directory's latest snapshot;\n\
     \x20        --check verifies it against the batch analyzers (exit 2\n\
     \x20        on divergence)\n\
     pack     re-encode a trace (JSONL or .twb) as compact .twb;\n\
     \x20        --shards N splits it into a self-describing shard set\n\
     ingest   read a trace, or deterministically merge a complete .twb\n\
     \x20        shard set, and write it back out (--format jsonl is the\n\
     \x20        default; binary writes the canonical single-shard .twb)\n\
     \n\
     --threshold is a relative fraction: 0.10 (the default) fails moves\n\
     beyond ±10% on gated metrics"
        .to_string()
}

/// Writes to `-o PATH`, or stdout when no output path was given.
fn emit(out: Option<&str>, text: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path:?}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// What a diff operand turned out to be.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Kind {
    Trace,
    Snapshot,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Trace => "trace",
            Kind::Snapshot => "snapshot",
        }
    }
}

/// Loads a diff operand as a metric map, auto-detecting traces vs BENCH
/// snapshots. Detection is byte-based — a `.twb` trace is not UTF-8, so
/// the magic is sniffed before any text interpretation: binary magic →
/// trace, first non-blank line parses as a telemetry event → JSONL
/// trace, otherwise a snapshot.
fn load_metrics(path: &str, cfg: &AnalyzeConfig) -> Result<(Kind, BTreeMap<String, f64>), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let is_trace = match format::sniff(&bytes) {
        TraceFormat::Binary => true,
        TraceFormat::Jsonl => std::str::from_utf8(&bytes).is_ok_and(|text| {
            let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
            serde_json::from_str::<Event>(first).is_ok()
        }),
    };
    if is_trace {
        let trace = Trace::from_reader(bytes.as_slice()).map_err(|e| format!("{path}: {e}"))?;
        return Ok((Kind::Trace, RunReport::analyze(&trace, cfg).metric_map()));
    }
    match BenchSnapshot::load(path) {
        Ok(snap) if snap.is_vacuous() => Err(format!(
            "{path}: snapshot has no comparable aggregates (no figures, counters, \
             or durations) — a diff against it would pass vacuously; regenerate it \
             with `repro --bench-json`"
        )),
        Ok(snap) => Ok((Kind::Snapshot, snap.metric_map())),
        Err(e) => Err(format!(
            "{path}: not a telemetry trace (first line is not an event) and not a \
             BENCH snapshot ({e})"
        )),
    }
}

fn cmd_report(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut json = false;
    let mut cfg = AnalyzeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--starvation-gap" => {
                let v = it.next().ok_or("--starvation-gap needs a value")?;
                cfg.starvation_gap = v.parse().map_err(|_| format!("bad starvation gap {v:?}"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    let path = path.ok_or_else(usage)?;
    let trace = Trace::from_path(&path).map_err(|e| format!("{path}: {e}"))?;
    let report = RunReport::analyze(&trace, &cfg);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        print!("{report}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut json = false;
    let mut sim_only = false;
    let mut threshold: f64 = 0.10;
    let cfg = AnalyzeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--sim-only" => sim_only = true,
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold = v.parse().map_err(|_| format!("bad threshold {v:?}"))?;
                if threshold.is_nan() || threshold < 0.0 {
                    return Err(format!("threshold must be ≥ 0, got {threshold}"));
                }
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p => paths.push(p.to_string()),
        }
    }
    let [baseline, current] = paths.as_slice() else {
        return Err(format!("diff needs exactly two inputs\n{}", usage()));
    };
    let (kind_b, mut map_b) = load_metrics(baseline, &cfg)?;
    let (kind_c, mut map_c) = load_metrics(current, &cfg)?;
    if sim_only {
        // Wall-derived families vary run to run by construction; the
        // rest must be reproducible, so a --sim-only gate can demand
        // --threshold 0.
        let sim_side = |k: &String| !k.starts_with("wall.") && !k.starts_with("fig.");
        map_b.retain(|k, _| sim_side(k));
        map_c.retain(|k, _| sim_side(k));
    }
    if kind_b != kind_c {
        return Err(format!(
            "cannot diff a {} against a {} — the metric families do not line up \
             (compare trace↔trace or snapshot↔snapshot)",
            kind_b.name(),
            kind_c.name()
        ));
    }
    let report = DiffReport::diff(&map_b, &map_c, threshold);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("diff serializes")
        );
    } else {
        print!("{report}");
    }
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// Shared trace-loading front half of the exporter commands.
fn load_trace(path: &str) -> Result<Trace, String> {
    Trace::from_path(path).map_err(|e| format!("{path}: {e}"))
}

fn cmd_export(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut out = None;
    let mut chrome = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chrome" => chrome = true,
            "-o" | "--output" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    if !chrome {
        return Err(format!(
            "export needs a format flag (only --chrome exists today)\n{}",
            usage()
        ));
    }
    let path = path.ok_or_else(usage)?;
    let trace = load_trace(&path)?;
    emit(out.as_deref(), &chrome_trace(&trace))?;
    if let Some(out) = &out {
        eprintln!(
            "wrote {} spans to {out} — open in https://ui.perfetto.dev or chrome://tracing",
            trace.spans.len()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_flame(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut out = None;
    let mut clock = ClockKind::Sim;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--clock" => {
                clock = match it.next().ok_or("--clock needs sim or wall")?.as_str() {
                    "sim" => ClockKind::Sim,
                    "wall" => ClockKind::Wall,
                    v => return Err(format!("bad clock {v:?} (want sim or wall)")),
                };
            }
            "-o" | "--output" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    let path = path.ok_or_else(usage)?;
    let trace = load_trace(&path)?;
    emit(out.as_deref(), &flame_lines(&trace, clock))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_hotspots(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut overhead_ns: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--overhead-ns" => {
                let v = it.next().ok_or("--overhead-ns needs a value")?;
                let ns: f64 = v.parse().map_err(|_| format!("bad overhead {v:?}"))?;
                if !ns.is_finite() || ns < 0.0 {
                    return Err(format!("--overhead-ns must be a finite value ≥ 0, got {v}"));
                }
                overhead_ns = Some(ns);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    let path = path.ok_or_else(usage)?;
    let trace = load_trace(&path)?;
    let est = match overhead_ns {
        // An injected fixed cost makes the whole report a pure function
        // of the trace — two invocations are byte-identical, so the
        // output can be diffed or committed.
        Some(ns) => tagwatch_telemetry::OverheadEstimate::fixed(ns),
        // Otherwise calibrate on this host, now — the point of the
        // default is that the per-event cost is measured where the
        // estimate will be read.
        None => overhead::calibrate(),
    };
    print!("{}", HotspotReport::analyze(&trace, &est));
    Ok(ExitCode::SUCCESS)
}

/// Sorted `*.json` paths in `dir` whose stem matches `prefix`, or empty
/// when the directory does not exist.
fn snapshot_glob(dir: &str, prefix: &str) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<String> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with(prefix))
        })
        .map(|p| p.display().to_string())
        .collect();
    paths.sort();
    paths
}

fn cmd_trend(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .cloned()
        .collect();
    if let Some(bad) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("unknown option {bad:?}\n{}", usage()));
    }
    if paths.is_empty() {
        // Default source: the CI archive of accepted snapshots.
        paths = snapshot_glob("bench-history", "");
        if paths.is_empty() {
            paths = snapshot_glob(".", "BENCH_");
            if !paths.is_empty() {
                eprintln!(
                    "trend: no bench-history/ archive found — falling back to ./BENCH_*.json \
                     (deprecated; run ci.sh --obs to build the archive)"
                );
            }
        }
    }
    if paths.is_empty() {
        return Err(format!(
            "trend found no snapshots (no arguments, no bench-history/, no ./BENCH_*.json)\n{}",
            usage()
        ));
    }
    let report = TrendReport::load_series(&paths).map_err(|e| format!("trend: {e}"))?;
    // A bench-history archive starts life with one accepted snapshot;
    // that is a point, not a trajectory — report it and succeed so the
    // CI archive step can always run trend informationally.
    if paths.len() == 1 {
        println!(
            "trend: only one snapshot ({}) — nothing to compare yet; archive more \
             accepted runs (ci.sh --obs appends to bench-history/) and re-run",
            paths[0]
        );
        return Ok(ExitCode::SUCCESS);
    }
    print!("{report}");
    if report.series.iter().all(|s| s.relative_change.is_none()) {
        println!(
            "trend: no metric is present in more than one snapshot — every series \
             is a single point, so no first→last change can be computed"
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut json = false;
    let mut traces = false;
    let mut k = tagwatch_obs::compare::DEFAULT_K;
    let mut requirements = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--traces" => traces = true,
            "--k" => {
                let v = it.next().ok_or("--k needs a value")?;
                k = v
                    .parse()
                    .map_err(|_| format!("bad noise multiplier {v:?}"))?;
                if !k.is_finite() || k <= 0.0 {
                    return Err(format!("--k must be a finite value > 0, got {v}"));
                }
            }
            "--require-speedup" => {
                let v = it
                    .next()
                    .ok_or("--require-speedup needs [figures.]FIG.METRIC:FACTOR")?;
                requirements.push(SpeedupRequirement::parse(v)?);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p => paths.push(p.to_string()),
        }
    }
    let [a, b] = paths.as_slice() else {
        return Err(format!("compare needs exactly two inputs\n{}", usage()));
    };
    if traces && !requirements.is_empty() {
        return Err("--require-speedup needs snapshot mode (traces carry no trial walls)".into());
    }
    let report = if traces {
        let (ta, tb) = (load_trace(a)?, load_trace(b)?);
        CompareReport::traces(&ta, &tb, k)
    } else {
        let sa = BenchSnapshot::load(a).map_err(|e| format!("{a}: {e}"))?;
        let sb = BenchSnapshot::load(b).map_err(|e| format!("{b}: {e}"))?;
        if sa.is_vacuous() || sb.is_vacuous() {
            return Err(
                "compare refuses a vacuous snapshot (no figures, counters, or \
                 durations) — regenerate with `repro --bench-json --trials N`"
                    .to_string(),
            );
        }
        let mut report = CompareReport::snapshots(&sa, &sb, k);
        report.require_speedups(&sa, &sb, &requirements)?;
        report
    };
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("compare report serializes")
        );
    } else {
        print!("{report}");
    }
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// Human one-screen rendering of the online verdicts (the `tail`
/// counterpart of the batch report's Display).
fn render_online(online: &OnlineAnalyzers) -> String {
    use std::fmt::Write as _;
    let v = online.verdicts();
    let w = online.window_stats();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "online report ({} events, {} cycles, sim {:.3} s{})",
        online.events(),
        online.cycles(),
        v.sim_seconds,
        if online.footer().is_some() {
            ", complete"
        } else {
            ", trace still open"
        }
    );
    let _ = writeln!(
        s,
        "  tags: {} seen, {} reads, IRR mean {:.3}/s min {:.3}/s max {:.3}/s",
        v.tags.tags, v.tags.reads_total, v.tags.irr_mean, v.tags.irr_min, v.tags.irr_max
    );
    let _ = writeln!(
        s,
        "  window: {:.1} s sliding, {} reads, {:.2}/s",
        w.seconds, w.reads, w.irr
    );
    let _ = writeln!(
        s,
        "  starvation (> {:.1} s): {} tags, {} windows",
        v.starvation.gap_threshold,
        v.starvation.starved_tags,
        v.starvation.events.len()
    );
    match &v.confusion {
        Some(c) => {
            let _ = writeln!(
                s,
                "  detector: TPR {:.3}  FPR {:.3}  accuracy {:.3} ({} cycles)",
                c.tpr, c.fpr, c.accuracy, c.cycles
            );
        }
        None => {
            let _ = writeln!(s, "  detector: no truth.mobile annotations yet");
        }
    }
    let _ = writeln!(
        s,
        "  q: {} rounds, mean {:.2}, oscillation {:.2}",
        v.q.rounds, v.q.mean_q, v.q.oscillation
    );
    if let Some(fr) = &v.fault {
        let _ = writeln!(
            s,
            "  faults: {} windows, {:.3} s injected, degradation {:.0}% of clean",
            fr.windows.len(),
            fr.faulted_seconds,
            fr.degradation * 100.0
        );
    }
    if online.alarms_seen() > 0 {
        let _ = writeln!(s, "  alarms: {} in trace", online.alarms_seen());
    }
    s
}

fn cmd_tail(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut watch = false;
    let mut json = false;
    let mut interval_ms: u64 = 200;
    let mut max_wait_ms: Option<u64> = None;
    let mut cfg = OnlineConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--watch" => watch = true,
            "--json" => json = true,
            "--interval-ms" => {
                let v = it.next().ok_or("--interval-ms needs a value")?;
                interval_ms = v.parse().map_err(|_| format!("bad interval {v:?}"))?;
                interval_ms = interval_ms.max(1);
            }
            "--max-wait-ms" => {
                let v = it.next().ok_or("--max-wait-ms needs a value")?;
                max_wait_ms = Some(v.parse().map_err(|_| format!("bad max wait {v:?}"))?);
            }
            "--starvation-gap" => {
                let v = it.next().ok_or("--starvation-gap needs a value")?;
                cfg.starvation_gap = v.parse().map_err(|_| format!("bad starvation gap {v:?}"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    let path = path.ok_or_else(usage)?;
    let mut follower = TraceFollower::new(&path);
    let mut online = OnlineAnalyzers::new(cfg);
    // Wall time is deliberately never read here (the workspace confines
    // wall clocks to the telemetry crate); the wait budget is accounted
    // as completed sleep intervals instead.
    let mut slept_ms: u64 = 0;
    let mut timed_out = false;
    loop {
        let batch = follower.poll().map_err(|e| e.to_string())?;
        let fresh = !batch.is_empty();
        for (_, ev) in &batch {
            online.push(ev);
        }
        if online.footer().is_some() {
            break;
        }
        if !watch {
            // One-shot: the poll drained the file to its current end.
            break;
        }
        if fresh && !json {
            println!(
                "[{} events] sim {:.2} s, {} cycles, window {:.2} reads/s, {} alarms",
                online.events(),
                online.sim_seconds(),
                online.cycles(),
                online.window_stats().irr,
                online.alarms_seen()
            );
        }
        if let Some(budget) = max_wait_ms {
            if slept_ms >= budget {
                timed_out = true;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        slept_ms += interval_ms;
    }
    if json {
        #[derive(serde::Serialize)]
        struct TailOutput {
            complete: bool,
            timed_out: bool,
            events: u64,
            cycles: usize,
            alarms_seen: u64,
            verdicts: tagwatch_monitor::OnlineVerdicts,
        }
        let out = TailOutput {
            complete: online.footer().is_some(),
            timed_out,
            events: online.events(),
            cycles: online.cycles(),
            alarms_seen: online.alarms_seen(),
            verdicts: online.verdicts(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("tail output serializes")
        );
    } else {
        if timed_out {
            eprintln!("tail: wait budget exhausted before the trace footer arrived");
        }
        print!("{}", render_online(&online));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_watch(args: &[String]) -> Result<ExitCode, String> {
    let mut dir = None;
    let mut check: Option<String> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--check" => {
                check = Some(it.next().ok_or("--check needs a trace path")?.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if dir.is_none() => dir = Some(std::path::PathBuf::from(p)),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    let dir = dir.ok_or_else(usage)?;
    let snap = MonitorSnapshot::load(&dir.join(tagwatch_monitor::STATUS_FILE))
        .map_err(|e| format!("{e}"))?;
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&snap).expect("snapshot serializes")
        );
    } else {
        println!(
            "monitor snapshot #{} — {} events, {} cycles, sim {:.3} s, {} alarms{}{}",
            snap.seq,
            snap.events,
            snap.cycles,
            snap.sim_seconds,
            snap.alarms.len(),
            if snap.footer_seen {
                ", complete"
            } else {
                ", run still open"
            },
            if snap.write_errors > 0 {
                " (WRITE ERRORS)"
            } else {
                ""
            }
        );
        for a in &snap.alarms {
            println!("  alarm[{}] {} @ {:.3} s: {}", a.seq, a.kind, a.t, a.detail);
        }
    }

    let mut failures: Vec<String> = Vec::new();
    // The exposition artifact must stay parseable whenever present —
    // CI regenerates it on every monitored run.
    let prom_path = dir.join(EXPOSITION_FILE);
    match std::fs::read_to_string(&prom_path) {
        Ok(text) => {
            if let Err(e) = exposition::validate(&text) {
                failures.push(format!("{}: {e}", prom_path.display()));
            }
        }
        Err(e) => failures.push(format!("{}: {e}", prom_path.display())),
    }

    if let Some(trace_path) = check.as_deref() {
        if !snap.footer_seen {
            failures.push(
                "snapshot is not final (no footer) — run the check after the run ends".to_string(),
            );
        }
        let trace = Trace::from_path(trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
        let cfg = AnalyzeConfig {
            starvation_gap: snap.starvation.gap_threshold,
        };
        let batch = RunReport::analyze(&trace, &cfg);
        let mut cmp = |what: &str, live: String, batch: String| {
            if live != batch {
                failures.push(format!("{what} diverged:\n  live  {live}\n  batch {batch}"));
            }
        };
        fn ser<T: serde::Serialize>(v: &T) -> String {
            serde_json::to_string(v).expect("verdicts serialize")
        }
        cmp("tag summary", ser(&snap.tags), ser(&batch.tags));
        cmp("starvation", ser(&snap.starvation), ser(&batch.starvation));
        cmp("confusion", ser(&snap.confusion), ser(&batch.confusion));
        cmp("q diagnostics", ser(&snap.q), ser(&batch.q));
        cmp("fault report", ser(&snap.fault), ser(&batch.fault));
        cmp(
            "sim window",
            format!("{:?}", snap.sim_seconds.to_bits()),
            format!("{:?}", batch.sim_seconds.to_bits()),
        );
    }

    if failures.is_empty() {
        if check.is_some() {
            println!("watch: snapshot matches the batch analyzers byte-for-byte");
        }
        Ok(ExitCode::SUCCESS)
    } else {
        for f in &failures {
            eprintln!("watch: {f}");
        }
        Ok(ExitCode::from(2))
    }
}

/// `obs pack`: re-encode any trace as compact `.twb`, optionally split
/// into a shard set, and account for the size delta.
fn cmd_pack(args: &[String]) -> Result<ExitCode, String> {
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut shards: usize = 1;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            "--shards" => {
                let n = it.next().ok_or("--shards needs a count")?;
                shards = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--shards needs a positive integer, got {n:?}"))?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p if input.is_none() => input = Some(p.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{}", usage())),
        }
    }
    let input = input.ok_or_else(usage)?;
    let out = out.ok_or("pack needs -o <out.twb> (it never overwrites its input implicitly)")?;
    let in_bytes = std::fs::metadata(&input)
        .map_err(|e| format!("cannot stat {input:?}: {e}"))?
        .len();
    let events = format::read_events_path(&input).map_err(|e| format!("{input}: {e}"))?;

    let paths: Vec<std::path::PathBuf>;
    if shards == 1 {
        let bytes = encode_stream(events.iter().map(|(_, ev)| ev));
        std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out:?}: {e}"))?;
        paths = vec![std::path::PathBuf::from(&out)];
    } else {
        let mut sink = ShardedSink::create(&out, shards)
            .map_err(|e| format!("cannot create shard files for {out:?}: {e}"))?;
        for (_, ev) in &events {
            sink.record(ev);
        }
        sink.flush();
        let errors = sink.write_errors();
        paths = sink.paths();
        drop(sink);
        if errors > 0 {
            return Err(format!(
                "pack: {errors} write errors — shard set is incomplete"
            ));
        }
    }

    let mut out_bytes = 0u64;
    for p in &paths {
        out_bytes += std::fs::metadata(p)
            .map_err(|e| format!("cannot stat {}: {e}", p.display()))?
            .len();
    }
    let n = events.len();
    println!(
        "packed {n} events: {in_bytes} bytes -> {out_bytes} bytes across {} file(s) \
         ({:.2} bytes/event, {:.2}x smaller)",
        paths.len(),
        if n == 0 {
            0.0
        } else {
            out_bytes as f64 / n as f64
        },
        if out_bytes == 0 {
            0.0
        } else {
            in_bytes as f64 / out_bytes as f64
        },
    );
    for p in &paths {
        println!("  {}", p.display());
    }
    Ok(ExitCode::SUCCESS)
}

/// `obs ingest`: read one trace (either format), or deterministically
/// merge a complete `.twb` shard set, and write the stream back out.
fn cmd_ingest(args: &[String]) -> Result<ExitCode, String> {
    let mut inputs: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut binary = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            "--format" => match it.next().map(String::as_str) {
                Some("jsonl") => binary = false,
                Some("binary") | Some("twb") => binary = true,
                other => return Err(format!("--format needs jsonl or binary, got {other:?}")),
            },
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            p => inputs.push(p.to_string()),
        }
    }
    if inputs.is_empty() {
        return Err(usage());
    }

    // One input is "read this trace, whatever its format"; several are a
    // shard set, which must merge cleanly (complete, consistent headers).
    let events: Vec<Event> = if inputs.len() == 1 {
        format::read_events_path(&inputs[0])
            .map_err(|e| format!("{}: {e}", inputs[0]))?
            .into_iter()
            .map(|(_, ev)| ev)
            .collect()
    } else {
        merge_paths(&inputs)
            .map_err(|e| format!("{e}"))?
            .into_iter()
            .map(|(_, ev)| ev)
            .collect()
    };

    if binary {
        let out = out.ok_or("--format binary needs -o (refusing to write .twb to stdout)")?;
        let bytes = encode_stream(&events);
        std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out:?}: {e}"))?;
        println!(
            "ingested {} events -> {out} ({} bytes, canonical single-shard .twb)",
            events.len(),
            bytes.len()
        );
    } else {
        let mut text = String::with_capacity(events.len() * 64);
        for ev in &events {
            let line =
                serde_json::to_string(ev).map_err(|e| format!("cannot encode event: {e}"))?;
            text.push_str(&line);
            text.push('\n');
        }
        let to_file = out.is_some();
        emit(out.as_deref(), &text)?;
        if to_file {
            println!(
                "ingested {} events -> {} ({} bytes of JSONL)",
                events.len(),
                out.as_deref().unwrap_or("-"),
                text.len()
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "report" | "analyze" => cmd_report(rest),
            "diff" => cmd_diff(rest),
            "export" => cmd_export(rest),
            "flame" => cmd_flame(rest),
            "hotspots" => cmd_hotspots(rest),
            "trend" => cmd_trend(rest),
            "compare" => cmd_compare(rest),
            "tail" => cmd_tail(rest),
            "watch" => cmd_watch(rest),
            "pack" => cmd_pack(rest),
            "ingest" => cmd_ingest(rest),
            "--help" | "-h" => Err(usage()),
            other => Err(format!("unknown command {other:?}\n{}", usage())),
        },
        None => Err(usage()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
