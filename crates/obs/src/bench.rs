//! Machine-readable BENCH snapshots: a schema-versioned summary of one
//! `repro` run, written by `repro --bench-json` and committed as
//! `BENCH_<n>.json` so `ci.sh --obs` can gate performance regressions
//! with `obs diff`.
//!
//! The schema is deliberately small — registry-level aggregates only, no
//! per-event data — so a snapshot is a few KB, diffs cleanly, and stays
//! stable across scene sizes at a fixed `(seed, scale)`.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use tagwatch_telemetry::MetricsRegistry;

use crate::analyze::DurationStats;

/// Version of the snapshot schema this crate writes. Version 2 added
/// multi-trial wall statistics and derived work rates; every added field
/// is `#[serde(default)]`, so version-1 snapshots (committed baselines,
/// `bench-history/`) still load — see [`BENCH_SCHEMA_MIN`]. Loading a
/// snapshot outside the supported range is an error — a silent
/// cross-version diff would gate on apples vs oranges.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Oldest schema version [`BenchSnapshot::load`] still accepts.
pub const BENCH_SCHEMA_MIN: u32 = 1;

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum BenchError {
    Io(io::Error),
    Parse(serde_json::Error),
    /// The file declares a schema version this crate does not speak.
    SchemaVersion {
        found: u32,
        expected: u32,
    },
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Io(e) => write!(f, "cannot read snapshot: {e}"),
            BenchError::Parse(e) => write!(f, "snapshot is not valid BENCH JSON: {e}"),
            BenchError::SchemaVersion { found, expected } => write!(
                f,
                "snapshot schema version {found} is outside the supported range \
                 {BENCH_SCHEMA_MIN}..={expected}; \
                 regenerate it with the current `repro --bench-json`"
            ),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io(e) => Some(e),
            BenchError::Parse(e) => Some(e),
            BenchError::SchemaVersion { .. } => None,
        }
    }
}

/// Wall-clock and throughput summary for one figure/experiment.
///
/// Schema v2 grew per-trial wall statistics and derived *work rates*
/// (work units per wall second, from the deterministic `perf.work.*`
/// counters). All additions default, so v1 snapshots parse: a defaulted
/// field reads 0.0 / empty and [`BenchSnapshot::metric_map`] simply
/// omits the corresponding keys.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FigureBench {
    /// Host seconds the experiment took. With `--trials N > 1` this is
    /// the *median* trial — the robust central figure the rates divide
    /// by.
    pub wall_seconds: f64,
    /// Phase II reports per wall second over the experiment — the bench's
    /// cheap throughput proxy (simulated work done per host second).
    pub reports_per_wall_second: f64,
    /// Every trial's wall seconds, in run order (v2; empty for v1 or a
    /// single implicit trial).
    #[serde(default)]
    pub trial_wall_seconds: Vec<f64>,
    /// Fastest trial (v2; 0.0 for v1).
    #[serde(default)]
    pub wall_min_seconds: f64,
    /// Population standard deviation across trials (v2; 0.0 for v1 or a
    /// single trial). `obs compare` scales its noise verdict by this.
    #[serde(default)]
    pub wall_stddev_seconds: f64,
    /// Inventory slots simulated per median-wall second (v2; 0.0 = not
    /// recorded).
    #[serde(default)]
    pub slots_per_wall_second: f64,
    /// RF channel evaluations per median-wall second (v2; 0.0 = not
    /// recorded).
    #[serde(default)]
    pub channel_evals_per_wall_second: f64,
}

impl FigureBench {
    /// Builds figure statistics from `--trials N` wall measurements plus
    /// the per-trial work counts the rates divide by (deterministic: the
    /// harness asserts every trial did byte-identical sim work before
    /// calling this). Work counts of 0 yield a 0.0 rate, which
    /// [`BenchSnapshot::metric_map`] reads as "not recorded".
    pub fn from_trials(
        trial_wall_seconds: &[f64],
        reports: u64,
        slots: u64,
        channel_evals: u64,
    ) -> FigureBench {
        let mut sorted = trial_wall_seconds.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median = match n {
            0 => 0.0,
            _ if n % 2 == 1 => sorted[n / 2],
            _ => (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0,
        };
        let mean = sorted.iter().sum::<f64>() / n.max(1) as f64;
        let variance =
            sorted.iter().map(|w| (w - mean) * (w - mean)).sum::<f64>() / n.max(1) as f64;
        // Never divide work by a zero clock reading (coarse timers).
        let denom = median.max(1e-9);
        FigureBench {
            wall_seconds: median,
            reports_per_wall_second: reports as f64 / denom,
            trial_wall_seconds: trial_wall_seconds.to_vec(),
            wall_min_seconds: sorted.first().copied().unwrap_or(0.0),
            wall_stddev_seconds: variance.sqrt(),
            slots_per_wall_second: slots as f64 / denom,
            channel_evals_per_wall_second: channel_evals as f64 / denom,
        }
    }
}

/// One run's performance snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    pub schema_version: u32,
    /// RNG seed the run used — diffs across seeds are meaningless.
    pub seed: u64,
    /// Scale label (`quick` / `full` / …).
    pub scale: String,
    /// True while the committed baseline was produced by the bootstrap
    /// path (identical-seed self-check) rather than a reviewed reference
    /// machine. CI reports but does not hard-fail wall-clock families
    /// either way; the flag marks the baseline's provenance.
    #[serde(default)]
    pub provisional: bool,
    /// Number of wall-clock trials each figure ran (v2). 0 marks a v1
    /// snapshot (one implicit trial, no variance data).
    #[serde(default)]
    pub trials: u32,
    /// Per-figure wall results, keyed by figure name.
    pub figures: BTreeMap<String, FigureBench>,
    /// Registry counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Registry histogram summaries (simulated-time families like
    /// `cycle.duration` gate; wall families are informational).
    pub durations: BTreeMap<String, DurationStats>,
    /// Total host seconds for the whole run.
    pub wall_seconds: f64,
}

impl BenchSnapshot {
    /// Builds a snapshot from a final registry snapshot plus run
    /// identity. Figure-level data is appended by the harness as each
    /// experiment finishes.
    pub fn from_registry(reg: &MetricsRegistry, seed: u64, scale: &str) -> BenchSnapshot {
        let mut durations = BTreeMap::new();
        for (name, h) in reg.histograms() {
            if h.count() == 0 {
                continue;
            }
            durations.insert(
                name.to_string(),
                DurationStats {
                    count: h.count() as usize,
                    mean: h.mean(),
                    p50: h.percentile(50.0).unwrap_or(0.0),
                    p95: h.percentile(95.0).unwrap_or(0.0),
                    p99: h.percentile(99.0).unwrap_or(0.0),
                },
            );
        }
        BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            seed,
            scale: scale.to_string(),
            provisional: false,
            trials: 0,
            figures: BTreeMap::new(),
            counters: reg.counters().map(|(n, v)| (n.to_string(), v)).collect(),
            durations,
            wall_seconds: 0.0,
        }
    }

    /// True when the snapshot carries no comparable aggregates at all —
    /// no figures, no counters, no durations. Diffing against a vacuous
    /// snapshot passes trivially (every metric is "added" or "removed",
    /// nothing gates), which is exactly the failure mode a regression
    /// gate must refuse: the gate would report green forever.
    pub fn is_vacuous(&self) -> bool {
        self.figures.is_empty() && self.counters.is_empty() && self.durations.is_empty()
    }

    /// Loads and schema-checks a snapshot file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<BenchSnapshot, BenchError> {
        let text = fs::read_to_string(path).map_err(BenchError::Io)?;
        let snap: BenchSnapshot = serde_json::from_str(&text).map_err(BenchError::Parse)?;
        if !(BENCH_SCHEMA_MIN..=BENCH_SCHEMA_VERSION).contains(&snap.schema_version) {
            return Err(BenchError::SchemaVersion {
                found: snap.schema_version,
                expected: BENCH_SCHEMA_VERSION,
            });
        }
        Ok(snap)
    }

    /// Serializes the snapshot as pretty JSON (stable key order — every
    /// map is a `BTreeMap` — so committed baselines diff minimally).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes") // lint:allow(panic-policy): snapshot is plain data; serialization cannot fail
    }

    /// Writes the snapshot to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        fs::write(path, self.to_json() + "\n")
    }

    /// Flattens into `name → value` for [`crate::diff::DiffReport`].
    /// Counter totals become `counter.*` (informational), histogram
    /// percentiles `dur.*` for simulated families and `wall.*` for
    /// host-clock families, figure results `fig.<name>.*`
    /// (informational) plus gateable `irr.fig.<name>` throughput.
    pub fn metric_map(&self) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        for (name, v) in &self.counters {
            m.insert(format!("counter.{name}"), *v as f64);
        }
        for (name, d) in &self.durations {
            let family = if name.contains("compute") || name.starts_with("wall") {
                "wall"
            } else {
                "dur"
            };
            m.insert(format!("{family}.{name}.p50"), d.p50);
            m.insert(format!("{family}.{name}.p95"), d.p95);
            m.insert(format!("{family}.{name}.p99"), d.p99);
        }
        for (name, f) in &self.figures {
            m.insert(format!("fig.{name}.wall_seconds"), f.wall_seconds);
            m.insert(
                format!("fig.{name}.reports_per_wall_second"),
                f.reports_per_wall_second,
            );
            // v2 additions only when recorded: a v1 snapshot's defaulted
            // zeros must not masquerade as "the rate collapsed to 0".
            if !f.trial_wall_seconds.is_empty() {
                m.insert(format!("fig.{name}.wall_min_seconds"), f.wall_min_seconds);
                m.insert(
                    format!("fig.{name}.wall_stddev_seconds"),
                    f.wall_stddev_seconds,
                );
            }
            if f.slots_per_wall_second > 0.0 {
                m.insert(
                    format!("fig.{name}.slots_per_wall_second"),
                    f.slots_per_wall_second,
                );
            }
            if f.channel_evals_per_wall_second > 0.0 {
                m.insert(
                    format!("fig.{name}.channel_evals_per_wall_second"),
                    f.channel_evals_per_wall_second,
                );
            }
        }
        m.insert("wall.total_seconds".into(), self.wall_seconds);
        m
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.incr_by("cycle.count", 12);
        reg.incr_by("phase2.reports", 480);
        for k in 0..10 {
            reg.observe("cycle.duration", 0.5 + 0.01 * k as f64);
            reg.observe("cycle.compute_seconds", 1e-4);
        }
        reg
    }

    #[test]
    fn snapshot_captures_registry_aggregates() {
        let snap = BenchSnapshot::from_registry(&sample_registry(), 7, "quick");
        assert_eq!(snap.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(snap.counters["cycle.count"], 12);
        assert_eq!(snap.durations["cycle.duration"].count, 10);
        assert!(snap.durations["cycle.duration"].p50 > 0.0);
    }

    #[test]
    fn json_metric_map_routes_families() {
        let mut snap = BenchSnapshot::from_registry(&sample_registry(), 7, "quick");
        snap.figures.insert(
            "fig12".into(),
            FigureBench {
                wall_seconds: 1.5,
                reports_per_wall_second: 320.0,
                ..FigureBench::default()
            },
        );
        snap.wall_seconds = 2.0;
        let m = snap.metric_map();
        assert!(m.contains_key("counter.cycle.count"));
        assert!(m.contains_key("dur.cycle.duration.p95"));
        // Host-clock histogram goes to the ungated wall family.
        assert!(m.contains_key("wall.cycle.compute_seconds.p95"));
        assert!(m.contains_key("fig.fig12.wall_seconds"));
        // v1-style figure: no trial data, so no v2 keys appear.
        assert!(!m.contains_key("fig.fig12.wall_stddev_seconds"));
        assert!(!m.contains_key("fig.fig12.slots_per_wall_second"));
        // Exact equality: the fixture stores the literal 2.0, untouched.
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(m["wall.total_seconds"], 2.0);
        }
    }

    #[test]
    fn json_round_trips_and_checks_schema() {
        let dir = std::env::temp_dir().join("tagwatch-obs-bench-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_t.json");
        let mut snap = BenchSnapshot::from_registry(&sample_registry(), 7, "quick");
        snap.provisional = true;
        snap.save(&path).unwrap();
        let back = BenchSnapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        assert!(back.provisional);

        // Wrong schema version must refuse to load.
        let mut bad = snap.clone();
        bad.schema_version = 99;
        fs::write(&path, bad.to_json()).unwrap();
        match BenchSnapshot::load(&path) {
            Err(BenchError::SchemaVersion { found: 99, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Missing `provisional` defaults to false (older snapshots).
        let text = snap.to_json().replace("  \"provisional\": true,\n", "");
        fs::write(&path, text).unwrap();
        assert!(!BenchSnapshot::load(&path).unwrap().provisional);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_snapshots_are_vacuous_and_populated_ones_are_not() {
        let empty = BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            seed: 7,
            scale: "quick".into(),
            ..BenchSnapshot::default()
        };
        assert!(empty.is_vacuous());
        let populated = BenchSnapshot::from_registry(&sample_registry(), 7, "quick");
        assert!(!populated.is_vacuous());
        // A single counter is enough to make a snapshot comparable.
        let mut one = empty.clone();
        one.counters.insert("cycle.count".into(), 1);
        assert!(!one.is_vacuous());
    }

    #[test]
    fn v2_figure_rates_surface_in_the_metric_map() {
        let mut snap = BenchSnapshot::from_registry(&sample_registry(), 7, "quick");
        snap.trials = 3;
        snap.figures.insert(
            "obs-run".into(),
            FigureBench {
                wall_seconds: 2.0,
                reports_per_wall_second: 100.0,
                trial_wall_seconds: vec![2.1, 2.0, 1.9],
                wall_min_seconds: 1.9,
                wall_stddev_seconds: 0.0816,
                slots_per_wall_second: 5000.0,
                channel_evals_per_wall_second: 800.0,
            },
        );
        let m = snap.metric_map();
        assert_eq!(m["fig.obs-run.slots_per_wall_second"], 5000.0);
        assert_eq!(m["fig.obs-run.channel_evals_per_wall_second"], 800.0);
        assert_eq!(m["fig.obs-run.wall_min_seconds"], 1.9);
        assert_eq!(m["fig.obs-run.wall_stddev_seconds"], 0.0816);
        // Rates are wall-side (fig.*): informational in `obs diff`.
        use crate::diff::{direction_for, Direction};
        assert_eq!(
            direction_for("fig.obs-run.slots_per_wall_second"),
            Direction::Informational
        );
    }

    #[test]
    fn from_trials_takes_the_median_and_population_stddev() {
        let f = FigureBench::from_trials(&[3.0, 1.0, 2.0], 200, 10_000, 1_000);
        assert_eq!(f.wall_seconds, 2.0, "median of an odd trial count");
        assert_eq!(f.wall_min_seconds, 1.0);
        // Population stddev of {1,2,3} = sqrt(2/3).
        assert!((f.wall_stddev_seconds - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(f.trial_wall_seconds, vec![3.0, 1.0, 2.0], "run order kept");
        assert_eq!(f.reports_per_wall_second, 100.0);
        assert_eq!(f.slots_per_wall_second, 5_000.0);
        assert_eq!(f.channel_evals_per_wall_second, 500.0);

        let even = FigureBench::from_trials(&[1.0, 3.0], 0, 0, 0);
        assert_eq!(even.wall_seconds, 2.0, "median of an even trial count");
        assert_eq!(even.slots_per_wall_second, 0.0, "no work recorded");
    }

    #[test]
    fn v1_snapshots_still_load_with_defaults() {
        let dir = std::env::temp_dir().join("tagwatch-obs-bench-v1-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_v1.json");
        // A hand-written v1 document: no trials, no v2 figure fields.
        let v1 = r#"{
  "schema_version": 1,
  "seed": 7,
  "scale": "quick",
  "figures": {
    "obs-run": { "wall_seconds": 1.5, "reports_per_wall_second": 320.0 }
  },
  "counters": { "cycle.count": 12 },
  "durations": {},
  "wall_seconds": 1.5
}"#;
        fs::write(&path, v1).unwrap();
        let snap = BenchSnapshot::load(&path).unwrap();
        assert_eq!(snap.schema_version, 1);
        assert_eq!(snap.trials, 0, "v1 marks the missing trial data");
        let f = &snap.figures["obs-run"];
        assert!(f.trial_wall_seconds.is_empty());
        assert_eq!(f.wall_stddev_seconds, 0.0);
        assert_eq!(f.slots_per_wall_second, 0.0);
        fs::remove_file(&path).ok();
    }
}
