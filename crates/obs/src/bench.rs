//! Machine-readable BENCH snapshots: a schema-versioned summary of one
//! `repro` run, written by `repro --bench-json` and committed as
//! `BENCH_<n>.json` so `ci.sh --obs` can gate performance regressions
//! with `obs diff`.
//!
//! The schema is deliberately small — registry-level aggregates only, no
//! per-event data — so a snapshot is a few KB, diffs cleanly, and stays
//! stable across scene sizes at a fixed `(seed, scale)`.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use tagwatch_telemetry::MetricsRegistry;

use crate::analyze::DurationStats;

/// Version of the snapshot schema this crate writes. Loading a snapshot
/// with any other version is an error — a silent cross-version diff would
/// gate on apples vs oranges.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum BenchError {
    Io(io::Error),
    Parse(serde_json::Error),
    /// The file declares a schema version this crate does not speak.
    SchemaVersion {
        found: u32,
        expected: u32,
    },
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Io(e) => write!(f, "cannot read snapshot: {e}"),
            BenchError::Parse(e) => write!(f, "snapshot is not valid BENCH JSON: {e}"),
            BenchError::SchemaVersion { found, expected } => write!(
                f,
                "snapshot schema version {found} is not the supported version {expected}; \
                 regenerate it with the current `repro --bench-json`"
            ),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io(e) => Some(e),
            BenchError::Parse(e) => Some(e),
            BenchError::SchemaVersion { .. } => None,
        }
    }
}

/// Wall-clock and throughput summary for one figure/experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FigureBench {
    /// Host seconds the experiment took.
    pub wall_seconds: f64,
    /// Phase II reports per wall second over the experiment — the bench's
    /// cheap throughput proxy (simulated work done per host second).
    pub reports_per_wall_second: f64,
}

/// One run's performance snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    pub schema_version: u32,
    /// RNG seed the run used — diffs across seeds are meaningless.
    pub seed: u64,
    /// Scale label (`quick` / `full` / …).
    pub scale: String,
    /// True while the committed baseline was produced by the bootstrap
    /// path (identical-seed self-check) rather than a reviewed reference
    /// machine. CI reports but does not hard-fail wall-clock families
    /// either way; the flag marks the baseline's provenance.
    #[serde(default)]
    pub provisional: bool,
    /// Per-figure wall results, keyed by figure name.
    pub figures: BTreeMap<String, FigureBench>,
    /// Registry counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Registry histogram summaries (simulated-time families like
    /// `cycle.duration` gate; wall families are informational).
    pub durations: BTreeMap<String, DurationStats>,
    /// Total host seconds for the whole run.
    pub wall_seconds: f64,
}

impl BenchSnapshot {
    /// Builds a snapshot from a final registry snapshot plus run
    /// identity. Figure-level data is appended by the harness as each
    /// experiment finishes.
    pub fn from_registry(reg: &MetricsRegistry, seed: u64, scale: &str) -> BenchSnapshot {
        let mut durations = BTreeMap::new();
        for (name, h) in reg.histograms() {
            if h.count() == 0 {
                continue;
            }
            durations.insert(
                name.to_string(),
                DurationStats {
                    count: h.count() as usize,
                    mean: h.mean(),
                    p50: h.percentile(50.0).unwrap_or(0.0),
                    p95: h.percentile(95.0).unwrap_or(0.0),
                    p99: h.percentile(99.0).unwrap_or(0.0),
                },
            );
        }
        BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            seed,
            scale: scale.to_string(),
            provisional: false,
            figures: BTreeMap::new(),
            counters: reg.counters().map(|(n, v)| (n.to_string(), v)).collect(),
            durations,
            wall_seconds: 0.0,
        }
    }

    /// True when the snapshot carries no comparable aggregates at all —
    /// no figures, no counters, no durations. Diffing against a vacuous
    /// snapshot passes trivially (every metric is "added" or "removed",
    /// nothing gates), which is exactly the failure mode a regression
    /// gate must refuse: the gate would report green forever.
    pub fn is_vacuous(&self) -> bool {
        self.figures.is_empty() && self.counters.is_empty() && self.durations.is_empty()
    }

    /// Loads and schema-checks a snapshot file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<BenchSnapshot, BenchError> {
        let text = fs::read_to_string(path).map_err(BenchError::Io)?;
        let snap: BenchSnapshot = serde_json::from_str(&text).map_err(BenchError::Parse)?;
        if snap.schema_version != BENCH_SCHEMA_VERSION {
            return Err(BenchError::SchemaVersion {
                found: snap.schema_version,
                expected: BENCH_SCHEMA_VERSION,
            });
        }
        Ok(snap)
    }

    /// Serializes the snapshot as pretty JSON (stable key order — every
    /// map is a `BTreeMap` — so committed baselines diff minimally).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes") // lint:allow(panic-policy): snapshot is plain data; serialization cannot fail
    }

    /// Writes the snapshot to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        fs::write(path, self.to_json() + "\n")
    }

    /// Flattens into `name → value` for [`crate::diff::DiffReport`].
    /// Counter totals become `counter.*` (informational), histogram
    /// percentiles `dur.*` for simulated families and `wall.*` for
    /// host-clock families, figure results `fig.<name>.*`
    /// (informational) plus gateable `irr.fig.<name>` throughput.
    pub fn metric_map(&self) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        for (name, v) in &self.counters {
            m.insert(format!("counter.{name}"), *v as f64);
        }
        for (name, d) in &self.durations {
            let family = if name.contains("compute") || name.starts_with("wall") {
                "wall"
            } else {
                "dur"
            };
            m.insert(format!("{family}.{name}.p50"), d.p50);
            m.insert(format!("{family}.{name}.p95"), d.p95);
            m.insert(format!("{family}.{name}.p99"), d.p99);
        }
        for (name, f) in &self.figures {
            m.insert(format!("fig.{name}.wall_seconds"), f.wall_seconds);
            m.insert(
                format!("fig.{name}.reports_per_wall_second"),
                f.reports_per_wall_second,
            );
        }
        m.insert("wall.total_seconds".into(), self.wall_seconds);
        m
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.incr_by("cycle.count", 12);
        reg.incr_by("phase2.reports", 480);
        for k in 0..10 {
            reg.observe("cycle.duration", 0.5 + 0.01 * k as f64);
            reg.observe("cycle.compute_seconds", 1e-4);
        }
        reg
    }

    #[test]
    fn snapshot_captures_registry_aggregates() {
        let snap = BenchSnapshot::from_registry(&sample_registry(), 7, "quick");
        assert_eq!(snap.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(snap.counters["cycle.count"], 12);
        assert_eq!(snap.durations["cycle.duration"].count, 10);
        assert!(snap.durations["cycle.duration"].p50 > 0.0);
    }

    #[test]
    fn json_metric_map_routes_families() {
        let mut snap = BenchSnapshot::from_registry(&sample_registry(), 7, "quick");
        snap.figures.insert(
            "fig12".into(),
            FigureBench {
                wall_seconds: 1.5,
                reports_per_wall_second: 320.0,
            },
        );
        snap.wall_seconds = 2.0;
        let m = snap.metric_map();
        assert!(m.contains_key("counter.cycle.count"));
        assert!(m.contains_key("dur.cycle.duration.p95"));
        // Host-clock histogram goes to the ungated wall family.
        assert!(m.contains_key("wall.cycle.compute_seconds.p95"));
        assert!(m.contains_key("fig.fig12.wall_seconds"));
        // Exact equality: the fixture stores the literal 2.0, untouched.
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(m["wall.total_seconds"], 2.0);
        }
    }

    #[test]
    fn json_round_trips_and_checks_schema() {
        let dir = std::env::temp_dir().join("tagwatch-obs-bench-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_t.json");
        let mut snap = BenchSnapshot::from_registry(&sample_registry(), 7, "quick");
        snap.provisional = true;
        snap.save(&path).unwrap();
        let back = BenchSnapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        assert!(back.provisional);

        // Wrong schema version must refuse to load.
        let mut bad = snap.clone();
        bad.schema_version = 99;
        fs::write(&path, bad.to_json()).unwrap();
        match BenchSnapshot::load(&path) {
            Err(BenchError::SchemaVersion { found: 99, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Missing `provisional` defaults to false (older snapshots).
        let text = snap.to_json().replace("  \"provisional\": true,\n", "");
        fs::write(&path, text).unwrap();
        assert!(!BenchSnapshot::load(&path).unwrap().provisional);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_snapshots_are_vacuous_and_populated_ones_are_not() {
        let empty = BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            seed: 7,
            scale: "quick".into(),
            ..BenchSnapshot::default()
        };
        assert!(empty.is_vacuous());
        let populated = BenchSnapshot::from_registry(&sample_registry(), 7, "quick");
        assert!(!populated.is_vacuous());
        // A single counter is enough to make a snapshot comparable.
        let mut one = empty.clone();
        one.counters.insert("cycle.count".into(), 1);
        assert!(!one.is_vacuous());
    }
}
