//! Trend analysis over a series of bench snapshots.
//!
//! `obs diff` compares exactly two snapshots with a pass/fail verdict;
//! this module answers the longitudinal question — *how has each metric
//! moved across the last N gated runs?* Feed it `BENCH_1.json
//! BENCH_2.json …` (any paths, compared in the order given) and it lines
//! up every metric family the snapshots share: per-figure wall clock,
//! counter totals, duration percentiles, inventory round rate. For each
//! metric it reports the full value trajectory plus the relative change
//! from first to last appearance, classified with the same
//! better/worse/informational policy as the regression gate
//! ([`crate::diff::direction_for`]), so a slow drift that never trips the
//! ±10% gate in any single diff is still visible across the series.

use std::fmt;
use std::path::Path;

use crate::bench::{BenchError, BenchSnapshot};
use crate::diff::{direction_for, Direction};

/// One metric's values across the snapshot series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSeries {
    pub name: String,
    pub direction: Direction,
    /// One entry per snapshot; `None` where the snapshot lacks the metric.
    pub values: Vec<Option<f64>>,
    /// Relative change from first to last present value, when both exist
    /// and the first is non-zero.
    pub relative_change: Option<f64>,
}

impl TrendSeries {
    /// True when the first→last move is in the metric's "worse"
    /// direction by more than `threshold` (e.g. `0.10`). Informational
    /// metrics never drift.
    pub fn drifted_worse(&self, threshold: f64) -> bool {
        match (self.direction, self.relative_change) {
            (Direction::HigherIsBetter, Some(rel)) => rel < -threshold,
            (Direction::LowerIsBetter, Some(rel)) => rel > threshold,
            _ => false,
        }
    }
}

/// Trajectories for every metric appearing in at least one snapshot.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// Snapshot labels, in series order (file stems when loaded from
    /// disk).
    pub labels: Vec<String>,
    /// True where the corresponding snapshot is provisional.
    pub provisional: Vec<bool>,
    /// Wall-clock trials each snapshot averaged over (0 for schema-v1
    /// snapshots, which recorded a single unlabelled run).
    pub trials: Vec<u32>,
    pub series: Vec<TrendSeries>,
}

impl TrendReport {
    /// Builds trajectories from labelled snapshots, preserving order.
    pub fn analyze(labelled: &[(String, &BenchSnapshot)]) -> TrendReport {
        let labels: Vec<String> = labelled.iter().map(|(l, _)| l.clone()).collect();
        let provisional: Vec<bool> = labelled.iter().map(|(_, s)| s.provisional).collect();
        let trials: Vec<u32> = labelled.iter().map(|(_, s)| s.trials).collect();
        let maps: Vec<_> = labelled.iter().map(|(_, s)| s.metric_map()).collect();

        let mut names: Vec<&String> = maps.iter().flat_map(|m| m.keys()).collect();
        names.sort();
        names.dedup();

        let series = names
            .into_iter()
            .map(|name| {
                let values: Vec<Option<f64>> = maps.iter().map(|m| m.get(name).copied()).collect();
                let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
                let relative_change = match (present.first(), present.last()) {
                    (Some(&first), Some(&last)) if present.len() > 1 && first != 0.0 => {
                        Some((last - first) / first)
                    }
                    _ => None,
                };
                TrendSeries {
                    name: name.clone(),
                    direction: direction_for(name),
                    values,
                    relative_change,
                }
            })
            .collect();

        TrendReport {
            labels,
            provisional,
            trials,
            series,
        }
    }

    /// Loads snapshots from paths (labelled by file stem) and analyzes
    /// them in the order given.
    pub fn load_series<P: AsRef<Path>>(paths: &[P]) -> Result<TrendReport, BenchError> {
        let mut owned: Vec<(String, BenchSnapshot)> = Vec::with_capacity(paths.len());
        for p in paths {
            let p = p.as_ref();
            let label = p.file_stem().map_or_else(
                || p.display().to_string(),
                |s| s.to_string_lossy().into_owned(),
            );
            owned.push((label, BenchSnapshot::load(p)?));
        }
        let labelled: Vec<(String, &BenchSnapshot)> =
            owned.iter().map(|(l, s)| (l.clone(), s)).collect();
        Ok(TrendReport::analyze(&labelled))
    }

    /// Metric names whose first→last drift exceeds `threshold` in the
    /// worse direction.
    pub fn drifted_names(&self, threshold: f64) -> Vec<&str> {
        self.series
            .iter()
            .filter(|s| s.drifted_worse(threshold))
            .map(|s| s.name.as_str())
            .collect()
    }
}

impl fmt::Display for TrendReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trend across {} snapshots:", self.labels.len())?;
        for ((label, prov), trials) in self.labels.iter().zip(&self.provisional).zip(&self.trials) {
            write!(f, " {}{}", label, if *prov { "*" } else { "" })?;
            // A ×1 marker would just be noise: single-trial wall metrics
            // are the plain measurements they always were.
            if *trials > 1 {
                write!(f, "(×{trials})")?;
            }
        }
        writeln!(f)?;
        if self.provisional.iter().any(|p| *p) {
            writeln!(f, "  (* provisional snapshot)")?;
        }
        if self.trials.iter().any(|t| *t > 1) {
            writeln!(
                f,
                "  (×N: wall metrics are the median of N trials; see *.wall_stddev_seconds)"
            )?;
        }
        for s in &self.series {
            write!(f, "  {:<28}", s.name)?;
            for v in &s.values {
                match v {
                    Some(v) => write!(f, " {v:>12.4}")?,
                    None => write!(f, " {:>12}", "-")?,
                }
            }
            match s.relative_change {
                Some(rel) => {
                    let marker = if s.drifted_worse(0.10) {
                        "  ⚠ worse"
                    } else {
                        ""
                    };
                    writeln!(f, "  ({:+.1}%){marker}", rel * 100.0)?;
                }
                None => writeln!(f)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use std::collections::BTreeMap;

    fn snap(wall: f64, p2_rate: f64) -> BenchSnapshot {
        let mut counters = BTreeMap::new();
        counters.insert("cycle.count".to_string(), 20);
        let mut figures = BTreeMap::new();
        figures.insert(
            "fig9_rate".to_string(),
            crate::bench::FigureBench {
                wall_seconds: wall,
                reports_per_wall_second: p2_rate,
                ..crate::bench::FigureBench::default()
            },
        );
        BenchSnapshot {
            schema_version: crate::bench::BENCH_SCHEMA_VERSION,
            seed: 7,
            scale: "quick".to_string(),
            provisional: false,
            trials: 0,
            figures,
            counters,
            durations: BTreeMap::new(),
            wall_seconds: wall * 2.0,
        }
    }

    #[test]
    fn trajectories_track_each_metric_across_the_series() {
        let a = snap(1.0, 100.0);
        let b = snap(1.2, 90.0);
        let c = snap(1.4, 80.0);
        let labelled = vec![
            ("BENCH_1".to_string(), &a),
            ("BENCH_2".to_string(), &b),
            ("BENCH_3".to_string(), &c),
        ];
        let report = TrendReport::analyze(&labelled);
        assert_eq!(report.labels, vec!["BENCH_1", "BENCH_2", "BENCH_3"]);

        let wall = report
            .series
            .iter()
            .find(|s| s.name == "fig.fig9_rate.wall_seconds")
            .unwrap();
        assert_eq!(wall.values, vec![Some(1.0), Some(1.2), Some(1.4)]);
        let rel = wall.relative_change.unwrap();
        assert!((rel - 0.4).abs() < 1e-9, "{rel}");
        // fig.* wall metrics are informational — never flagged as drift.
        assert!(!wall.drifted_worse(0.10));

        let text = report.to_string();
        assert!(text.contains("fig.fig9_rate.wall_seconds"), "{text}");
        assert!(text.contains("BENCH_2"), "{text}");
    }

    #[test]
    fn missing_metrics_yield_gaps_not_errors() {
        let a = snap(1.0, 100.0);
        let mut b = snap(1.1, 95.0);
        b.figures.clear();
        let labelled = vec![("a".to_string(), &a), ("b".to_string(), &b)];
        let report = TrendReport::analyze(&labelled);
        let rate = report
            .series
            .iter()
            .find(|s| s.name == "fig.fig9_rate.reports_per_wall_second")
            .unwrap();
        assert_eq!(rate.values, vec![Some(100.0), None]);
        // A single present value is a point, not a trend.
        assert_eq!(rate.relative_change, None);
    }

    #[test]
    fn v2_trial_counts_and_stddev_surface_in_the_report() {
        let a = snap(1.0, 100.0);
        let mut b = snap(1.1, 95.0);
        b.trials = 5;
        let fig = b.figures.get_mut("fig9_rate").unwrap();
        fig.trial_wall_seconds = vec![1.0, 1.1, 1.2, 1.1, 1.1];
        fig.wall_stddev_seconds = 0.063;
        let labelled = vec![("old".to_string(), &a), ("new".to_string(), &b)];
        let report = TrendReport::analyze(&labelled);
        assert_eq!(report.trials, vec![0, 5]);
        let stddev = report
            .series
            .iter()
            .find(|s| s.name == "fig.fig9_rate.wall_stddev_seconds")
            .unwrap();
        // v1 snapshot has no trial data, so the stddev column shows a gap.
        assert_eq!(stddev.values, vec![None, Some(0.063)]);
        let text = report.to_string();
        assert!(text.contains("new(×5)"), "{text}");
        assert!(text.contains("median of N trials"), "{text}");
        assert!(!text.contains("old(×"), "{text}");
    }

    #[test]
    fn directional_drift_is_flagged_against_the_gate_policy() {
        let mk = |p95: f64| {
            let mut s = snap(1.0, 100.0);
            s.durations.insert(
                "cycle".to_string(),
                crate::analyze::DurationStats {
                    count: 20,
                    mean: p95 * 0.7,
                    p50: p95 * 0.8,
                    p95,
                    p99: p95 * 1.05,
                },
            );
            s
        };
        let a = mk(0.10);
        let b = mk(0.13);
        let labelled = vec![("a".to_string(), &a), ("b".to_string(), &b)];
        let report = TrendReport::analyze(&labelled);
        let drifted = report.drifted_names(0.10);
        assert!(drifted.contains(&"dur.cycle.p95"), "{drifted:?}");
        assert!(report.to_string().contains("worse"), "{report}");
    }
}
