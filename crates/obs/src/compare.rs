//! A/B performance comparison with a same-work precondition.
//!
//! `obs diff` answers "did the numbers move?"; this module answers the
//! sharper optimization question: *same sim work, different host cost?*
//! Comparing wall clocks is only meaningful when both runs did byte-for-
//! byte identical simulated work — same seed, same scale, and identical
//! counter totals (including the deterministic `perf.work.*` work
//! counters). So a comparison runs in two stages:
//!
//! 1. **Comparability** — every sim-side counter must match exactly. A
//!    mismatch means the two runs are different workloads (seed drift, a
//!    code change that altered the protocol, a nondeterminism bug) and
//!    any wall-clock verdict would be meaningless; the report refuses
//!    with the differing counters named (`obs compare` exits 2).
//! 2. **Wall deltas** — only then are the host-side figures compared:
//!    per-figure median walls and work rates (snapshot mode), or
//!    per-span-family self time (trace mode, via the [`crate::hotspots`]
//!    machinery with a fixed zero overhead estimate so the attribution is
//!    byte-reproducible).
//!
//! Rate verdicts are variance-aware: `--trials N` snapshots carry a wall
//! stddev, and a rate only counts as **regressed** when the median moved
//! beyond `k·σ` (σ summed across both sides, default `k` =
//! [`DEFAULT_K`]) *and* beyond the [`MIN_RELATIVE_REGRESSION`] floor —
//! both guards exist so a loaded CI host does not fail the gate on timer
//! noise. Sides without variance data (v1 snapshots, single trials)
//! yield informational verdicts only.

use std::collections::BTreeSet;
use std::fmt;

use serde::Serialize;
use tagwatch_telemetry::OverheadEstimate;

use crate::bench::{BenchSnapshot, FigureBench};
use crate::hotspots::HotspotReport;
use crate::model::Trace;

/// Default noise multiplier: a rate must move beyond `k·σ` to count.
pub const DEFAULT_K: f64 = 3.0;

/// Relative floor under which a regression is never flagged, whatever
/// the stddev says. Quick-scale figures run for milliseconds; a tiny σ
/// estimated from 5 trials would otherwise let scheduler jitter fail
/// the gate.
pub const MIN_RELATIVE_REGRESSION: f64 = 0.25;

/// How one rate moved between the two runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RateVerdict {
    /// Median improved beyond `k·σ`.
    Improved,
    /// Median regressed beyond `k·σ` *and* the relative floor — the only
    /// verdict that fails [`CompareReport::passed`].
    Regressed,
    /// Moved, but within the noise band.
    WithinNoise,
    /// No variance data on either side — delta reported, never gated.
    Informational,
}

/// One work rate (work units per wall second) compared across runs.
#[derive(Debug, Clone, Serialize)]
pub struct RateDelta {
    pub figure: String,
    /// Which rate: `reports`, `slots`, or `channel_evals` per wall second.
    pub metric: &'static str,
    pub a: f64,
    pub b: f64,
    /// `b / a` — above 1.0 means run B does more work per host second.
    pub speedup: f64,
    /// Summed rate-space noise band (σ_A + σ_B), derived from each
    /// side's wall stddev.
    pub sigma: f64,
    pub verdict: RateVerdict,
}

/// A minimum-speedup demand (`obs compare --require-speedup
/// figures.FIG.METRIC:FACTOR`): run B's best-trial rate must be at
/// least `factor` times run A's, on top of the usual comparability and
/// no-regression gating.
///
/// Best-trial (minimum-wall) rates are used rather than the median-based
/// figures so the demand measures *attainable* throughput: a loaded CI
/// host inflates medians long before it inflates the best of N trials.
/// Single-trial snapshots have `min == median`, so a `--trials 1`
/// baseline compares directly.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRequirement {
    /// Figure name (e.g. `obs-run`).
    pub figure: String,
    /// One of the three rate metrics (`reports_per_wall_second`,
    /// `slots_per_wall_second`, `channel_evals_per_wall_second`).
    pub metric: String,
    /// Minimum acceptable `rate_b / rate_a`.
    pub factor: f64,
}

impl SpeedupRequirement {
    /// Parses `[figures.]FIG.METRIC:FACTOR`, e.g.
    /// `figures.obs-run.reports_per_wall_second:5.0`.
    pub fn parse(spec: &str) -> Result<SpeedupRequirement, String> {
        let (path, factor) = spec.rsplit_once(':').ok_or_else(|| {
            format!("--require-speedup wants [figures.]FIG.METRIC:FACTOR, got {spec:?}")
        })?;
        let factor: f64 = factor
            .parse()
            .map_err(|_| format!("bad speedup factor in {spec:?}"))?;
        if !factor.is_finite() || factor <= 0.0 {
            return Err(format!("speedup factor must be finite and > 0 in {spec:?}"));
        }
        let path = path.strip_prefix("figures.").unwrap_or(path);
        let (figure, metric) = path.rsplit_once('.').ok_or_else(|| {
            format!("--require-speedup wants [figures.]FIG.METRIC:FACTOR, got {spec:?}")
        })?;
        if rate_metric(&FigureBench::default(), metric).is_none() {
            return Err(format!(
                "unknown rate metric {metric:?} (expected reports_per_wall_second, \
                 slots_per_wall_second, or channel_evals_per_wall_second)"
            ));
        }
        Ok(SpeedupRequirement {
            figure: figure.to_string(),
            metric: metric.to_string(),
            factor,
        })
    }
}

/// The outcome of one [`SpeedupRequirement`] check.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpeedupCheck {
    pub figure: String,
    pub metric: String,
    /// Minimum acceptable speedup.
    pub required: f64,
    /// Best-trial rate on each side.
    pub a: f64,
    pub b: f64,
    /// `b / a`.
    pub speedup: f64,
    /// `speedup >= required`. False fails [`CompareReport::passed`].
    pub satisfied: bool,
}

/// Reads one of the three median-based rate figures by name.
fn rate_metric(f: &FigureBench, metric: &str) -> Option<f64> {
    match metric {
        "reports_per_wall_second" => Some(f.reports_per_wall_second),
        "slots_per_wall_second" => Some(f.slots_per_wall_second),
        "channel_evals_per_wall_second" => Some(f.channel_evals_per_wall_second),
        _ => None,
    }
}

/// The metric rescaled from the median wall to the best-trial wall
/// (`rate · median/min`): work is trial-invariant, so the best-trial
/// rate is the recorded rate scaled by how much faster the best trial
/// ran. Snapshots without trial data (`min == 0`) keep the median rate.
fn best_trial_rate(f: &FigureBench, metric: &str) -> Option<f64> {
    let median = rate_metric(f, metric).filter(|r| *r > 0.0)?;
    if f.wall_min_seconds > 0.0 && f.wall_seconds > 0.0 {
        Some(median * f.wall_seconds / f.wall_min_seconds)
    } else {
        Some(median)
    }
}

/// Evaluates one speedup requirement against two snapshots. Errors name
/// the missing figure or unrecorded metric — a gate referencing a figure
/// the run never produced must fail loudly, not vacuously pass.
pub fn check_speedup(
    a: &BenchSnapshot,
    b: &BenchSnapshot,
    req: &SpeedupRequirement,
) -> Result<SpeedupCheck, String> {
    let side = |snap: &BenchSnapshot, label: &str| -> Result<f64, String> {
        let f = snap
            .figures
            .get(&req.figure)
            .ok_or_else(|| format!("run {label} has no figure {:?}", req.figure))?;
        best_trial_rate(f, &req.metric).ok_or_else(|| {
            format!(
                "run {label} figure {:?} did not record {:?}",
                req.figure, req.metric
            )
        })
    };
    let ra = side(a, "A")?;
    let rb = side(b, "B")?;
    let speedup = rb / ra;
    Ok(SpeedupCheck {
        figure: req.figure.clone(),
        metric: req.metric.clone(),
        required: req.factor,
        a: ra,
        b: rb,
        speedup,
        satisfied: speedup >= req.factor,
    })
}

/// One figure's wall clock compared across runs (informational — wall
/// medians gate only through the rate verdicts).
#[derive(Debug, Clone, Serialize)]
pub struct WallDelta {
    pub figure: String,
    pub a_seconds: f64,
    pub b_seconds: f64,
    pub a_stddev: f64,
    pub b_stddev: f64,
    /// `(b - a) / a`.
    pub relative: f64,
}

/// One span family's self time compared across traces (trace mode).
/// Sim-clock families are comparability evidence, not deltas — they are
/// checked bit-equal before this table is built — so every entry here is
/// a wall family.
#[derive(Debug, Clone, Serialize)]
pub struct FamilyDelta {
    pub name: String,
    pub a_self_seconds: f64,
    pub b_self_seconds: f64,
    pub a_total_seconds: f64,
    pub b_total_seconds: f64,
}

/// The full comparison verdict.
#[derive(Debug, Clone, Serialize)]
pub struct CompareReport {
    /// True when both runs did identical sim work. False short-circuits
    /// everything else.
    pub comparable: bool,
    /// Why not, when `comparable` is false (first mismatches, capped).
    pub mismatches: Vec<String>,
    /// Noise multiplier the rate verdicts used.
    pub k: f64,
    pub rates: Vec<RateDelta>,
    pub walls: Vec<WallDelta>,
    /// Trace mode only: per-wall-family self/total time side by side.
    pub families: Vec<FamilyDelta>,
    /// `--require-speedup` check outcomes (snapshot mode; attached by
    /// the caller via [`CompareReport::require_speedups`]). Any
    /// unsatisfied entry fails [`CompareReport::passed`].
    pub speedups: Vec<SpeedupCheck>,
}

/// Caps `mismatches` so a completely divergent pair stays readable.
const MAX_MISMATCHES: usize = 8;

fn push_mismatch(mismatches: &mut Vec<String>, skipped: &mut usize, msg: String) {
    if mismatches.len() < MAX_MISMATCHES {
        mismatches.push(msg);
    } else {
        *skipped += 1;
    }
}

impl CompareReport {
    /// True when the runs were comparable, no rate regressed beyond the
    /// noise band, and every attached speedup requirement is satisfied.
    pub fn passed(&self) -> bool {
        self.comparable
            && !self
                .rates
                .iter()
                .any(|r| r.verdict == RateVerdict::Regressed)
            && self.speedups.iter().all(|s| s.satisfied)
    }

    /// Evaluates `--require-speedup` demands against the two snapshots
    /// this report compared and attaches the outcomes (see
    /// [`check_speedup`]). Skipped when the runs were not comparable —
    /// a speedup between different workloads is meaningless, and the
    /// report already fails. Errors if a requirement names a figure or
    /// metric neither run recorded.
    pub fn require_speedups(
        &mut self,
        a: &BenchSnapshot,
        b: &BenchSnapshot,
        reqs: &[SpeedupRequirement],
    ) -> Result<(), String> {
        if !self.comparable {
            return Ok(());
        }
        for req in reqs {
            self.speedups.push(check_speedup(a, b, req)?);
        }
        Ok(())
    }

    /// Compares two bench snapshots (`repro --bench-json`, ideally with
    /// `--trials N` so the noise band is known).
    pub fn snapshots(a: &BenchSnapshot, b: &BenchSnapshot, k: f64) -> CompareReport {
        let mut mismatches = Vec::new();
        let mut skipped = 0usize;
        if a.seed != b.seed {
            mismatches.push(format!("seed {} vs {}", a.seed, b.seed));
        }
        if a.scale != b.scale {
            mismatches.push(format!("scale {:?} vs {:?}", a.scale, b.scale));
        }
        let names: BTreeSet<&String> = a.counters.keys().chain(b.counters.keys()).collect();
        for name in names {
            let (va, vb) = (a.counters.get(name), b.counters.get(name));
            if va != vb {
                let show =
                    |v: Option<&u64>| v.map_or_else(|| "absent".to_string(), ToString::to_string);
                push_mismatch(
                    &mut mismatches,
                    &mut skipped,
                    format!("counter {name}: {} vs {}", show(va), show(vb)),
                );
            }
        }
        if skipped > 0 {
            mismatches.push(format!("… and {skipped} more differing counters"));
        }
        if !mismatches.is_empty() {
            return CompareReport {
                comparable: false,
                mismatches,
                k,
                rates: Vec::new(),
                walls: Vec::new(),
                families: Vec::new(),
                speedups: Vec::new(),
            };
        }

        let mut rates = Vec::new();
        let mut walls = Vec::new();
        for (name, fa) in &a.figures {
            let Some(fb) = b.figures.get(name) else {
                continue;
            };
            walls.push(WallDelta {
                figure: name.clone(),
                a_seconds: fa.wall_seconds,
                b_seconds: fb.wall_seconds,
                a_stddev: fa.wall_stddev_seconds,
                b_stddev: fb.wall_stddev_seconds,
                relative: (fb.wall_seconds - fa.wall_seconds) / fa.wall_seconds.max(1e-12),
            });
            let pairs: [(&'static str, f64, f64); 3] = [
                (
                    "reports_per_wall_second",
                    fa.reports_per_wall_second,
                    fb.reports_per_wall_second,
                ),
                (
                    "slots_per_wall_second",
                    fa.slots_per_wall_second,
                    fb.slots_per_wall_second,
                ),
                (
                    "channel_evals_per_wall_second",
                    fa.channel_evals_per_wall_second,
                    fb.channel_evals_per_wall_second,
                ),
            ];
            for (metric, ra, rb) in pairs {
                if ra <= 0.0 || rb <= 0.0 {
                    continue;
                }
                // A rate's noise band, propagated from the wall stddev:
                // rate = work / wall, so σ_rate ≈ rate · σ_wall / wall.
                let sigma_of = |rate: f64, stddev: f64, wall: f64| {
                    if wall > 0.0 {
                        rate * stddev / wall
                    } else {
                        0.0
                    }
                };
                let sigma = sigma_of(ra, fa.wall_stddev_seconds, fa.wall_seconds)
                    + sigma_of(rb, fb.wall_stddev_seconds, fb.wall_seconds);
                let verdict = if sigma <= 0.0 {
                    RateVerdict::Informational
                } else if rb >= ra {
                    if rb - ra > k * sigma {
                        RateVerdict::Improved
                    } else {
                        RateVerdict::WithinNoise
                    }
                } else if ra - rb > k * sigma && (ra - rb) / ra > MIN_RELATIVE_REGRESSION {
                    RateVerdict::Regressed
                } else {
                    RateVerdict::WithinNoise
                };
                rates.push(RateDelta {
                    figure: name.clone(),
                    metric,
                    a: ra,
                    b: rb,
                    speedup: rb / ra,
                    sigma,
                    verdict,
                });
            }
        }
        CompareReport {
            comparable: true,
            mismatches: Vec::new(),
            k,
            rates,
            walls,
            families: Vec::new(),
            speedups: Vec::new(),
        }
    }

    /// Compares two finished traces: counter totals must match, then the
    /// sim-clock span families must be bit-identical, then the wall-clock
    /// families' self time is laid side by side (informational — traces
    /// carry no trial variance, so nothing gates beyond comparability).
    pub fn traces(a: &Trace, b: &Trace, k: f64) -> CompareReport {
        let mut mismatches = Vec::new();
        let mut skipped = 0usize;
        let names: BTreeSet<&String> = a.counters.keys().chain(b.counters.keys()).collect();
        for name in names {
            let (va, vb) = (
                a.counters.get(name).map(|c| c.total),
                b.counters.get(name).map(|c| c.total),
            );
            if va != vb {
                let show =
                    |v: Option<u64>| v.map_or_else(|| "absent".to_string(), |v| v.to_string());
                push_mismatch(
                    &mut mismatches,
                    &mut skipped,
                    format!("counter {name}: {} vs {}", show(va), show(vb)),
                );
            }
        }

        // A fixed zero-cost estimate keeps the attribution itself
        // byte-reproducible; overhead estimation is `obs hotspots`' job.
        let est = OverheadEstimate::fixed(0.0);
        let ha = HotspotReport::analyze(a, &est);
        let hb = HotspotReport::analyze(b, &est);
        let fam = |r: &HotspotReport, name: &str, clock: &str| {
            r.families
                .iter()
                .find(|f| f.name == name && f.clock == clock)
                .cloned()
        };
        let mut families = Vec::new();
        let mut fam_names: Vec<(String, &'static str)> = Vec::new();
        for f in ha.families.iter().chain(hb.families.iter()) {
            let clock = if f.clock == "wall" { "wall" } else { "sim" };
            if !fam_names.iter().any(|(n, c)| *n == f.name && *c == clock) {
                fam_names.push((f.name.clone(), clock));
            }
        }
        for (name, clock) in fam_names {
            let (fa, fb) = (fam(&ha, &name, clock), fam(&hb, &name, clock));
            if clock == "sim" {
                // Sim-clock time is part of the work fingerprint.
                let bits = |f: &Option<crate::hotspots::FamilyStats>| {
                    f.as_ref()
                        .map(|f| (f.count, f.total_seconds.to_bits(), f.self_seconds.to_bits()))
                };
                if bits(&fa) != bits(&fb) {
                    push_mismatch(
                        &mut mismatches,
                        &mut skipped,
                        format!("sim span family {name:?} diverged"),
                    );
                }
                continue;
            }
            families.push(FamilyDelta {
                name,
                a_self_seconds: fa.as_ref().map_or(0.0, |f| f.self_seconds),
                b_self_seconds: fb.as_ref().map_or(0.0, |f| f.self_seconds),
                a_total_seconds: fa.as_ref().map_or(0.0, |f| f.total_seconds),
                b_total_seconds: fb.as_ref().map_or(0.0, |f| f.total_seconds),
            });
        }
        if skipped > 0 {
            mismatches.push(format!("… and {skipped} more differences"));
        }
        let comparable = mismatches.is_empty();
        CompareReport {
            comparable,
            mismatches,
            k,
            rates: Vec::new(),
            walls: Vec::new(),
            families: if comparable { families } else { Vec::new() },
            speedups: Vec::new(),
        }
    }
}

impl fmt::Display for CompareReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.comparable {
            writeln!(f, "not comparable — the runs did different sim work:")?;
            for m in &self.mismatches {
                writeln!(f, "  {m}")?;
            }
            return writeln!(
                f,
                "  (wall-clock deltas are meaningless across different workloads)"
            );
        }
        writeln!(f, "comparable: identical sim-side work on both runs")?;
        if !self.walls.is_empty() {
            writeln!(
                f,
                "  {:<16} {:>12} {:>12} {:>9}",
                "figure", "A wall", "B wall", "Δ"
            )?;
            for w in &self.walls {
                writeln!(
                    f,
                    "  {:<16} {:>10.4}s {:>10.4}s {:>8.1}%",
                    w.figure,
                    w.a_seconds,
                    w.b_seconds,
                    w.relative * 100.0
                )?;
            }
        }
        for r in &self.rates {
            writeln!(
                f,
                "  {}.{}: {:.1} → {:.1} (×{:.3}, σ {:.1}, k {:.1}) {}",
                r.figure,
                r.metric,
                r.a,
                r.b,
                r.speedup,
                r.sigma,
                self.k,
                match r.verdict {
                    RateVerdict::Improved => "IMPROVED",
                    RateVerdict::Regressed => "REGRESSED",
                    RateVerdict::WithinNoise => "within noise",
                    RateVerdict::Informational => "informational (no variance data)",
                }
            )?;
        }
        for s in &self.speedups {
            writeln!(
                f,
                "  require ≥{:.2}x on {}.{}: {:.1} → {:.1} best-trial (×{:.3}) {}",
                s.required,
                s.figure,
                s.metric,
                s.a,
                s.b,
                s.speedup,
                if s.satisfied { "OK" } else { "FAILED" }
            )?;
        }
        if !self.families.is_empty() {
            writeln!(
                f,
                "  {:<20} {:>12} {:>12}  (wall self time)",
                "family", "A", "B"
            )?;
            for d in &self.families {
                writeln!(
                    f,
                    "  {:<20} {:>10.6}s {:>10.6}s",
                    d.name, d.a_self_seconds, d.b_self_seconds
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched);
    // approximate comparison would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::bench::FigureBench;
    use std::collections::BTreeMap;

    fn snap(seed: u64, slots_rate: f64, wall: f64, stddev: f64) -> BenchSnapshot {
        let mut counters = BTreeMap::new();
        counters.insert("perf.work.slots".to_string(), 10_000);
        counters.insert("cycle.count".to_string(), 20);
        let mut figures = BTreeMap::new();
        figures.insert(
            "obs-run".to_string(),
            FigureBench {
                wall_seconds: wall,
                reports_per_wall_second: 0.0,
                trial_wall_seconds: vec![wall; 5],
                wall_min_seconds: wall,
                wall_stddev_seconds: stddev,
                slots_per_wall_second: slots_rate,
                channel_evals_per_wall_second: 0.0,
            },
        );
        BenchSnapshot {
            schema_version: crate::bench::BENCH_SCHEMA_VERSION,
            seed,
            scale: "quick".to_string(),
            provisional: false,
            trials: 5,
            figures,
            counters,
            durations: BTreeMap::new(),
            wall_seconds: wall,
        }
    }

    #[test]
    fn identical_work_with_stable_rate_passes() {
        let a = snap(7, 5000.0, 2.0, 0.05);
        let b = snap(7, 4950.0, 2.02, 0.05);
        let r = CompareReport::snapshots(&a, &b, DEFAULT_K);
        assert!(r.comparable);
        assert!(r.passed(), "{r}");
        let rate = &r.rates[0];
        assert_eq!(rate.metric, "slots_per_wall_second");
        assert_eq!(rate.verdict, RateVerdict::WithinNoise);
        assert!(r.to_string().contains("within noise"), "{r}");
    }

    #[test]
    fn different_seed_or_counters_refuse_to_compare() {
        let a = snap(7, 5000.0, 2.0, 0.05);
        let b = snap(9, 5000.0, 2.0, 0.05);
        let r = CompareReport::snapshots(&a, &b, DEFAULT_K);
        assert!(!r.comparable);
        assert!(!r.passed());
        assert!(r.mismatches[0].contains("seed"), "{:?}", r.mismatches);

        let mut c = snap(7, 5000.0, 2.0, 0.05);
        c.counters.insert("perf.work.slots".to_string(), 10_001);
        let r = CompareReport::snapshots(&a, &c, DEFAULT_K);
        assert!(!r.comparable);
        assert!(
            r.mismatches.iter().any(|m| m.contains("perf.work.slots")),
            "{:?}",
            r.mismatches
        );
        assert!(r.to_string().contains("not comparable"), "{r}");
    }

    #[test]
    fn a_real_regression_beyond_noise_and_floor_fails() {
        let a = snap(7, 5000.0, 2.0, 0.01);
        // 40% rate drop, far beyond 3·σ of the tight trials.
        let b = snap(7, 3000.0, 3.33, 0.01);
        let r = CompareReport::snapshots(&a, &b, DEFAULT_K);
        assert!(r.comparable);
        assert!(!r.passed());
        assert_eq!(r.rates[0].verdict, RateVerdict::Regressed);
        assert!(r.to_string().contains("REGRESSED"), "{r}");
    }

    #[test]
    fn small_regressions_stay_within_the_relative_floor() {
        let a = snap(7, 5000.0, 2.0, 1e-6);
        // 10% drop: beyond k·σ of the absurdly tight trials, but under
        // the 25% floor — must not fail the gate.
        let b = snap(7, 4500.0, 2.22, 1e-6);
        let r = CompareReport::snapshots(&a, &b, DEFAULT_K);
        assert!(r.passed(), "{r}");
        assert_eq!(r.rates[0].verdict, RateVerdict::WithinNoise);
    }

    #[test]
    fn sides_without_variance_yield_informational_verdicts() {
        let mut a = snap(7, 5000.0, 2.0, 0.0);
        let mut b = snap(7, 2000.0, 5.0, 0.0);
        a.trials = 0;
        b.trials = 0;
        let r = CompareReport::snapshots(&a, &b, DEFAULT_K);
        assert!(r.passed(), "no variance data can never gate: {r}");
        assert_eq!(r.rates[0].verdict, RateVerdict::Informational);
        assert_eq!(r.rates[0].speedup, 0.4);
    }

    #[test]
    fn speedup_requirement_parses_and_rejects() {
        let r = SpeedupRequirement::parse("figures.obs-run.reports_per_wall_second:5.0").unwrap();
        assert_eq!(r.figure, "obs-run");
        assert_eq!(r.metric, "reports_per_wall_second");
        assert_eq!(r.factor, 5.0);
        // The figures. prefix is optional.
        let bare = SpeedupRequirement::parse("obs-run.slots_per_wall_second:2").unwrap();
        assert_eq!(bare.figure, "obs-run");
        assert!(SpeedupRequirement::parse("no-colon").is_err());
        assert!(SpeedupRequirement::parse("obs-run.reports_per_wall_second:0").is_err());
        assert!(SpeedupRequirement::parse("obs-run.reports_per_wall_second:nan").is_err());
        assert!(SpeedupRequirement::parse("obs-run.not_a_metric:2.0").is_err());
        assert!(SpeedupRequirement::parse("nodot:2.0").is_err());
    }

    #[test]
    fn speedup_check_uses_best_trial_rates() {
        // A: single trial (min == median). B: median wall 2x the best
        // trial, so the best-trial rate is 2x the recorded median rate.
        let a = snap(7, 1000.0, 2.0, 0.0);
        let mut b = snap(7, 3000.0, 2.0, 0.1);
        let fb = b.figures.get_mut("obs-run").unwrap();
        fb.wall_min_seconds = 1.0;
        let req = SpeedupRequirement::parse("figures.obs-run.slots_per_wall_second:5.9").unwrap();
        let check = check_speedup(&a, &b, &req).unwrap();
        assert_eq!(check.a, 1000.0);
        assert_eq!(check.b, 6000.0, "median rate scaled by median/min wall");
        assert_eq!(check.speedup, 6.0);
        assert!(check.satisfied);

        // Demanding more than the best trial delivers fails the report.
        let hard = SpeedupRequirement::parse("figures.obs-run.slots_per_wall_second:6.1").unwrap();
        let mut report = CompareReport::snapshots(&a, &b, DEFAULT_K);
        assert!(report.passed());
        report.require_speedups(&a, &b, &[hard]).unwrap();
        assert!(!report.passed());
        assert!(!report.speedups[0].satisfied);
        assert!(report.to_string().contains("FAILED"), "{report}");

        // Unknown figures fail loudly, never vacuously.
        let missing = SpeedupRequirement::parse("figures.nope.slots_per_wall_second:1.0").unwrap();
        assert!(check_speedup(&a, &b, &missing).is_err());
        // An unrecorded metric (0.0 rate) also errors.
        let zero = SpeedupRequirement::parse("obs-run.reports_per_wall_second:1.0").unwrap();
        assert!(check_speedup(&a, &b, &zero).is_err());
    }

    #[test]
    fn incomparable_runs_skip_speedup_checks() {
        let a = snap(7, 5000.0, 2.0, 0.05);
        let b = snap(9, 5000.0, 2.0, 0.05);
        let mut report = CompareReport::snapshots(&a, &b, DEFAULT_K);
        let req = SpeedupRequirement::parse("obs-run.slots_per_wall_second:1.0").unwrap();
        report.require_speedups(&a, &b, &[req]).unwrap();
        assert!(report.speedups.is_empty(), "meaningless across workloads");
        assert!(!report.passed(), "still fails on comparability");
    }

    #[test]
    fn trace_mode_gates_on_counter_totals_and_sim_spans() {
        use tagwatch_telemetry::{ClockKind, CounterRecord, Event, SpanRecord};
        let span = |name: &str, id: u64, parent: Option<u64>, dur: f64, wall: bool| {
            Event::Span(SpanRecord {
                name: name.into(),
                id,
                parent,
                start: 0.0,
                duration: dur,
                clock: if wall {
                    ClockKind::Wall
                } else {
                    ClockKind::Sim
                },
            })
        };
        let counter = |name: &str, delta: u64| {
            Event::Counter(CounterRecord {
                name: name.into(),
                delta,
                total: delta,
            })
        };
        let a = Trace::from_events(&[
            counter("perf.work.slots", 100),
            span("round", 1, None, 0.4, false),
            span("cycle", 10, None, 1.0, false),
            span("cycle.compute", 2, Some(10), 0.002, true),
        ])
        .unwrap();
        let b_events = [
            counter("perf.work.slots", 100),
            span("round", 1, None, 0.4, false),
            span("cycle", 10, None, 1.0, false),
            span("cycle.compute", 2, Some(10), 0.001, true),
        ];
        let b = Trace::from_events(&b_events).unwrap();
        let r = CompareReport::traces(&a, &b, DEFAULT_K);
        assert!(r.comparable, "{:?}", r.mismatches);
        assert!(r.passed());
        let fam = &r.families[0];
        assert_eq!(fam.name, "cycle.compute");
        assert_eq!(fam.a_self_seconds, 0.002);
        assert_eq!(fam.b_self_seconds, 0.001);

        // Different counter totals: not the same work.
        let c = Trace::from_events(&[
            counter("perf.work.slots", 101),
            span("round", 1, None, 0.4, false),
        ])
        .unwrap();
        let r = CompareReport::traces(&a, &c, DEFAULT_K);
        assert!(!r.comparable);
        assert!(!r.passed());

        // Same counters but diverged sim spans: still not comparable.
        let d = Trace::from_events(&[
            counter("perf.work.slots", 100),
            span("round", 1, None, 0.5, false),
            span("cycle", 10, None, 1.0, false),
            span("cycle.compute", 2, Some(10), 0.002, true),
        ])
        .unwrap();
        let r = CompareReport::traces(&a, &d, DEFAULT_K);
        assert!(!r.comparable);
        assert!(
            r.mismatches.iter().any(|m| m.contains("sim span family")),
            "{:?}",
            r.mismatches
        );
    }
}
