//! Run comparison and regression gating: two metric maps (from
//! [`RunReport::metric_map`](crate::analyze::RunReport::metric_map) or
//! [`BenchSnapshot::metric_map`](crate::bench::BenchSnapshot::metric_map))
//! are diffed under a relative threshold, and each metric's *direction*
//! decides whether a move is a regression, an improvement, or noise.
//!
//! Wall-clock and raw-counter families are classified
//! [`Direction::Informational`]: they vary across machines and scene
//! sizes, so they are reported but never fail a gate. The gate itself is
//! [`DiffReport::passed`] — `obs diff` maps it to the process exit code.

use std::collections::BTreeMap;
use std::fmt;

use serde::Serialize;

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum Direction {
    /// A drop beyond the threshold is a regression (IRR, detection rates).
    HigherIsBetter,
    /// A rise beyond the threshold is a regression (latencies, error
    /// rates, starvation).
    LowerIsBetter,
    /// Reported but never gated (wall clock, raw counters, scenario mix).
    Informational,
    /// Any move beyond the threshold regresses, in either direction.
    /// For the deterministic `perf.work.*` work counters: under
    /// `--threshold 0` a single diverged count is proof the two runs did
    /// different simulated work, and "more work" is no better than
    /// "less".
    Exact,
}

/// Classifies a metric name into its gating direction. Unknown families
/// default to informational — a new metric must be classified explicitly
/// before it can fail a build.
pub fn direction_for(name: &str) -> Direction {
    use Direction::*;
    if name.starts_with("counter.perf.work.") {
        return Exact;
    }
    if name.starts_with("wall.") || name.starts_with("counter.") || name.starts_with("fig.") {
        return Informational;
    }
    if name.starts_with("irr.") || name == "cover.efficiency" || name == "reads.total" {
        return HigherIsBetter;
    }
    if name.ends_with("success_rate") {
        return HigherIsBetter;
    }
    if name.starts_with("dur.") || name.starts_with("starvation.") {
        return LowerIsBetter;
    }
    if name.ends_with("collision_rate") || name == "q.oscillation" {
        return LowerIsBetter;
    }
    match name {
        "confusion.tpr" | "confusion.accuracy" => HigherIsBetter,
        "confusion.fpr" => LowerIsBetter,
        _ => Informational,
    }
}

/// How one metric moved between runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum Verdict {
    /// Within threshold (or informational).
    Ok,
    /// Moved beyond threshold in the good direction.
    Improved,
    /// Moved beyond threshold in the bad direction.
    Regressed,
    /// Gated metric present in the baseline but missing from the current
    /// run — treated as a regression (a silently vanished metric must not
    /// pass the gate).
    Missing,
    /// Metric absent from the baseline; reported, never gated.
    New,
}

/// One metric's comparison.
#[derive(Debug, Clone, Serialize)]
pub struct DiffEntry {
    pub name: String,
    pub direction: Direction,
    pub baseline: Option<f64>,
    pub current: Option<f64>,
    /// Relative change `(current − baseline) / |baseline|`; `None` when
    /// either side is missing or the baseline is 0.
    pub relative: Option<f64>,
    pub verdict: Verdict,
}

/// A full run-to-run comparison.
#[derive(Debug, Clone, Serialize)]
pub struct DiffReport {
    /// Relative threshold (e.g. 0.10 for ±10%).
    pub threshold: f64,
    pub entries: Vec<DiffEntry>,
    pub regressions: usize,
    pub improvements: usize,
}

impl DiffReport {
    /// Compares `current` against `baseline` under a relative threshold.
    pub fn diff(
        baseline: &BTreeMap<String, f64>,
        current: &BTreeMap<String, f64>,
        threshold: f64,
    ) -> DiffReport {
        let mut names: Vec<&String> = baseline.keys().chain(current.keys()).collect();
        names.sort();
        names.dedup();
        let mut entries = Vec::with_capacity(names.len());
        for name in names {
            let direction = direction_for(name);
            let b = baseline.get(name).copied();
            let c = current.get(name).copied();
            let (relative, verdict) = match (b, c) {
                (Some(b), Some(c)) => classify(b, c, direction, threshold),
                (Some(_), None) => (
                    None,
                    if direction == Direction::Informational {
                        Verdict::Ok
                    } else {
                        Verdict::Missing
                    },
                ),
                (None, Some(_)) => (None, Verdict::New),
                (None, None) => unreachable!("name came from one of the maps"), // lint:allow(panic-policy): the name came from one of the two maps
            };
            entries.push(DiffEntry {
                name: name.clone(),
                direction,
                baseline: b,
                current: c,
                relative,
                verdict,
            });
        }
        let regressions = entries
            .iter()
            .filter(|e| matches!(e.verdict, Verdict::Regressed | Verdict::Missing))
            .count();
        let improvements = entries
            .iter()
            .filter(|e| e.verdict == Verdict::Improved)
            .count();
        DiffReport {
            threshold,
            entries,
            regressions,
            improvements,
        }
    }

    /// The gate: true when nothing regressed or went missing.
    pub fn passed(&self) -> bool {
        self.regressions == 0
    }

    /// Names of regressed (or missing) metrics, for terse CI output.
    pub fn regressed_names(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| matches!(e.verdict, Verdict::Regressed | Verdict::Missing))
            .map(|e| e.name.as_str())
            .collect()
    }
}

fn classify(
    baseline: f64,
    current: f64,
    direction: Direction,
    threshold: f64,
) -> (Option<f64>, Verdict) {
    if direction == Direction::Informational {
        let rel = (baseline != 0.0).then(|| (current - baseline) / baseline.abs());
        return (rel, Verdict::Ok);
    }
    if baseline == 0.0 {
        // No relative scale. A zero baseline on a gated metric only
        // regresses when a bad-direction absolute move appears where the
        // baseline promised none (e.g. starvation events 0 → 3).
        let bad = match direction {
            Direction::HigherIsBetter => current < 0.0,
            Direction::LowerIsBetter | Direction::Exact => current > 0.0,
            Direction::Informational => unreachable!(), // lint:allow(panic-policy): informational metrics return earlier
        };
        let verdict = if bad { Verdict::Regressed } else { Verdict::Ok };
        return (None, verdict);
    }
    let rel = (current - baseline) / baseline.abs();
    let verdict = match direction {
        Direction::HigherIsBetter if rel < -threshold => Verdict::Regressed,
        Direction::HigherIsBetter if rel > threshold => Verdict::Improved,
        Direction::LowerIsBetter if rel > threshold => Verdict::Regressed,
        Direction::LowerIsBetter if rel < -threshold => Verdict::Improved,
        Direction::Exact if rel.abs() > threshold => Verdict::Regressed,
        _ => Verdict::Ok,
    };
    (Some(rel), verdict)
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "diff at ±{:.1}% relative threshold (gated metrics only)",
            self.threshold * 100.0
        )?;
        writeln!(
            f,
            "  {:<34} {:>14} {:>14} {:>9}  verdict",
            "metric", "baseline", "current", "Δ%"
        )?;
        for e in &self.entries {
            // Keep the table readable: show every gated metric, but only
            // the informational ones that actually moved.
            let interesting = e.direction != Direction::Informational
                || e.relative.is_some_and(|r| r.abs() > self.threshold);
            if !interesting {
                continue;
            }
            let fmt_v = |v: Option<f64>| match v {
                Some(x) => format!("{x:.6}"),
                None => "—".to_string(),
            };
            let rel = match e.relative {
                Some(r) => format!("{:+.1}%", r * 100.0),
                None => "—".to_string(),
            };
            let verdict = match e.verdict {
                Verdict::Ok => "ok",
                Verdict::Improved => "improved",
                Verdict::Regressed => "REGRESSED",
                Verdict::Missing => "MISSING",
                Verdict::New => "new",
            };
            writeln!(
                f,
                "  {:<34} {:>14} {:>14} {:>9}  {}",
                e.name,
                fmt_v(e.baseline),
                fmt_v(e.current),
                rel,
                verdict
            )?;
        }
        writeln!(
            f,
            "  {} regressed, {} improved → {}",
            self.regressions,
            self.improvements,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn directions_classify_known_families() {
        assert_eq!(direction_for("irr.phase2"), Direction::HigherIsBetter);
        assert_eq!(direction_for("dur.cycle.p95"), Direction::LowerIsBetter);
        assert_eq!(direction_for("wall.compute.p50"), Direction::Informational);
        assert_eq!(
            direction_for("counter.cycle.count"),
            Direction::Informational
        );
        assert_eq!(direction_for("counter.perf.work.slots"), Direction::Exact);
        assert_eq!(direction_for("confusion.fpr"), Direction::LowerIsBetter);
        assert_eq!(
            direction_for("slots.phase1.success_rate"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_for("something.else"), Direction::Informational);
    }

    #[test]
    fn identical_maps_pass() {
        let a = map(&[("irr.phase2", 2.0), ("dur.cycle.p50", 0.5)]);
        let d = DiffReport::diff(&a, &a.clone(), 0.10);
        assert!(d.passed());
        assert_eq!(d.regressions, 0);
        assert!(d.entries.iter().all(|e| e.verdict == Verdict::Ok));
    }

    #[test]
    fn irr_drop_beyond_threshold_fails() {
        let a = map(&[("irr.phase2", 2.0)]);
        let b = map(&[("irr.phase2", 1.6)]); // −20%
        let d = DiffReport::diff(&a, &b, 0.10);
        assert!(!d.passed());
        assert_eq!(d.regressed_names(), vec!["irr.phase2"]);
        // The same move under a looser bar passes.
        assert!(DiffReport::diff(&a, &b, 0.25).passed());
        // And the reverse move is an improvement.
        let d = DiffReport::diff(&b, &a, 0.10);
        assert!(d.passed());
        assert_eq!(d.improvements, 1);
    }

    #[test]
    fn latency_rise_fails_and_drop_improves() {
        let a = map(&[("dur.cycle.p95", 1.0)]);
        assert!(!DiffReport::diff(&a, &map(&[("dur.cycle.p95", 1.2)]), 0.10).passed());
        let d = DiffReport::diff(&a, &map(&[("dur.cycle.p95", 0.8)]), 0.10);
        assert!(d.passed());
        assert_eq!(d.improvements, 1);
    }

    #[test]
    fn informational_metrics_never_gate() {
        let a = map(&[("wall.total", 1.0)]);
        let b = map(&[("wall.total", 50.0)]);
        assert!(DiffReport::diff(&a, &b, 0.10).passed());
    }

    #[test]
    fn missing_gated_metric_is_a_regression() {
        let a = map(&[("irr.phase2", 2.0), ("wall.total", 1.0)]);
        let b = map(&[("wall.total", 2.0)]);
        let d = DiffReport::diff(&a, &b, 0.10);
        assert!(!d.passed());
        assert_eq!(d.regressed_names(), vec!["irr.phase2"]);
        // A *new* metric in current is fine.
        let d = DiffReport::diff(&b, &a, 0.10);
        assert!(d.passed());
    }

    #[test]
    fn zero_baseline_gates_on_bad_absolute_moves_only() {
        let a = map(&[("starvation.events", 0.0)]);
        assert!(!DiffReport::diff(&a, &map(&[("starvation.events", 3.0)]), 0.10).passed());
        assert!(DiffReport::diff(&a, &map(&[("starvation.events", 0.0)]), 0.10).passed());
        let z = map(&[("irr.phase2", 0.0)]);
        assert!(DiffReport::diff(&z, &map(&[("irr.phase2", 5.0)]), 0.10).passed());
    }

    #[test]
    fn work_counters_gate_exactly_in_both_directions() {
        let a = map(&[("counter.perf.work.slots", 100.0)]);
        // Identity passes at a zero threshold…
        assert!(DiffReport::diff(&a, &a.clone(), 0.0).passed());
        // …and a single diverged count fails it, whichever way it moved.
        for moved in [99.0, 101.0] {
            let d = DiffReport::diff(&a, &map(&[("counter.perf.work.slots", moved)]), 0.0);
            assert!(!d.passed(), "{moved} should fail the identity gate");
            assert_eq!(d.regressed_names(), vec!["counter.perf.work.slots"]);
        }
        // Zero-baseline counters gate on any appearance of work.
        let z = map(&[("counter.perf.work.gmm_updates", 0.0)]);
        assert!(
            !DiffReport::diff(&z, &map(&[("counter.perf.work.gmm_updates", 1.0)]), 0.0).passed()
        );
        // A vanished work counter is Missing, a brand-new one is fine.
        assert!(!DiffReport::diff(&a, &map(&[]), 0.0).passed());
        assert!(DiffReport::diff(&map(&[]), &a, 0.0).passed());
        // Ordinary counters stay informational even under threshold 0.
        let c = map(&[("counter.round.count", 10.0)]);
        assert!(DiffReport::diff(&c, &map(&[("counter.round.count", 99.0)]), 0.0).passed());
    }

    #[test]
    fn render_flags_regressions() {
        let a = map(&[("irr.phase2", 2.0), ("dur.cycle.p50", 0.5)]);
        let b = map(&[("irr.phase2", 1.0), ("dur.cycle.p50", 0.5)]);
        let text = DiffReport::diff(&a, &b, 0.10).to_string();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("-50.0%"), "{text}");
    }
}
