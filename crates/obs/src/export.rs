//! Trace exporters: Chrome `trace_event` JSON for Perfetto /
//! `chrome://tracing`, and collapsed-stack lines for inferno /
//! `flamegraph.pl`.
//!
//! Both exporters work off the validated [`Trace`] span list, so they
//! inherit the model's guarantees (unique ids, resolvable parents on
//! complete traces) and its leniency on sampled/truncated ones.
//!
//! ## Chrome track layout
//!
//! The trace holds two incommensurable clocks: simulated air time
//! (`cycle` → `phase1`/`phase2` → `round`) and host wall time
//! (`cycle.compute`). They become two Perfetto *processes* — pid 1 "sim
//! clock", pid 2 "wall clock" — so the viewer never draws a 5-second
//! simulated phase next to a 14-microsecond compute span on one axis.
//! Every span is a complete event (`"ph":"X"`) with integer microsecond
//! `ts`/`dur`, which keeps the export byte-stable for golden tests.
//!
//! ## Collapsed stacks
//!
//! One line per span of the selected clock: `root;child;leaf weight`,
//! where the weight is the span's *self* time in microseconds (duration
//! minus same-clock children), so a flamegraph's column widths sum to
//! real time instead of double-counting parents. Frame names are
//! sanitized (`;`, whitespace → `_`) to stay within the collapsed-stack
//! grammar for arbitrary span names.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tagwatch_telemetry::{ClockKind, SpanRecord};

use crate::model::Trace;

/// Seconds → integer microseconds (clamped at zero; both clocks count up
/// from their origin).
fn us(seconds: f64) -> u64 {
    (seconds * 1e6).round().max(0.0) as u64
}

/// Escapes a string into a JSON string literal (without the quotes),
/// matching RFC 8259: `"` `\` and control characters.
fn escape_json_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Per-span *self* durations in seconds, keyed by span id: each span's
/// duration minus the summed durations of its immediate children on the
/// *same clock* (a wall-clock `cycle.compute` child does not eat into its
/// simulated parent). Clamped at zero — overlapping children from a
/// malformed-but-lenient trace must not produce negative weights.
pub(crate) fn self_seconds(trace: &Trace) -> BTreeMap<u64, f64> {
    let mut child_sum: BTreeMap<u64, f64> = BTreeMap::new();
    let clock_of: BTreeMap<u64, ClockKind> = trace.spans.iter().map(|s| (s.id, s.clock)).collect();
    for s in &trace.spans {
        if let Some(p) = s.parent {
            if clock_of.get(&p) == Some(&s.clock) {
                *child_sum.entry(p).or_default() += s.duration;
            }
        }
    }
    trace
        .spans
        .iter()
        .map(|s| {
            let eaten = child_sum.get(&s.id).copied().unwrap_or(0.0);
            (s.id, (s.duration - eaten).max(0.0))
        })
        .collect()
}

/// Renders the trace as Chrome `trace_event` JSON (object form, complete
/// events, integer microseconds). Loadable in Perfetto and
/// `chrome://tracing`.
pub fn chrome_trace(trace: &Trace) -> String {
    let mut out = String::with_capacity(256 + trace.spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&ev);
    };

    // Track naming metadata: one "process" per clock.
    for (pid, label) in [(1u32, "sim clock"), (2u32, "wall clock")] {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":1,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ),
        );
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":1,\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"spans\"}}}}"
            ),
        );
    }

    for s in &trace.spans {
        let (pid, cat) = match s.clock {
            ClockKind::Sim => (1u32, "sim"),
            ClockKind::Wall => (2u32, "wall"),
        };
        let mut ev = String::with_capacity(160);
        ev.push_str("{\"ph\":\"X\",\"pid\":");
        let _ = write!(ev, "{pid},\"tid\":1,\"name\":\"");
        escape_json_into(&mut ev, &s.name);
        let _ = write!(
            ev,
            "\",\"cat\":\"{cat}\",\"ts\":{},\"dur\":{},\"args\":{{\"id\":{}",
            us(s.start),
            us(s.duration),
            s.id
        );
        match s.parent {
            Some(p) => {
                let _ = write!(ev, ",\"parent\":{p}");
            }
            None => ev.push_str(",\"parent\":null"),
        }
        ev.push_str("}}");
        push(&mut out, &mut first, ev);
    }
    out.push_str("]}");
    out
}

/// A collapsed-stack frame name: `;` delimits frames and the final space
/// delimits the weight, so both (and other whitespace) are replaced.
fn frame_name(name: &str) -> String {
    if name.is_empty() {
        // An empty frame would render as a doubled separator and shift
        // every ancestor one level in the flamegraph.
        return "_".to_string();
    }
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// Renders collapsed-stack lines (`frame;frame;frame weight`) for every
/// span measured on `clock`, one line per span in emission order, each
/// weighted by the span's self time in microseconds. Output feeds
/// inferno / `flamegraph.pl` directly; duplicate stacks are legal in the
/// format (consumers sum them).
pub fn flame_lines(trace: &Trace, clock: ClockKind) -> String {
    let by_id: BTreeMap<u64, &SpanRecord> = trace.spans.iter().map(|s| (s.id, s)).collect();
    let selves = self_seconds(trace);
    let mut out = String::new();
    for s in &trace.spans {
        if s.clock != clock {
            continue;
        }
        // Walk the ancestor chain (across both clocks — a wall compute
        // span still sits *under* its simulated cycle). The depth guard
        // bounds hand-crafted parent loops that model validation does
        // not rule out in lenient mode.
        let mut stack = vec![frame_name(&s.name)];
        let mut cursor = s.parent;
        let mut depth = 0;
        while let Some(pid) = cursor {
            if depth > trace.spans.len() {
                break;
            }
            depth += 1;
            match by_id.get(&pid) {
                Some(p) => {
                    stack.push(frame_name(&p.name));
                    cursor = p.parent;
                }
                None => break, // truncated trace: treat as root
            }
        }
        stack.reverse();
        let weight = us(selves.get(&s.id).copied().unwrap_or(0.0));
        let _ = writeln!(out, "{} {}", stack.join(";"), weight);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Trace;
    use tagwatch_telemetry::{Event, SpanRecord};

    fn span(name: &str, id: u64, parent: Option<u64>, start: f64, dur: f64) -> Event {
        Event::Span(SpanRecord {
            name: name.into(),
            id,
            parent,
            start,
            duration: dur,
            clock: ClockKind::Sim,
        })
    }

    fn wall_span(name: &str, id: u64, parent: Option<u64>, start: f64, dur: f64) -> Event {
        Event::Span(SpanRecord {
            name: name.into(),
            id,
            parent,
            start,
            duration: dur,
            clock: ClockKind::Wall,
        })
    }

    /// cycle(0..1) { phase1(0..0.6) { round(0..0.4), round(0.4..0.2) },
    /// compute(wall) }.
    fn tree() -> Trace {
        let ev = vec![
            span("round", 1, Some(10), 0.0, 0.4),
            span("round", 2, Some(10), 0.4, 0.2),
            span("phase1", 10, Some(30), 0.0, 0.6),
            wall_span("cycle.compute", 11, Some(30), 0.001, 0.002),
            span("cycle", 30, None, 0.0, 1.0),
        ];
        Trace::from_events(&ev).unwrap()
    }

    #[test]
    fn self_time_subtracts_same_clock_children_only() {
        let t = tree();
        let selves = self_seconds(&t);
        assert!((selves[&1] - 0.4).abs() < 1e-12);
        assert!((selves[&10] - 0.0).abs() < 1e-12); // fully covered by rounds
                                                    // The wall-clock compute child must NOT eat into the sim cycle:
                                                    // cycle self = 1.0 − phase1 0.6 = 0.4.
        assert!((selves[&30] - 0.4).abs() < 1e-12);
        assert!((selves[&11] - 0.002).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_both_tracks() {
        let t = tree();
        let text = chrome_trace(&t);
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 4 metadata + 5 spans.
        assert_eq!(events.len(), 9);
        for ev in events {
            let ph = ev
                .get("ph")
                .and_then(serde_json::Value::as_str)
                .expect("ph");
            assert!(ph == "X" || ph == "M", "unexpected phase {ph}");
            assert!(ev.get("pid").and_then(serde_json::Value::as_u64).is_some());
            assert!(ev.get("name").and_then(serde_json::Value::as_str).is_some());
            if ph == "X" {
                assert!(ev.get("ts").and_then(serde_json::Value::as_u64).is_some());
                assert!(ev.get("dur").and_then(serde_json::Value::as_u64).is_some());
            }
        }
        // Wall span landed on pid 2, sim spans on pid 1.
        let pid_of = |name: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("ph").and_then(serde_json::Value::as_str) == Some("X")
                        && e.get("name").and_then(serde_json::Value::as_str) == Some(name)
                })
                .and_then(|e| e.get("pid"))
                .and_then(serde_json::Value::as_u64)
                .unwrap()
        };
        assert_eq!(pid_of("cycle"), 1);
        assert_eq!(pid_of("cycle.compute"), 2);
    }

    #[test]
    fn chrome_trace_escapes_hostile_names() {
        let ev = vec![span("weird\"name\\with\nstuff", 1, None, 0.0, 0.5)];
        let t = Trace::from_events(&ev).unwrap();
        let text = chrome_trace(&t);
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let name = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .find(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some("X"))
            .and_then(|e| e.get("name"))
            .and_then(serde_json::Value::as_str)
            .unwrap()
            .to_string();
        assert_eq!(name, "weird\"name\\with\nstuff");
    }

    #[test]
    fn flame_lines_weight_each_span_once_by_self_time() {
        let t = tree();
        let text = flame_lines(&t, ClockKind::Sim);
        let lines: Vec<&str> = text.lines().collect();
        // One line per sim span: 2 rounds, phase1, cycle.
        assert_eq!(lines.len(), 4);
        assert!(lines.contains(&"cycle;phase1;round 400000"));
        assert!(lines.contains(&"cycle;phase1;round 200000"));
        assert!(lines.contains(&"cycle;phase1 0"));
        assert!(lines.contains(&"cycle 400000"));
        // Total weight equals total sim time (no double counting).
        let total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 1_000_000);

        // The wall clock sees only the compute span, stacked under its
        // simulated ancestors.
        let wall = flame_lines(&t, ClockKind::Wall);
        assert_eq!(wall.lines().count(), 1);
        assert_eq!(wall.trim(), "cycle;cycle.compute 2000");
    }

    #[test]
    fn flame_frames_sanitize_separator_characters() {
        let ev = vec![
            span("pha se;1", 1, Some(2), 0.0, 0.5),
            span("cy;cle", 2, None, 0.0, 1.0),
        ];
        let t = Trace::from_events(&ev).unwrap();
        let text = flame_lines(&t, ClockKind::Sim);
        for line in text.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("weight separator");
            assert!(weight.parse::<u64>().is_ok(), "{line}");
            for frame in stack.split(';') {
                assert!(!frame.is_empty());
                assert!(!frame.contains(char::is_whitespace), "{line}");
            }
        }
        assert!(text.contains("cy_cle;pha_se_1"));
    }
}
