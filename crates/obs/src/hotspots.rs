//! Host-time attribution: where a run actually spent its clocks, per
//! span family, plus an estimate of what the telemetry itself cost.
//!
//! The simulated clock answers protocol questions (how long did phase 2
//! *occupy the air*); the wall clock answers engineering questions (how
//! long did the host *compute*). This report puts the two side by side
//! for every span family — `phase1`, `phase2`, `round`, `cycle.compute` —
//! with both total and *self* time (children subtracted, same clock
//! only), and closes with the telemetry self-overhead estimate:
//! `events_total × measured per-event cost` (see
//! `tagwatch_telemetry::overhead`). On a sampled/truncated trace the
//! event count is taken from the footer (events the run *emitted*), not
//! from the stream length, so the estimate stays honest about suppressed
//! volume.

use std::collections::BTreeMap;
use std::fmt;

use tagwatch_telemetry::{ClockKind, OverheadEstimate};

use crate::export::self_seconds;
use crate::model::Trace;

/// Aggregated time for one span family (all spans sharing a name).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FamilyStats {
    pub name: String,
    pub count: usize,
    /// Which clock the family is measured on.
    pub clock: &'static str,
    /// Summed span durations, seconds.
    pub total_seconds: f64,
    /// Summed self time (same-clock children subtracted), seconds.
    pub self_seconds: f64,
}

/// The full hotspot report.
#[derive(Debug, Clone)]
pub struct HotspotReport {
    /// Families sorted by total time within their clock, wall families
    /// first (they are what the host optimizer is hunting).
    pub families: Vec<FamilyStats>,
    /// Simulated seconds the trace covers.
    pub sim_seconds: f64,
    /// Summed wall-clock span seconds (measured host compute).
    pub wall_span_seconds: f64,
    /// Events the run emitted (footer-aware: includes sampled-out and
    /// dropped events that never reached the stream).
    pub events_emitted: u64,
    /// Measured cost of one telemetry emission, seconds.
    pub per_event_seconds: f64,
    /// `events_emitted × per_event_seconds`.
    pub overhead_seconds: f64,
    /// False when the trace footer reports suppression.
    pub complete: bool,
}

impl HotspotReport {
    /// Builds the report from a validated trace and a measured per-event
    /// cost (see [`tagwatch_telemetry::overhead::calibrate`]).
    pub fn analyze(trace: &Trace, est: &OverheadEstimate) -> HotspotReport {
        let selves = self_seconds(trace);
        let mut map: BTreeMap<(ClockKind, String), FamilyStats> = BTreeMap::new();
        for s in &trace.spans {
            let entry = map
                .entry((s.clock, s.name.clone()))
                .or_insert_with(|| FamilyStats {
                    name: s.name.clone(),
                    count: 0,
                    clock: match s.clock {
                        ClockKind::Sim => "sim",
                        ClockKind::Wall => "wall",
                    },
                    total_seconds: 0.0,
                    self_seconds: 0.0,
                });
            entry.count += 1;
            entry.total_seconds += s.duration;
            entry.self_seconds += selves.get(&s.id).copied().unwrap_or(0.0);
        }
        let mut families: Vec<FamilyStats> = map.into_values().collect();
        families.sort_by(|a, b| {
            (a.clock != "wall")
                .cmp(&(b.clock != "wall"))
                .then(b.total_seconds.total_cmp(&a.total_seconds))
                .then(a.name.cmp(&b.name))
        });

        let wall_span_seconds = families
            .iter()
            .filter(|f| f.clock == "wall")
            .map(|f| f.total_seconds)
            .sum();
        // The stream length undercounts a sampled run's true emission
        // volume; the footer carries the full accounting.
        let events_emitted = match &trace.footer {
            Some(f) => f.emitted + f.sampled_out + f.dropped,
            None => trace.events_total as u64,
        };
        HotspotReport {
            families,
            sim_seconds: trace.sim_seconds(),
            wall_span_seconds,
            events_emitted,
            per_event_seconds: est.per_event_seconds,
            overhead_seconds: est.cost_of(events_emitted),
            complete: trace.is_complete(),
        }
    }
}

impl fmt::Display for HotspotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hotspots — host wall vs simulated air time per span family"
        )?;
        if !self.complete {
            writeln!(
                f,
                "  (sampled/truncated trace: per-family numbers cover the \
                 retained events only)"
            )?;
        }
        writeln!(
            f,
            "  {:<16} {:>5} {:>7} {:>14} {:>14}",
            "family", "clock", "count", "total", "self"
        )?;
        for fam in &self.families {
            writeln!(
                f,
                "  {:<16} {:>5} {:>7} {:>12.6}s {:>12.6}s",
                fam.name, fam.clock, fam.count, fam.total_seconds, fam.self_seconds
            )?;
        }
        writeln!(
            f,
            "  simulated window {:.3} s; measured host compute {:.6} s",
            self.sim_seconds, self.wall_span_seconds
        )?;
        writeln!(
            f,
            "  telemetry overhead ≈ {:.6} s ({} events × {:.1} ns/event)",
            self.overhead_seconds,
            self.events_emitted,
            self.per_event_seconds * 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_telemetry::{Event, FooterRecord, SpanRecord};

    fn span(name: &str, id: u64, parent: Option<u64>, start: f64, dur: f64, wall: bool) -> Event {
        Event::Span(SpanRecord {
            name: name.into(),
            id,
            parent,
            start,
            duration: dur,
            clock: if wall {
                ClockKind::Wall
            } else {
                ClockKind::Sim
            },
        })
    }

    fn est() -> OverheadEstimate {
        OverheadEstimate {
            per_event_seconds: 1e-7,
            events_measured: 1000,
            total_seconds: 1e-4,
        }
    }

    #[test]
    fn families_aggregate_and_sort_wall_first() {
        let ev = vec![
            span("round", 1, Some(10), 0.0, 0.4, false),
            span("round", 2, Some(10), 0.4, 0.2, false),
            span("phase1", 10, Some(30), 0.0, 0.6, false),
            span("cycle.compute", 11, Some(30), 0.001, 0.002, true),
            span("cycle", 30, None, 0.0, 1.0, false),
        ];
        let t = Trace::from_events(&ev).unwrap();
        let r = HotspotReport::analyze(&t, &est());
        assert_eq!(r.families[0].name, "cycle.compute");
        assert_eq!(r.families[0].clock, "wall");
        let round = r.families.iter().find(|f| f.name == "round").unwrap();
        assert_eq!(round.count, 2);
        assert!((round.total_seconds - 0.6).abs() < 1e-12);
        assert!((round.self_seconds - 0.6).abs() < 1e-12);
        let phase = r.families.iter().find(|f| f.name == "phase1").unwrap();
        assert!((phase.self_seconds - 0.0).abs() < 1e-12);
        assert!((r.wall_span_seconds - 0.002).abs() < 1e-12);
        assert_eq!(r.events_emitted, 5);
        assert!((r.overhead_seconds - 5e-7).abs() < 1e-15);
        assert!(r.complete);
        let text = r.to_string();
        assert!(text.contains("cycle.compute"), "{text}");
        assert!(text.contains("telemetry overhead"), "{text}");
    }

    #[test]
    fn footer_counts_suppressed_events_into_overhead() {
        let ev = vec![
            span("round", 1, None, 0.0, 0.4, false),
            Event::Footer(FooterRecord {
                emitted: 10,
                sampled_out: 30,
                dropped: 5,
                sample_every_n_rounds: 4,
                max_events: 10,
            }),
        ];
        let t = Trace::from_events(&ev).unwrap();
        let r = HotspotReport::analyze(&t, &est());
        assert_eq!(r.events_emitted, 45);
        assert!(!r.complete);
        assert!(r.to_string().contains("sampled/truncated"), "{r}");
    }
}
