//! The validated trace model: a raw JSONL event stream becomes a typed
//! span tree (cycle → phase1/phase2 → round) plus metric time series.
//!
//! Construction is strict. A trace that parses but violates the emission
//! contract — duplicate span ids, a span whose parent never appears, a
//! `phase1` span parented to something that is not a `cycle`, a counter
//! whose running total disagrees with the sum of its deltas — is rejected
//! with a [`TraceError`] naming the offending JSONL line, so a corrupt or
//! hand-edited trace fails loudly instead of skewing analysis.
//!
//! ## Attribution of round metrics
//!
//! Counter and observe events carry no timestamps, so per-round slot
//! breakdowns rely on the emission-order contract documented in
//! `tagwatch-reader`: a round's `round.*` counters and its `round.slots` /
//! `round.q_final` observations are emitted immediately *before* that
//! round's span event. The builder keeps a pending [`RoundStats`] and
//! attaches it to the next `round` span it sees; `round.*` activity with
//! no subsequent round span (e.g. a bare `RoundResult::record` without a
//! reader driving spans) accumulates in [`Trace::unattributed`].
//!
//! ## Sampled and truncated traces
//!
//! A trace that ends with a [`FooterRecord`] reporting suppression
//! (`sampled_out` or `dropped` nonzero) is *known incomplete*, and two
//! validations relax accordingly:
//!
//! * counter totals only need to be **monotone** (`total ≥ prior +
//!   delta`) — sampling removes delta events from the stream but the
//!   totals, computed registry-side, remain exact;
//! * a span whose parent id never appears is treated as a root instead of
//!   an [`TraceError::OrphanSpan`] — an event ceiling truncates the tail
//!   of the stream, which is where parents live (spans close inside-out).
//!
//! A trace with *no* footer (or a footer reporting zero suppression)
//! still gets the strict checks: silently lossy streams must fail loudly.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Read;
use std::path::Path;

use tagwatch_telemetry::jsonl::ParseError;
use tagwatch_telemetry::{format, ClockKind, Event, FooterRecord, SpanRecord, TagRecord};

/// Slack for sim-clock containment checks (floating-point sums of slot
/// durations).
const CONTAIN_EPS: f64 = 1e-6;

/// Why a trace was rejected. Every variant names the JSONL line (1-based)
/// that triggered it.
#[derive(Debug)]
pub enum TraceError {
    /// The stream itself would not parse.
    Parse(ParseError),
    /// Two span events share an id.
    DuplicateSpanId { line: usize, id: u64 },
    /// A span references a parent id that appears nowhere in the stream.
    OrphanSpan {
        line: usize,
        id: u64,
        parent: u64,
        name: String,
    },
    /// The span hierarchy violates the cycle → phase → round contract.
    Structure { line: usize, message: String },
    /// A counter's running total disagrees with its deltas (events lost
    /// or reordered).
    CounterRegression {
        line: usize,
        name: String,
        expected: u64,
        actual: u64,
    },
    /// The stream holds no events at all.
    Empty,
}

impl TraceError {
    /// The 1-based JSONL line the error points at, when it has one.
    pub fn line(&self) -> Option<usize> {
        match self {
            TraceError::Parse(e) => Some(e.line()),
            TraceError::DuplicateSpanId { line, .. }
            | TraceError::OrphanSpan { line, .. }
            | TraceError::Structure { line, .. }
            | TraceError::CounterRegression { line, .. } => Some(*line),
            TraceError::Empty => None,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse(e) => write!(f, "{e}"),
            TraceError::DuplicateSpanId { line, id } => {
                write!(f, "line {line}: duplicate span id {id}")
            }
            TraceError::OrphanSpan {
                line,
                id,
                parent,
                name,
            } => write!(
                f,
                "line {line}: span `{name}` (id {id}) references parent {parent}, \
                 which appears nowhere in the stream"
            ),
            TraceError::Structure { line, message } => {
                write!(f, "line {line}: {message}")
            }
            TraceError::CounterRegression {
                line,
                name,
                expected,
                actual,
            } => write!(
                f,
                "line {line}: counter `{name}` total {actual} disagrees with \
                 running sum of deltas {expected} (events lost or reordered)"
            ),
            TraceError::Empty => write!(f, "trace holds no events"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for TraceError {
    fn from(e: ParseError) -> Self {
        TraceError::Parse(e)
    }
}

/// Slot-level outcome totals for one inventory round (or, in
/// [`Trace::unattributed`], for round activity no span claimed).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundStats {
    pub empties: u64,
    pub collisions: u64,
    pub successes: u64,
    pub decode_failures: u64,
    pub adjusts: u64,
    pub reads: u64,
    /// Frame size observed for the round (`round.slots`), summed if a
    /// round somehow observed more than once.
    pub slots: f64,
    /// Q value after adaptation (`round.q_final`).
    pub q_final: Option<f64>,
}

impl RoundStats {
    fn is_empty(&self) -> bool {
        *self == RoundStats::default()
    }

    /// Adds another stats block into this one.
    pub fn absorb(&mut self, other: &RoundStats) {
        self.empties += other.empties;
        self.collisions += other.collisions;
        self.successes += other.successes;
        self.decode_failures += other.decode_failures;
        self.adjusts += other.adjusts;
        self.reads += other.reads;
        self.slots += other.slots;
        if other.q_final.is_some() {
            self.q_final = other.q_final;
        }
    }
}

/// One inventory round: its span plus the slot breakdown attributed to it.
#[derive(Debug, Clone)]
pub struct RoundNode {
    /// JSONL line of the round's span event.
    pub line: usize,
    pub span: SpanRecord,
    pub stats: RoundStats,
}

/// One reading phase within a cycle, holding its rounds in air-time order.
#[derive(Debug, Clone)]
pub struct PhaseNode {
    pub line: usize,
    pub span: SpanRecord,
    pub rounds: Vec<RoundNode>,
}

impl PhaseNode {
    /// Summed slot stats over the phase's rounds.
    pub fn stats(&self) -> RoundStats {
        let mut total = RoundStats::default();
        for r in &self.rounds {
            total.absorb(&r.stats);
        }
        total
    }
}

/// One full two-phase cycle.
#[derive(Debug, Clone)]
pub struct CycleNode {
    pub line: usize,
    pub span: SpanRecord,
    pub phase1: Option<PhaseNode>,
    pub phase2: Option<PhaseNode>,
    /// Host-side compute span (`cycle.compute`, wall clock).
    pub compute: Option<SpanRecord>,
}

impl CycleNode {
    /// Simulated start of the cycle.
    pub fn start(&self) -> f64 {
        self.span.start
    }

    /// Simulated end of the cycle.
    pub fn end(&self) -> f64 {
        self.span.start + self.span.duration
    }

    /// Whether a simulated instant falls inside this cycle.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start() - CONTAIN_EPS && t <= self.end() + CONTAIN_EPS
    }
}

/// A per-tag moment with the JSONL line it came from. Lines order tag
/// events against cycle spans (a cycle's tags are emitted right after its
/// span closes), which attributes tags to cycles even when a trace holds
/// several experiments whose simulated clocks each restart at zero.
#[derive(Debug, Clone)]
pub struct TagMoment {
    pub line: usize,
    pub rec: TagRecord,
}

/// Ordered per-counter history: each delta with its line, plus the final
/// running total.
#[derive(Debug, Clone, Default)]
pub struct CounterSeries {
    pub deltas: Vec<u64>,
    pub total: u64,
}

/// A fully validated trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Every span, in emission order (children precede their parents on
    /// the sim clock because spans are emitted when they *end*).
    pub spans: Vec<SpanRecord>,
    /// Cycle trees, in emission order.
    pub cycles: Vec<CycleNode>,
    /// Rounds whose parent chain contains no cycle (a reader driven
    /// outside a controller, e.g. `run_for` in isolation).
    pub stray_rounds: Vec<RoundNode>,
    /// Counter histories by name.
    pub counters: BTreeMap<String, CounterSeries>,
    /// Gauge value histories by name.
    pub gauges: BTreeMap<String, Vec<f64>>,
    /// Raw histogram observations by name.
    pub observes: BTreeMap<String, Vec<f64>>,
    /// Per-tag moments, in emission order.
    pub tags: Vec<TagMoment>,
    /// Round activity never claimed by a round span.
    pub unattributed: RoundStats,
    /// Total events ingested.
    pub events_total: usize,
    /// The trace footer, when the stream carried one (the last, if a
    /// ring dump stacked a second footer after the handle's own).
    pub footer: Option<FooterRecord>,
}

impl Trace {
    /// Builds a trace from `(line, event)` pairs as produced by
    /// [`format::read_events`].
    pub fn from_numbered_events(events: &[(usize, Event)]) -> Result<Trace, TraceError> {
        if events.is_empty() {
            return Err(TraceError::Empty);
        }
        // The footer closes the stream but its verdict governs how the
        // whole stream is validated, so scan for it up front: any footer
        // reporting suppression switches the builder to lenient mode.
        let mut b = Builder {
            lenient: events
                .iter()
                .any(|(_, ev)| matches!(ev, Event::Footer(f) if !f.is_complete())),
            ..Builder::default()
        };
        for (line, ev) in events {
            b.push(*line, ev)?;
        }
        b.finish(events.len())
    }

    /// Builds a trace from bare events (lines synthesized as 1-based
    /// indices) — the in-process path for `MemorySink` contents.
    pub fn from_events(events: &[Event]) -> Result<Trace, TraceError> {
        let numbered: Vec<(usize, Event)> = events
            .iter()
            .enumerate()
            .map(|(i, e)| (i + 1, e.clone()))
            .collect();
        Trace::from_numbered_events(&numbered)
    }

    /// Parses and validates a trace stream of either format (JSONL or
    /// binary `.twb`, sniffed from the leading bytes).
    pub fn from_reader<R: Read>(reader: R) -> Result<Trace, TraceError> {
        let events = format::read_events(reader)?;
        Trace::from_numbered_events(&events)
    }

    /// Parses and validates a trace file of either format. Record
    /// numbering is format-invariant (binary record k = JSONL line k),
    /// so every line-anchored diagnostic and attribution below reads the
    /// same whichever encoding the run was captured in.
    pub fn from_path<P: AsRef<Path>>(path: P) -> Result<Trace, TraceError> {
        let events = format::read_events_path(path)?;
        Trace::from_numbered_events(&events)
    }

    /// The simulated window covered by the trace: `(start, end)` over all
    /// sim-clock spans and tag events. `None` when the trace carries no
    /// simulated time at all.
    pub fn sim_window(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.spans {
            if s.clock == ClockKind::Sim {
                lo = lo.min(s.start);
                hi = hi.max(s.start + s.duration);
            }
        }
        for t in &self.tags {
            lo = lo.min(t.rec.t);
            hi = hi.max(t.rec.t);
        }
        if lo.is_finite() && hi.is_finite() {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Simulated seconds covered (0 when the window is degenerate).
    pub fn sim_seconds(&self) -> f64 {
        self.sim_window().map_or(0.0, |(lo, hi)| (hi - lo).max(0.0))
    }

    /// All rounds, cycle-attached and stray, in emission order.
    pub fn all_rounds(&self) -> Vec<&RoundNode> {
        let mut out: Vec<&RoundNode> = Vec::new();
        for c in &self.cycles {
            for p in [&c.phase1, &c.phase2].into_iter().flatten() {
                out.extend(p.rounds.iter());
            }
        }
        out.extend(self.stray_rounds.iter());
        out.sort_by_key(|r| r.line);
        out
    }

    /// Final value of a counter, 0 when never emitted. Totals are
    /// registry-side and therefore exact even in sampled traces.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.total)
    }

    /// Whether the stream held every event the run emitted: true for
    /// footer-less traces (which are strictly validated) and for footers
    /// reporting zero suppression.
    pub fn is_complete(&self) -> bool {
        match &self.footer {
            Some(f) => f.is_complete(),
            None => true,
        }
    }
}

/// Incremental trace builder: applies the attribution contract and the
/// per-event validations, then assembles the span tree in `finish`.
#[derive(Default)]
struct Builder {
    spans: Vec<(usize, SpanRecord)>,
    counters: BTreeMap<String, CounterSeries>,
    gauges: BTreeMap<String, Vec<f64>>,
    observes: BTreeMap<String, Vec<f64>>,
    tags: Vec<TagMoment>,
    pending: RoundStats,
    rounds: Vec<RoundNode>,
    unattributed: RoundStats,
    footer: Option<FooterRecord>,
    /// Set when a footer admits suppression: relaxes counter totals to
    /// monotone and tolerates parents missing from the stream.
    lenient: bool,
}

impl Builder {
    fn push(&mut self, line: usize, ev: &Event) -> Result<(), TraceError> {
        match ev {
            Event::Span(s) => {
                if s.name == "round" {
                    self.rounds.push(RoundNode {
                        line,
                        span: s.clone(),
                        stats: std::mem::take(&mut self.pending),
                    });
                }
                self.spans.push((line, s.clone()));
            }
            Event::Counter(c) => {
                let series = self.counters.entry(c.name.clone()).or_default();
                let expected = series.total + c.delta;
                // Complete traces must reconcile exactly. Sampled or
                // truncated ones (footer says so) are missing delta
                // events, so the registry-side total may only run ahead
                // of the stream-side sum — never behind it.
                let bad = if self.lenient {
                    c.total < expected
                } else {
                    c.total != expected
                };
                if bad {
                    return Err(TraceError::CounterRegression {
                        line,
                        name: c.name.clone(),
                        expected,
                        actual: c.total,
                    });
                }
                series.deltas.push(c.delta);
                series.total = c.total;
                match c.name.as_str() {
                    "round.empties" => self.pending.empties += c.delta,
                    "round.collisions" => self.pending.collisions += c.delta,
                    "round.successes" => self.pending.successes += c.delta,
                    "round.decode_failures" => self.pending.decode_failures += c.delta,
                    "round.adjusts" => self.pending.adjusts += c.delta,
                    "round.reads" => self.pending.reads += c.delta,
                    _ => {}
                }
            }
            Event::Gauge(g) => {
                self.gauges.entry(g.name.clone()).or_default().push(g.value);
            }
            Event::Observe(o) => {
                self.observes
                    .entry(o.name.clone())
                    .or_default()
                    .push(o.value);
                match o.name.as_str() {
                    "round.slots" => self.pending.slots += o.value,
                    "round.q_final" => self.pending.q_final = Some(o.value),
                    _ => {}
                }
            }
            Event::Tag(t) => self.tags.push(TagMoment {
                line,
                rec: t.clone(),
            }),
            // Last footer wins (a ring dump can stack its own after the
            // handle's).
            Event::Footer(f) => self.footer = Some(f.clone()),
        }
        Ok(())
    }

    fn finish(mut self, events_total: usize) -> Result<Trace, TraceError> {
        if !self.pending.is_empty() {
            self.unattributed.absorb(&self.pending);
        }

        // Index span ids; duplicates are a handle-reuse bug upstream.
        let mut id_line: BTreeMap<u64, usize> = BTreeMap::new();
        for (line, s) in &self.spans {
            if id_line.insert(s.id, *line).is_some() {
                return Err(TraceError::DuplicateSpanId {
                    line: *line,
                    id: s.id,
                });
            }
        }

        // Every parent reference must resolve. (Parents are emitted after
        // their children — spans close inside-out — so resolution runs
        // over the completed index.) In lenient mode an unresolved parent
        // is expected: an event ceiling cuts the stream's tail, which is
        // exactly where the enclosing spans live. Such spans are treated
        // as roots (their rounds land in `stray_rounds`).
        if !self.lenient {
            for (line, s) in &self.spans {
                if let Some(p) = s.parent {
                    if !id_line.contains_key(&p) {
                        return Err(TraceError::OrphanSpan {
                            line: *line,
                            id: s.id,
                            parent: p,
                            name: s.name.clone(),
                        });
                    }
                }
            }
        }

        let by_id: BTreeMap<u64, &SpanRecord> = self.spans.iter().map(|(_, s)| (s.id, s)).collect();

        // Phases keyed by cycle id; compute spans likewise.
        let mut cycles: Vec<CycleNode> = Vec::new();
        let mut cycle_index: BTreeMap<u64, usize> = BTreeMap::new();
        for (line, s) in &self.spans {
            if s.name == "cycle" {
                cycle_index.insert(s.id, cycles.len());
                cycles.push(CycleNode {
                    line: *line,
                    span: s.clone(),
                    phase1: None,
                    phase2: None,
                    compute: None,
                });
            }
        }

        let mut phase_of_round: BTreeMap<u64, (usize, bool)> = BTreeMap::new(); // span id → (cycle idx, is_phase2)
        for (line, s) in &self.spans {
            let is_phase = s.name == "phase1" || s.name == "phase2";
            if !is_phase && s.name != "cycle.compute" {
                continue;
            }
            let parent = s.parent.ok_or_else(|| TraceError::Structure {
                line: *line,
                message: format!("span `{}` (id {}) has no parent cycle", s.name, s.id),
            })?;
            // A parent missing from a truncated stream is tolerated; a
            // parent that is present but not a cycle is a real violation
            // regardless.
            if self.lenient && !id_line.contains_key(&parent) {
                continue;
            }
            let &cycle_idx = cycle_index
                .get(&parent)
                .ok_or_else(|| TraceError::Structure {
                    line: *line,
                    message: format!(
                        "span `{}` (id {}) is parented to `{}` (id {parent}), not a cycle",
                        s.name,
                        s.id,
                        by_id.get(&parent).map_or("?", |p| p.name.as_str())
                    ),
                })?;
            let cycle = &mut cycles[cycle_idx];
            if is_phase {
                let end = s.start + s.duration;
                if s.start < cycle.start() - CONTAIN_EPS || end > cycle.end() + CONTAIN_EPS {
                    return Err(TraceError::Structure {
                        line: *line,
                        message: format!(
                            "span `{}` [{:.6}, {:.6}] spills outside its cycle [{:.6}, {:.6}]",
                            s.name,
                            s.start,
                            end,
                            cycle.start(),
                            cycle.end()
                        ),
                    });
                }
            }
            let slot = match s.name.as_str() {
                "phase1" => &mut cycle.phase1,
                "phase2" => &mut cycle.phase2,
                _ => {
                    if cycle.compute.is_some() {
                        return Err(TraceError::Structure {
                            line: *line,
                            message: format!(
                                "cycle id {parent} has more than one `cycle.compute` span"
                            ),
                        });
                    }
                    cycle.compute = Some(s.clone());
                    continue;
                }
            };
            if slot.is_some() {
                return Err(TraceError::Structure {
                    line: *line,
                    message: format!("cycle id {parent} has more than one `{}` span", s.name),
                });
            }
            phase_of_round.insert(s.id, (cycle_idx, s.name == "phase2"));
            *slot = Some(PhaseNode {
                line: *line,
                span: s.clone(),
                rounds: Vec::new(),
            });
        }

        // Attach rounds to their phases; anything else is stray.
        let mut stray_rounds = Vec::new();
        for r in self.rounds {
            match r.span.parent.and_then(|p| phase_of_round.get(&p)) {
                Some(&(cycle_idx, is_phase2)) => {
                    let cycle = &mut cycles[cycle_idx];
                    let phase = if is_phase2 {
                        cycle.phase2.as_mut()
                    } else {
                        cycle.phase1.as_mut()
                    }
                    .expect("phase registered in phase_of_round"); // lint:allow(panic-policy): phase_of_round only maps registered phases
                    let end = r.span.start + r.span.duration;
                    let pend = phase.span.start + phase.span.duration;
                    if r.span.start < phase.span.start - CONTAIN_EPS || end > pend + CONTAIN_EPS {
                        return Err(TraceError::Structure {
                            line: r.line,
                            message: format!(
                                "round [{:.6}, {:.6}] spills outside its `{}` phase [{:.6}, {:.6}]",
                                r.span.start, end, phase.span.name, phase.span.start, pend
                            ),
                        });
                    }
                    phase.rounds.push(r);
                }
                None => stray_rounds.push(r),
            }
        }

        Ok(Trace {
            spans: self.spans.into_iter().map(|(_, s)| s).collect(),
            cycles,
            stray_rounds,
            counters: self.counters,
            gauges: self.gauges,
            observes: self.observes,
            tags: self.tags,
            unattributed: self.unattributed,
            events_total,
            footer: self.footer,
        })
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use tagwatch_telemetry::{CounterRecord, ObserveRecord};

    fn span(name: &str, id: u64, parent: Option<u64>, start: f64, dur: f64) -> Event {
        Event::Span(SpanRecord {
            name: name.into(),
            id,
            parent,
            start,
            duration: dur,
            clock: ClockKind::Sim,
        })
    }

    fn counter(name: &str, delta: u64, total: u64) -> Event {
        Event::Counter(CounterRecord {
            name: name.into(),
            delta,
            total,
        })
    }

    fn observe(name: &str, value: f64) -> Event {
        Event::Observe(ObserveRecord {
            name: name.into(),
            value,
        })
    }

    /// A minimal well-formed cycle: two rounds in phase1, one in phase2.
    /// Emission order mirrors the real stack: round metrics, round span,
    /// …, phase span, …, cycle span.
    fn well_formed() -> Vec<Event> {
        vec![
            counter("round.successes", 3, 3),
            counter("round.empties", 2, 2),
            observe("round.slots", 8.0),
            observe("round.q_final", 3.0),
            span("round", 1, Some(10), 0.0, 0.4),
            counter("round.successes", 1, 4),
            observe("round.slots", 4.0),
            observe("round.q_final", 2.0),
            span("round", 2, Some(10), 0.4, 0.2),
            span("phase1", 10, Some(30), 0.0, 0.6),
            counter("round.successes", 2, 6),
            observe("round.slots", 4.0),
            observe("round.q_final", 2.0),
            span("round", 3, Some(20), 0.6, 0.3),
            span("phase2", 20, Some(30), 0.6, 0.4),
            span("cycle", 30, None, 0.0, 1.0),
            counter("cycle.census", 5, 5),
        ]
    }

    #[test]
    fn builds_cycle_tree_with_attributed_rounds() {
        let t = Trace::from_events(&well_formed()).unwrap();
        assert_eq!(t.cycles.len(), 1);
        let c = &t.cycles[0];
        let p1 = c.phase1.as_ref().unwrap();
        let p2 = c.phase2.as_ref().unwrap();
        assert_eq!(p1.rounds.len(), 2);
        assert_eq!(p2.rounds.len(), 1);
        assert_eq!(p1.rounds[0].stats.successes, 3);
        assert_eq!(p1.rounds[0].stats.empties, 2);
        assert_eq!(p1.rounds[0].stats.q_final, Some(3.0));
        assert_eq!(p1.rounds[1].stats.successes, 1);
        assert_eq!(p1.stats().successes, 4);
        // Exact equality: the trace carries the literal 4.0 through.
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(p2.rounds[0].stats.slots, 4.0);
        }
        assert!(t.unattributed.is_empty());
        assert_eq!(t.counter("cycle.census"), 5);
        assert_eq!(t.sim_window(), Some((0.0, 1.0)));
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(matches!(Trace::from_events(&[]), Err(TraceError::Empty)));
    }

    #[test]
    fn duplicate_span_id_is_rejected_with_line() {
        let mut ev = well_formed();
        ev.push(span("cycle", 30, None, 2.0, 1.0));
        let err = Trace::from_events(&ev).unwrap_err();
        match err {
            TraceError::DuplicateSpanId { line, id } => {
                assert_eq!(id, 30);
                assert_eq!(line, ev.len());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn orphan_parent_is_rejected_with_line() {
        let ev = vec![span("round", 1, Some(99), 0.0, 0.1)];
        let err = Trace::from_events(&ev).unwrap_err();
        match err {
            TraceError::OrphanSpan {
                line, id, parent, ..
            } => {
                assert_eq!((line, id, parent), (1, 1, 99));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn phase_parented_to_non_cycle_is_structural_error() {
        let ev = vec![
            span("phase1", 10, Some(20), 0.0, 0.5),
            span("phase2", 20, None, 0.0, 1.0), // parent exists but is not a cycle
        ];
        let err = Trace::from_events(&ev).unwrap_err();
        match &err {
            TraceError::Structure { line, message } => {
                assert_eq!(*line, 1);
                assert!(message.contains("not a cycle"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn phase_outside_cycle_window_is_structural_error() {
        let ev = vec![
            span("phase1", 10, Some(30), 0.0, 2.0), // longer than the cycle
            span("cycle", 30, None, 0.0, 1.0),
        ];
        let err = Trace::from_events(&ev).unwrap_err();
        assert!(
            matches!(err, TraceError::Structure { line: 1, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("spills outside"));
    }

    #[test]
    fn counter_total_mismatch_is_rejected() {
        let ev = vec![
            counter("round.reads", 2, 2),
            counter("round.reads", 3, 9), // should be 5
        ];
        let err = Trace::from_events(&ev).unwrap_err();
        match err {
            TraceError::CounterRegression {
                line,
                expected,
                actual,
                ..
            } => assert_eq!((line, expected, actual), (2, 5, 9)),
            other => panic!("unexpected {other:?}"),
        }
    }

    fn footer(sampled_out: u64, dropped: u64, every_n: u32) -> Event {
        Event::Footer(tagwatch_telemetry::FooterRecord {
            emitted: 100,
            sampled_out,
            dropped,
            sample_every_n_rounds: every_n,
            max_events: 0,
        })
    }

    #[test]
    fn complete_footer_keeps_strict_counter_check() {
        let ev = vec![
            counter("round.reads", 2, 2),
            counter("round.reads", 3, 9), // should be 5
            footer(0, 0, 1),
        ];
        assert!(matches!(
            Trace::from_events(&ev),
            Err(TraceError::CounterRegression { .. })
        ));
    }

    #[test]
    fn sampling_footer_relaxes_counters_to_monotone() {
        // A sampled stream: the delta event for totals 2→7 was suppressed,
        // so the next delivered total runs ahead of the delta sum.
        let ev = vec![
            counter("round.reads", 2, 2),
            counter("round.reads", 3, 10), // 5 deltas invisible: total jumped
            footer(4, 0, 2),
        ];
        let t = Trace::from_events(&ev).unwrap();
        assert_eq!(t.counter("round.reads"), 10);
        assert!(!t.is_complete());
        assert_eq!(t.footer.as_ref().unwrap().sample_every_n_rounds, 2);

        // Running *behind* the delta sum is corruption in any mode.
        let bad = vec![
            counter("round.reads", 2, 2),
            counter("round.reads", 3, 4), // behind 2+3
            footer(4, 0, 2),
        ];
        assert!(matches!(
            Trace::from_events(&bad),
            Err(TraceError::CounterRegression { .. })
        ));
    }

    #[test]
    fn truncation_footer_tolerates_missing_parents() {
        // A max_events ceiling cut the tail: the rounds' phase span and
        // the cycle span never made it into the stream.
        let ev = vec![
            counter("round.successes", 3, 3),
            span("round", 1, Some(10), 0.0, 0.4),
            footer(0, 5, 1),
        ];
        let t = Trace::from_events(&ev).unwrap();
        assert_eq!(t.stray_rounds.len(), 1);
        assert_eq!(t.stray_rounds[0].stats.successes, 3);
        assert!(!t.is_complete());

        // Without the footer the same stream is an orphan error.
        let strict: Vec<Event> = ev[..2].to_vec();
        assert!(matches!(
            Trace::from_events(&strict),
            Err(TraceError::OrphanSpan { .. })
        ));
    }

    #[test]
    fn truncated_phase_without_its_cycle_is_skipped_leniently() {
        let ev = vec![
            span("round", 1, Some(10), 0.0, 0.4),
            span("phase1", 10, Some(99), 0.0, 0.6), // cycle 99 was cut off
            footer(0, 3, 1),
        ];
        let t = Trace::from_events(&ev).unwrap();
        assert!(t.cycles.is_empty());
        // The round's phase exists but joined no cycle → round is stray.
        assert_eq!(t.stray_rounds.len(), 1);
        assert_eq!(t.spans.len(), 2);
    }

    #[test]
    fn well_formed_trace_reports_complete_without_footer() {
        let t = Trace::from_events(&well_formed()).unwrap();
        assert!(t.is_complete());
        assert!(t.footer.is_none());
    }

    #[test]
    fn rounds_without_cycle_are_stray_and_leftover_metrics_unattributed() {
        let ev = vec![
            counter("round.successes", 2, 2),
            span("round", 1, None, 0.0, 0.3),
            // Trailing round activity with no span to claim it.
            counter("round.successes", 7, 9),
        ];
        let t = Trace::from_events(&ev).unwrap();
        assert!(t.cycles.is_empty());
        assert_eq!(t.stray_rounds.len(), 1);
        assert_eq!(t.stray_rounds[0].stats.successes, 2);
        assert_eq!(t.unattributed.successes, 7);
        assert_eq!(t.all_rounds().len(), 1);
    }
}
