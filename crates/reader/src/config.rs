//! Reader configuration.

use serde::{Deserialize, Serialize};
use tagwatch_gen2::{LinkTiming, Session};
use tagwatch_rf::{ChannelModel, ChannelPlan};

/// Which inventory-round engine the reader runs.
///
/// Both engines implement the same Gen2 semantics and are proven
/// bit-identical (same reports, same round stats, same RNG stream) by
/// the differential tests in `tagwatch-gen2` and the engine-equivalence
/// proptests; the batched engine is simply faster. The reference engine
/// stays selectable (`--engine reference` in the harness) so any future
/// divergence can be bisected against the original scalar code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EngineKind {
    /// The original scalar per-tag state-machine loop
    /// ([`tagwatch_gen2::run_round`]).
    Reference,
    /// The SoA frame-batched hot path
    /// ([`tagwatch_gen2::run_round_batched`]) with per-(tag, antenna)
    /// channel caching. The default.
    #[default]
    Batched,
}

impl EngineKind {
    /// Parses the harness-flag spelling (`reference` / `batched`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "reference" => Some(EngineKind::Reference),
            "batched" => Some(EngineKind::Batched),
            _ => None,
        }
    }
}

/// Configuration of the simulated COTS reader.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReaderConfig {
    /// Initial Q for every inventory round (the reader's Q-adaptive takes
    /// over from there — §2.3's "the reader will gradually and
    /// automatically adjust the actual Q").
    pub initial_q: u8,
    /// Gen2 session used for inventory.
    pub session: Session,
    /// Air-interface timings.
    pub link: LinkTiming,
    /// Frequency plan.
    pub channel_plan: ChannelPlan,
    /// Physical channel model.
    pub channel_model: ChannelModel,
    /// Probability that a single clean reply is undecodable (fault
    /// injection; 0 disables).
    pub decode_fail_prob: f64,
    /// Forward-field range in metres: tags farther than this from the
    /// *active* antenna are not energised and sit out its rounds (losing
    /// volatile flags, as unpowered tags do). `None` = unlimited range —
    /// every antenna covers every tag, the default for single-antenna
    /// experiments. The paper's 4×40 deployment ("each antenna covers 40
    /// tags") is this with a finite range.
    pub field_range_m: Option<f64>,
    /// Round engine (see [`EngineKind`]). Defaults to the batched hot
    /// path; configs that omit the field keep working.
    #[serde(default)]
    pub engine: EngineKind,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        ReaderConfig {
            initial_q: 4,
            session: Session::S1,
            link: LinkTiming::r420(),
            channel_plan: ChannelPlan::china_920(),
            channel_model: ChannelModel::default(),
            decode_fail_prob: 0.0,
            field_range_m: None,
            engine: EngineKind::default(),
        }
    }
}

impl ReaderConfig {
    /// A config with a noiseless channel and a single frequency — for
    /// tests that need phase to be a pure function of geometry.
    pub fn deterministic() -> Self {
        ReaderConfig {
            channel_plan: ChannelPlan::single(922.5e6),
            channel_model: ChannelModel::noiseless(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn default_is_paper_like() {
        let cfg = ReaderConfig::default();
        assert_eq!(cfg.channel_plan.len(), 16);
        assert_eq!(cfg.initial_q, 4);
        assert_eq!(cfg.decode_fail_prob, 0.0);
    }

    #[test]
    fn deterministic_config_single_channel() {
        let cfg = ReaderConfig::deterministic();
        assert_eq!(cfg.channel_plan.len(), 1);
        assert_eq!(cfg.channel_model.noise.phase_sigma, 0.0);
    }
}
