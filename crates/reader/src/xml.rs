//! LLRP-style XML rendering of ROSpecs (the shape of the paper's Fig. 11).
//!
//! The paper configures its reader by shipping an XML `ROSpec` through the
//! LLRP Tool Kit; this module renders our typed [`RoSpec`] into the same
//! document shape — handy for debugging what the middleware scheduled,
//! for golden-file tests, and for anyone porting the scheduler onto a real
//! LTK stack. (Parsing is intentionally out of scope: the simulator
//! consumes the typed form directly.)

use crate::llrp::RoSpec;
use std::fmt::Write as _;
use tagwatch_gen2::Session;

/// Renders `spec` as an LLRP-flavoured XML document.
///
/// Field mapping follows the paper's example: each `AISpec` carries its
/// antenna IDs and one `C1G2Filter` per bitmask with `MB` (memory bank),
/// `Pointer` (bit address — offset by 0x20, the EPC field's position
/// after CRC-16 and PC in bank 1), `Length`, and the mask bits in hex.
pub fn rospec_to_xml(spec: &RoSpec, session: Session) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<ROSpec>");
    let _ = writeln!(out, "  <ROSpecID>{}</ROSpecID>", spec.id);
    let _ = writeln!(out, "  <Priority>0</Priority>");
    let _ = writeln!(out, "  <CurrentState>Disabled</CurrentState>");
    for ai in &spec.ai_specs {
        let _ = writeln!(out, "  <AISpec>");
        let _ = write!(out, "    <AntennaIDs>");
        for (i, a) in ai.antennas.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, " ");
            }
            let _ = write!(out, "{a}");
        }
        let _ = writeln!(out, "</AntennaIDs>");
        match ai.dwell {
            Some(d) => {
                let _ = writeln!(out, "    <AISpecStopTrigger>");
                let _ = writeln!(
                    out,
                    "      <AISpecStopTriggerType>Duration</AISpecStopTriggerType>"
                );
                let _ = writeln!(
                    out,
                    "      <DurationTrigger>{}</DurationTrigger>",
                    (d * 1e3).round() as u64
                );
                let _ = writeln!(out, "    </AISpecStopTrigger>");
            }
            None => {
                let _ = writeln!(out, "    <AISpecStopTrigger>");
                let _ = writeln!(
                    out,
                    "      <AISpecStopTriggerType>Null</AISpecStopTriggerType>"
                );
                let _ = writeln!(out, "    </AISpecStopTrigger>");
            }
        }
        let _ = writeln!(out, "    <InventoryParameterSpec>");
        let _ = writeln!(out, "      <ProtocolID>EPCGlobalClass1Gen2</ProtocolID>");
        let _ = writeln!(out, "      <Session>{}</Session>", session.index());
        for f in &ai.filters {
            let mask = f.mask;
            // Render the mask bits MSB-first as hex, padded to nibbles.
            let nibbles = mask.length.div_ceil(4).max(1) as usize;
            let shifted = if mask.length % 4 == 0 {
                mask.bits
            } else {
                mask.bits << (4 - mask.length % 4)
            };
            let _ = writeln!(out, "      <C1G2Filter>");
            if f.truncate {
                let _ = writeln!(out, "        <T>Truncate</T>");
            }
            let _ = writeln!(out, "        <C1G2TagInventoryMask>");
            let _ = writeln!(out, "          <MB>1</MB>");
            let _ = writeln!(out, "          <Pointer>{}</Pointer>", 0x20 + mask.pointer);
            let _ = writeln!(
                out,
                "          <TagMask Length=\"{}\">{:0width$X}</TagMask>",
                mask.length,
                shifted,
                width = nibbles
            );
            let _ = writeln!(out, "        </C1G2TagInventoryMask>");
            let _ = writeln!(out, "      </C1G2Filter>");
        }
        let _ = writeln!(out, "    </InventoryParameterSpec>");
        let _ = writeln!(out, "  </AISpec>");
    }
    let _ = writeln!(out, "</ROSpec>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_gen2::{BitMask, Epc};

    #[test]
    fn read_all_document_shape() {
        let xml = rospec_to_xml(&RoSpec::read_all(7, vec![1, 2]), Session::S1);
        assert!(xml.starts_with("<ROSpec>"));
        assert!(xml.contains("<ROSpecID>7</ROSpecID>"));
        assert!(xml.contains("<AntennaIDs>1 2</AntennaIDs>"));
        assert!(xml.contains("<Session>1</Session>"));
        assert!(!xml.contains("C1G2Filter"), "read-all carries no filter");
        assert!(xml.contains("<AISpecStopTriggerType>Null<"));
        assert!(xml.trim_end().ends_with("</ROSpec>"));
    }

    #[test]
    fn selective_spec_one_filter_per_aispec() {
        // The paper's default encoding (Fig. 11): three bitmasks → three
        // AISpecs, one C1G2Filter each.
        let masks = [
            BitMask::new(0b1011, 4, 4),
            BitMask::new(0b01, 0, 2),
            BitMask::exact(Epc::from_bits(0xABC)),
        ];
        let xml = rospec_to_xml(&RoSpec::selective(3, vec![1], &masks), Session::S1);
        assert_eq!(xml.matches("<AISpec>").count(), 3);
        assert_eq!(xml.matches("<C1G2Filter>").count(), 3);
        // Pointer offset by the EPC field's bit address (0x20).
        assert!(xml.contains("<Pointer>36</Pointer>"), "0x20 + 4 = 36");
        assert!(xml.contains("<Pointer>32</Pointer>"));
        // 4-bit mask 1011 renders as hex "B".
        assert!(xml.contains("<TagMask Length=\"4\">B</TagMask>"), "{xml}");
        // 2-bit mask 01 renders left-aligned in its nibble: 0100₂ = 4.
        assert!(xml.contains("<TagMask Length=\"2\">4</TagMask>"), "{xml}");
    }

    #[test]
    fn dwell_renders_duration_trigger() {
        let xml = rospec_to_xml(
            &RoSpec::read_all_continuous(1, vec![1, 2, 3, 4], 0.05),
            Session::S0,
        );
        assert!(xml.contains("<AISpecStopTriggerType>Duration<"));
        assert!(xml.contains("<DurationTrigger>50</DurationTrigger>"));
    }

    #[test]
    fn full_epc_mask_renders_24_hex_digits() {
        let epc = Epc::from_bits(0x0123_4567_89AB_CDEF_0011_2233);
        let xml = rospec_to_xml(
            &RoSpec::selective(1, vec![1], &[BitMask::exact(epc)]),
            Session::S1,
        );
        assert!(
            xml.contains("<TagMask Length=\"96\">0123456789ABCDEF00112233</TagMask>"),
            "{xml}"
        );
    }
}
