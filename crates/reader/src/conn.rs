//! LLRP connection semantics: the ROSpec lifecycle verbs.
//!
//! A real LLRP client doesn't hand the reader a spec per inventory — it
//! `ADD`s ROSpecs to the reader's registry, `ENABLE`s them, `START`s them
//! (or lets triggers start them), and `DELETE`s them when done, with the
//! reader enforcing the state machine `Disabled → Inactive → Active` and
//! rejecting out-of-order verbs. [`ReaderConnection`] reproduces that
//! protocol surface over the simulated [`Reader`], so middleware written
//! against it ports to a real LTK stack without re-plumbing.

use crate::llrp::{LlrpError, RoSpec};
use crate::reader::{Reader, TagReport};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// ROSpec lifecycle states (LLRP §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoSpecState {
    /// Added but not enabled: cannot run.
    Disabled,
    /// Enabled, waiting for a start.
    Inactive,
}

/// Errors from the verb layer.
#[derive(Debug, Clone, PartialEq)]
pub enum VerbError {
    /// ROSpec id not in the registry.
    UnknownRoSpec(u32),
    /// A spec with this id already exists.
    DuplicateRoSpec(u32),
    /// Verb not legal in the spec's current state.
    WrongState {
        id: u32,
        state: RoSpecState,
        verb: &'static str,
    },
    /// The spec failed structural validation at ADD time.
    Invalid(LlrpError),
}

impl fmt::Display for VerbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbError::UnknownRoSpec(id) => write!(f, "no ROSpec {id}"),
            VerbError::DuplicateRoSpec(id) => write!(f, "ROSpec {id} already added"),
            VerbError::WrongState { id, state, verb } => {
                write!(f, "ROSpec {id} is {state:?}; cannot {verb}")
            }
            VerbError::Invalid(e) => write!(f, "invalid ROSpec: {e}"),
        }
    }
}

impl std::error::Error for VerbError {}

impl From<LlrpError> for VerbError {
    fn from(e: LlrpError) -> Self {
        VerbError::Invalid(e)
    }
}

/// An LLRP-style client connection to the simulated reader.
#[derive(Debug)]
pub struct ReaderConnection {
    reader: Reader,
    rospecs: BTreeMap<u32, (RoSpec, RoSpecState)>,
}

impl ReaderConnection {
    /// Opens a connection over a reader.
    pub fn new(reader: Reader) -> Self {
        ReaderConnection {
            reader,
            rospecs: BTreeMap::new(),
        }
    }

    /// Direct access to the underlying reader (clock, scene, events).
    pub fn reader(&self) -> &Reader {
        &self.reader
    }

    /// Mutable access (experiments mutate scenes between runs).
    pub fn reader_mut(&mut self) -> &mut Reader {
        &mut self.reader
    }

    /// Consumes the connection, returning the reader.
    pub fn into_reader(self) -> Reader {
        self.reader
    }

    /// Installs a fault injector on the underlying reader (see
    /// [`Reader::set_fault_injector`]): the LLRP client's view of "this
    /// reader is flaky today".
    pub fn set_fault_injector(&mut self, injector: Box<dyn tagwatch_fault::FaultInjector>) {
        self.reader.set_fault_injector(injector);
    }

    /// `ADD_ROSPEC`: validate and register, initially Disabled.
    pub fn add_rospec(&mut self, spec: RoSpec) -> Result<(), VerbError> {
        spec.validate()?;
        if self.rospecs.contains_key(&spec.id) {
            return Err(VerbError::DuplicateRoSpec(spec.id));
        }
        self.rospecs.insert(spec.id, (spec, RoSpecState::Disabled));
        Ok(())
    }

    /// `ENABLE_ROSPEC`: Disabled → Inactive.
    pub fn enable_rospec(&mut self, id: u32) -> Result<(), VerbError> {
        let (_, state) = self
            .rospecs
            .get_mut(&id)
            .ok_or(VerbError::UnknownRoSpec(id))?;
        match *state {
            RoSpecState::Disabled => {
                *state = RoSpecState::Inactive;
                Ok(())
            }
            s => Err(VerbError::WrongState {
                id,
                state: s,
                verb: "enable",
            }),
        }
    }

    /// `DISABLE_ROSPEC`: Inactive → Disabled.
    pub fn disable_rospec(&mut self, id: u32) -> Result<(), VerbError> {
        let (_, state) = self
            .rospecs
            .get_mut(&id)
            .ok_or(VerbError::UnknownRoSpec(id))?;
        match *state {
            RoSpecState::Inactive => {
                *state = RoSpecState::Disabled;
                Ok(())
            }
            s => Err(VerbError::WrongState {
                id,
                state: s,
                verb: "disable",
            }),
        }
    }

    /// `DELETE_ROSPEC`: remove from the registry (any state).
    pub fn delete_rospec(&mut self, id: u32) -> Result<RoSpec, VerbError> {
        self.rospecs
            .remove(&id)
            .map(|(spec, _)| spec)
            .ok_or(VerbError::UnknownRoSpec(id))
    }

    /// `START_ROSPEC`: run one execution of an enabled spec, returning its
    /// tag reports. (Our specs use null/duration stop triggers, so one
    /// start = one pass over the AISpecs; the spec returns to Inactive.)
    pub fn start_rospec(&mut self, id: u32) -> Result<Vec<TagReport>, VerbError> {
        let (spec, state) = self.rospecs.get(&id).ok_or(VerbError::UnknownRoSpec(id))?;
        if *state != RoSpecState::Inactive {
            return Err(VerbError::WrongState {
                id,
                state: *state,
                verb: "start",
            });
        }
        let spec = spec.clone();
        self.reader.execute(&spec).map_err(VerbError::Invalid)
    }

    /// Runs an enabled spec repeatedly for `duration` seconds of air time.
    pub fn run_rospec_for(&mut self, id: u32, duration: f64) -> Result<Vec<TagReport>, VerbError> {
        let (spec, state) = self.rospecs.get(&id).ok_or(VerbError::UnknownRoSpec(id))?;
        if *state != RoSpecState::Inactive {
            return Err(VerbError::WrongState {
                id,
                state: *state,
                verb: "start",
            });
        }
        let spec = spec.clone();
        self.reader
            .run_for(&spec, duration)
            .map_err(VerbError::Invalid)
    }

    /// The registry: `(id, state)` pairs in id order.
    pub fn rospec_states(&self) -> Vec<(u32, RoSpecState)> {
        self.rospecs.iter().map(|(id, (_, s))| (*id, *s)).collect()
    }

    /// A registered spec, if present.
    pub fn get_rospec(&self, id: u32) -> Option<&RoSpec> {
        self.rospecs.get(&id).map(|(spec, _)| spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReaderConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_gen2::Epc;
    use tagwatch_scene::presets;

    fn connection(n: usize) -> ReaderConnection {
        let scene = presets::random_room(n, 91);
        let mut rng = StdRng::seed_from_u64(92);
        let epcs: Vec<Epc> = (0..n).map(|_| Epc::random(&mut rng)).collect();
        ReaderConnection::new(Reader::new(scene, &epcs, ReaderConfig::default(), 93))
    }

    #[test]
    fn full_lifecycle() {
        let mut conn = connection(8);
        conn.add_rospec(RoSpec::read_all(1, vec![1])).unwrap();
        assert_eq!(conn.rospec_states(), vec![(1, RoSpecState::Disabled)]);

        conn.enable_rospec(1).unwrap();
        assert_eq!(conn.rospec_states(), vec![(1, RoSpecState::Inactive)]);

        let reports = conn.start_rospec(1).unwrap();
        assert_eq!(reports.len(), 8);
        // Still inactive after the pass completes.
        assert_eq!(conn.rospec_states(), vec![(1, RoSpecState::Inactive)]);

        conn.disable_rospec(1).unwrap();
        let spec = conn.delete_rospec(1).unwrap();
        assert_eq!(spec.id, 1);
        assert!(conn.rospec_states().is_empty());
    }

    #[test]
    fn verbs_enforce_state_machine() {
        let mut conn = connection(3);
        conn.add_rospec(RoSpec::read_all(5, vec![1])).unwrap();

        // Start before enable: rejected.
        assert!(matches!(
            conn.start_rospec(5),
            Err(VerbError::WrongState { verb: "start", .. })
        ));
        // Double add: rejected.
        assert!(matches!(
            conn.add_rospec(RoSpec::read_all(5, vec![1])),
            Err(VerbError::DuplicateRoSpec(5))
        ));
        // Enable twice: rejected the second time.
        conn.enable_rospec(5).unwrap();
        assert!(matches!(
            conn.enable_rospec(5),
            Err(VerbError::WrongState { verb: "enable", .. })
        ));
        // Unknown ids.
        assert!(matches!(
            conn.start_rospec(9),
            Err(VerbError::UnknownRoSpec(9))
        ));
        assert!(matches!(
            conn.delete_rospec(9),
            Err(VerbError::UnknownRoSpec(9))
        ));
    }

    #[test]
    fn invalid_specs_rejected_at_add() {
        let mut conn = connection(3);
        let bad = RoSpec {
            id: 2,
            ai_specs: vec![],
        };
        assert!(matches!(
            conn.add_rospec(bad),
            Err(VerbError::Invalid(LlrpError::NoAiSpecs))
        ));
        assert!(conn.rospec_states().is_empty());
    }

    #[test]
    fn multiple_specs_coexist() {
        let mut conn = connection(10);
        let epcs = conn.reader().epcs();
        conn.add_rospec(RoSpec::read_all(1, vec![1])).unwrap();
        conn.add_rospec(RoSpec::selective(
            2,
            vec![1],
            &[tagwatch_gen2::BitMask::exact(epcs[4])],
        ))
        .unwrap();
        conn.enable_rospec(1).unwrap();
        conn.enable_rospec(2).unwrap();
        let all = conn.start_rospec(1).unwrap();
        let one = conn.start_rospec(2).unwrap();
        assert_eq!(all.len(), 10);
        assert!(one.iter().all(|r| r.tag_idx == 4));
        assert!(!one.is_empty());
    }

    #[test]
    fn run_for_accumulates() {
        let mut conn = connection(4);
        conn.add_rospec(RoSpec::read_all(1, vec![1])).unwrap();
        conn.enable_rospec(1).unwrap();
        let t0 = conn.reader().now();
        let reports = conn.run_rospec_for(1, 0.5).unwrap();
        assert!(conn.reader().now() - t0 >= 0.5);
        assert!(reports.len() > 4);
    }
}
