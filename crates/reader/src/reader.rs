//! The simulated COTS reader.
//!
//! `Reader` owns the three substrates — tag protocol state machines
//! (gen2), the physical scene (scene), and the channel model (rf) — and
//! exposes the interface a real ImpinJ R420 exposes over LLRP: *execute
//! this ROSpec, stream back tag reports with EPC, phase, RSS, channel,
//! antenna and timestamp*. Tagwatch (the middleware) talks only to this
//! interface, exactly as the paper's prototype talks only to LLRP.

use crate::config::{EngineKind, ReaderConfig};
use crate::events::{EventLog, RoundEvent};
use crate::llrp::{LlrpError, RoSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tagwatch_fault::{FaultInjector, RoundEffects};
use tagwatch_gen2::{
    run_round, run_round_batched, Epc, FrameSizer, QAdaptive, RoundConfig, RoundWorkspace, Select,
    TagProto,
};
use tagwatch_rf::{ChannelCache, ChannelCacheStats, LinkGeometry, Reflector, RfMeasurement};
use tagwatch_scene::Scene;
use tagwatch_telemetry::{Telemetry, WorkCounters};

/// One tag read, as delivered to the middleware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagReport {
    /// The EPC backscattered by the tag.
    pub epc: Epc,
    /// Simulator-side tag index — ground truth for evaluation only; the
    /// middleware under test must not use it (real readers don't have it).
    pub tag_idx: usize,
    /// The physical-layer measurement attached to the read.
    pub rf: RfMeasurement,
}

/// The simulated reader.
#[derive(Debug, Clone)]
pub struct Reader {
    /// The physical scene (public: experiments mutate trajectories between
    /// runs).
    pub scene: Scene,
    /// Per-round event log (Fig. 17 and diagnostics).
    pub events: EventLog,
    protos: Vec<TagProto>,
    cfg: ReaderConfig,
    clock: f64,
    rng: StdRng,
    /// EWMA of tags-read-per-round: the reader's population estimate, used
    /// for Autoset-style dense-reader-mode link adaptation (see
    /// [`tagwatch_gen2::LinkTiming::scaled`]).
    mode_estimate: f64,
    /// Round-robin cursor for dwell-mode antenna rotation; persists across
    /// ROSpec executions so short dwells still cycle through every port.
    antenna_rr: usize,
    /// Telemetry handle; every completed round is promoted into counters
    /// and a duration histogram (see [`tagwatch_gen2::RoundResult::record`]).
    telemetry: Telemetry,
    /// Optional deterministic fault injector, polled on the simulated
    /// clock at each Select application and round start. `None` — the
    /// default — is the clean fast path: no polls, no extra RNG draws,
    /// and traces byte-identical to a fault-free build.
    fault_injector: Option<Box<dyn FaultInjector>>,
    /// Deterministic work accounting (slots, commands, channel
    /// evaluations, …), accumulated in plain fields on the hot path and
    /// flushed as `perf.work.*` counters once per ROSpec execution.
    /// Counting never touches `rng`, so it cannot perturb the
    /// simulation.
    work: WorkCounters,
    /// Reusable SoA scratch for the batched round engine; its buffers
    /// reach steady-state capacity after the first round and never
    /// allocate again.
    ws: RoundWorkspace,
    /// Per-(tag, antenna, channel) memo of the expensive geometry half of
    /// an RF observation, keyed on the scene's geometry epoch. Used only
    /// on the batched engine's reflector-free path; hits are
    /// bit-identical to fresh evaluations (see `tagwatch_rf::cache`).
    cache: ChannelCache,
    /// Reusable buffer for per-read reflector snapshots (the
    /// reflector-bearing path only).
    reflector_scratch: Vec<Reflector>,
    /// Reusable buffer for compiled Select sequences.
    selects_scratch: Vec<Select>,
}

/// Combines two independent loss probabilities (`1 − (1−a)(1−b)`),
/// passing a lone mechanism through exactly so a single configured
/// probability survives unrounded.
fn combine_loss(base: f64, add: f64) -> f64 {
    if add <= 0.0 {
        base
    } else if base <= 0.0 {
        add
    } else {
        1.0 - (1.0 - base) * (1.0 - add)
    }
}

impl Reader {
    /// Builds a reader over `scene`, assigning `epcs[i]` to scene tag `i`.
    ///
    /// Panics if the lengths differ — tag identity is positional across
    /// the scene/protocol boundary.
    pub fn new(scene: Scene, epcs: &[Epc], cfg: ReaderConfig, seed: u64) -> Self {
        assert_eq!(
            scene.tags.len(),
            epcs.len(),
            "one EPC per scene tag required"
        );
        let protos = epcs.iter().map(|&e| TagProto::new(e)).collect();
        let mode_estimate = (1u32 << cfg.initial_q.min(10)) as f64;
        // Cache dimensions are a snapshot of the construction-time scene;
        // tags or antennas added later fall outside them and simply never
        // hit (ChannelCache tolerates out-of-range keys).
        let n_ports = scene
            .antennas
            .iter()
            .map(|a| a.port as usize + 1)
            .max()
            .unwrap_or(0);
        let cache = ChannelCache::new(scene.tags.len(), n_ports, cfg.channel_plan.len());
        Reader {
            scene,
            events: EventLog::new(100_000),
            protos,
            cfg,
            clock: 0.0,
            rng: StdRng::seed_from_u64(seed),
            mode_estimate,
            antenna_rr: 0,
            telemetry: Telemetry::global().clone(),
            fault_injector: None,
            work: WorkCounters::default(),
            ws: RoundWorkspace::new(),
            cache,
            reflector_scratch: Vec::new(),
            selects_scratch: Vec::new(),
        }
    }

    /// Channel-cache accounting (hits, misses, epoch invalidations).
    /// Deliberately *not* a telemetry counter: the `perf.work.*` family
    /// is byte-compared across engine configurations, and the cache is
    /// an engine implementation detail, not simulated work.
    pub fn channel_cache_stats(&self) -> ChannelCacheStats {
        self.cache.stats()
    }

    /// Replaces the telemetry handle (the default is the process-wide
    /// [`Telemetry::global`] handle — disabled until a sink is installed).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Installs a fault injector (see `tagwatch-fault`). Every subsequent
    /// round is subject to the injector's plan; window edges appear in
    /// the telemetry stream as `fault.open.<slug>` / `fault.close.<slug>`
    /// tag events whose `epc` is the plan-event index and whose `t` is
    /// the canonical window edge.
    pub fn set_fault_injector(&mut self, injector: Box<dyn FaultInjector>) {
        self.fault_injector = Some(injector);
    }

    /// Removes the injector, returning the reader to clean operation.
    /// Tag-level fault state (mute, detune power-down) left behind by the
    /// plan is *not* rolled back; it clears at the next presence sync.
    pub fn clear_fault_injector(&mut self) {
        self.fault_injector = None;
    }

    /// Whether a fault injector is installed.
    pub fn has_fault_injector(&self) -> bool {
        self.fault_injector.is_some()
    }

    /// Polls the injector at the current clock: emits window-edge markers,
    /// services reader-level faults (restart stalls), and returns the
    /// effects the lower layers should see. The clean path — no injector —
    /// returns default effects without touching telemetry or the RNG.
    fn poll_faults(&mut self) -> RoundEffects {
        // Taken out and restored around the loop so the borrow of the
        // injector does not pin `self` while we mutate clock and tags.
        let Some(mut injector) = self.fault_injector.take() else {
            return RoundEffects::default();
        };
        let effects = loop {
            let poll = injector.poll(self.clock);
            for tr in &poll.transitions {
                let marker = if tr.opened {
                    format!("fault.open.{}", tr.slug)
                } else {
                    format!("fault.close.{}", tr.slug)
                };
                self.telemetry
                    .tag_event(&marker, tr.event_idx as u128, tr.t);
            }
            match poll.effects.restart {
                Some(r) if self.clock < r.end => {
                    // Reader stall: the connection is down until the
                    // window closes. The stall consumes simulated air
                    // time, and coming back resets the reader's adaptive
                    // state — exactly what a power-cycled R420 forgets.
                    self.clock = r.end;
                    self.mode_estimate = (1u32 << self.cfg.initial_q.min(10)) as f64;
                    self.antenna_rr = 0;
                    self.telemetry.incr("fault.reader_restarts");
                    if !r.preserve_flags {
                        // The field dropped long enough for every tag to
                        // lose volatile state; present tags re-energise
                        // immediately, back in Ready with default flags.
                        let t = self.clock;
                        for (proto, tag) in self.protos.iter_mut().zip(self.scene.tags.iter()) {
                            proto.power_down();
                            if tag.present_at(t) {
                                proto.power_up();
                            }
                        }
                    }
                    // Re-poll at the new clock: back-to-back restart
                    // windows stall again, and each iteration strictly
                    // advances the clock, so this terminates.
                    continue;
                }
                _ => break poll.effects,
            }
        };
        self.fault_injector = Some(injector);
        effects
    }

    /// Reconciles per-tag fault state (mute, detune) with the active
    /// effects. Runs *after* the field gate so a detuned tag stays dark
    /// even where the gate would re-energise it; once the window closes,
    /// the next presence sync or field gate powers the tag back up.
    fn apply_tag_faults(&mut self, effects: &RoundEffects) {
        if self.fault_injector.is_none() {
            return;
        }
        for (i, proto) in self.protos.iter_mut().enumerate() {
            proto.set_muted(effects.muted_tags.contains(&i));
            if effects.detuned_tags.contains(&i) && proto.powered {
                proto.power_down();
            }
        }
    }

    /// Applies one `Select` to the population. Under an active
    /// `select_loss` fault each tag independently fails to hear the
    /// command with the composed probability — the partial-coverage
    /// failure mode a marginal link produces in practice.
    fn apply_select(&mut self, sel: &Select, effects: &RoundEffects) {
        self.work.selects += 1;
        let p = effects.select_loss_prob;
        for proto in self.protos.iter_mut() {
            if p > 0.0 {
                self.work.rng_draws += 1;
                if self.rng.gen_bool(p) {
                    self.telemetry.incr("fault.selects_lost");
                    continue;
                }
            }
            proto.handle_select(sel);
        }
    }

    /// The link slow-down factor from dense-reader-mode adaptation at the
    /// current population estimate: `max(1, ln(estimate))`. With this, the
    /// simulated inventory cost reproduces the paper's measured `n·ln n`
    /// growth (Fig. 2) instead of ideal-DFSA linear growth.
    fn mode_factor(&self) -> f64 {
        self.mode_estimate.max(1.0).ln().max(1.0)
    }

    /// Current simulation time in seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Reader configuration.
    pub fn config(&self) -> &ReaderConfig {
        &self.cfg
    }

    /// Advances the clock without radio activity (models middleware
    /// compute gaps between phases).
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0, "time flows forward");
        self.clock += dt;
    }

    /// The EPCs of all tags, by index.
    pub fn epcs(&self) -> Vec<Epc> {
        self.protos.iter().map(|p| p.epc).collect()
    }

    /// Number of tags currently present (powered) in the field.
    pub fn present_count(&self) -> usize {
        self.scene.present_tags(self.clock).len()
    }

    /// Synchronises protocol power state with scene presence at the
    /// current clock. Called at each round boundary (presence changes
    /// mid-round are deferred to the next round — rounds last tens of
    /// milliseconds while presence windows span seconds).
    fn sync_presence(&mut self) {
        let t = self.clock;
        for (proto, tag) in self.protos.iter_mut().zip(self.scene.tags.iter()) {
            let should_be = tag.present_at(t);
            if should_be && !proto.powered {
                proto.power_up();
            } else if !should_be && proto.powered {
                proto.power_down();
            }
        }
    }

    /// Executes one pass of `spec` (every AISpec once, on each of its
    /// antennas), returning the tag reports in read order.
    pub fn execute(&mut self, spec: &RoSpec) -> Result<Vec<TagReport>, LlrpError> {
        let mut reports = Vec::new();
        self.execute_into(spec, &mut reports)?;
        Ok(reports)
    }

    /// [`Reader::execute`] into a caller-owned buffer: reports append to
    /// `reports` in read order. Long-running drivers reuse one buffer
    /// across executions so the steady-state report path never allocates.
    pub fn execute_into(
        &mut self,
        spec: &RoSpec,
        reports: &mut Vec<TagReport>,
    ) -> Result<(), LlrpError> {
        spec.validate()?;
        for (ai_idx, ai) in spec.ai_specs.iter().enumerate() {
            // Compile into the reusable scratch (taken out and restored so
            // the borrow does not pin `self` across the mutating calls).
            let mut selects = std::mem::take(&mut self.selects_scratch);
            ai.compile_into(self.cfg.session, &mut selects);
            match ai.dwell {
                None => {
                    // Inventory mode: one round per antenna, each paying
                    // the full start-up cost.
                    for &port in &ai.antennas {
                        self.sync_presence();
                        let effects = self.poll_faults();
                        for sel in &selects {
                            self.apply_select(sel, &effects);
                            self.clock += self.cfg.link.t_select;
                        }
                        let query = ai.query(self.cfg.session, self.cfg.initial_q);
                        let timing = self.cfg.link.scaled(self.mode_factor());
                        self.run_one_round(spec.id, ai_idx, ai, port, query, &timing, reports);
                    }
                }
                Some(dwell) => {
                    // Tracking mode: one carrier start, then continuous
                    // dual-target rounds rotating over the antennas (the
                    // mux switch is cheap), until the dwell elapses.
                    self.sync_presence();
                    let effects = self.poll_faults();
                    for sel in &selects {
                        self.apply_select(sel, &effects);
                        self.clock += self.cfg.link.t_select;
                    }
                    let t_dwell_start = self.clock;
                    let mut target = tagwatch_gen2::InvFlag::A;
                    let mut antenna_idx = self.antenna_rr;
                    loop {
                        self.sync_presence();
                        let port = ai.antennas[antenna_idx % ai.antennas.len()];
                        let mut query = ai.query(self.cfg.session, self.cfg.initial_q);
                        query.target = target;
                        let mut timing = self.cfg.link.scaled(self.mode_factor());
                        if self.clock > t_dwell_start {
                            timing.round_overhead = 0.0;
                        }
                        self.run_one_round(spec.id, ai_idx, ai, port, query, &timing, reports);
                        if self.clock - t_dwell_start >= dwell {
                            break;
                        }
                        target = target.toggled();
                        antenna_idx += 1;
                        self.clock += self.cfg.link.t_antenna_switch;
                    }
                    self.antenna_rr = antenna_idx.wrapping_add(1) % ai.antennas.len().max(1);
                }
            }
            self.selects_scratch = selects;
        }
        // One bulk flush per ROSpec execution: the accounting lands as
        // `perf.work.*` counters without per-unit telemetry calls.
        self.work.flush(&self.telemetry);
        Ok(())
    }

    /// Applies the forward-field gate for the active antenna: tags out of
    /// range are de-energised (and lose volatile state, as real unpowered
    /// tags do); tags back in range and present re-energise.
    fn apply_field_gate(&mut self, port: u8) {
        let Some(range) = self.cfg.field_range_m else {
            return;
        };
        let t = self.clock;
        let apos = self.scene.antenna(port).position;
        for (proto, tag) in self.protos.iter_mut().zip(self.scene.tags.iter()) {
            let eligible = tag.present_at(t) && tag.position_at(t).dist(apos) <= range;
            if eligible && !proto.powered {
                proto.power_up();
            } else if !eligible && proto.powered {
                proto.power_down();
            }
        }
    }

    /// Runs one inventory round on `port` and appends its reports/events.
    #[allow(clippy::too_many_arguments)]
    fn run_one_round(
        &mut self,
        rospec_id: u32,
        ai_idx: usize,
        _ai: &crate::llrp::AiSpec,
        port: u8,
        query: tagwatch_gen2::Query,
        timing: &tagwatch_gen2::LinkTiming,
        reports: &mut Vec<TagReport>,
    ) {
        let effects = self.poll_faults();
        self.apply_field_gate(port);
        self.apply_tag_faults(&effects);
        let round_cfg = RoundConfig {
            decode_fail_prob: combine_loss(self.cfg.decode_fail_prob, effects.decode_fail_add),
            query_rep_loss_prob: effects.query_rep_loss_prob,
            epc_corrupt_prob: effects.reply_corrupt_prob,
            ..RoundConfig::new(query)
        };
        // RF-layer faults perturb a per-round copy of the channel model;
        // the configured model is never mutated, so the fault clears with
        // its window.
        let mut channel_model = self.cfg.channel_model;
        if !effects.is_clean() {
            channel_model.noise.phase_sigma += effects.phase_sigma_add;
            channel_model.noise.rss_sigma_db += effects.rss_sigma_db_add;
            channel_model.rss_at_1m_dbm -= effects.rss_drop_db;
        }
        let mut sizer = QAdaptive::new(self.cfg.initial_q);
        let t_round_start = self.clock;
        // A simulated-clock span per round: under a controller cycle it
        // nests beneath the open phase span (per-thread parent inference),
        // giving offline analysis the full cycle → phase → round tree.
        let round_span = self.telemetry.sim_span("round", t_round_start);
        let result = if effects.antenna_out(port) {
            // The port is dark: the reader still keys the carrier and
            // waits out the round on air, but no tag hears it.
            self.telemetry.incr("fault.antenna_out_rounds");
            match self.cfg.engine {
                EngineKind::Reference => {
                    run_round(&mut [], &round_cfg, &mut sizer, timing, &mut self.rng)
                }
                EngineKind::Batched => run_round_batched(
                    &mut [],
                    &round_cfg,
                    &mut sizer,
                    timing,
                    &mut self.rng,
                    &mut self.ws,
                ),
            }
        } else {
            match self.cfg.engine {
                EngineKind::Reference => run_round(
                    &mut self.protos,
                    &round_cfg,
                    &mut sizer,
                    timing,
                    &mut self.rng,
                ),
                EngineKind::Batched => run_round_batched(
                    &mut self.protos,
                    &round_cfg,
                    &mut sizer,
                    timing,
                    &mut self.rng,
                    &mut self.ws,
                ),
            }
        };
        self.clock += result.duration;
        // Update the population estimate from what this round saw.
        self.mode_estimate = 0.5 * self.mode_estimate + 0.5 * (result.reads.len().max(1) as f64);

        // Work accounting: one Query starts the round; the slot loop's
        // command and slot counts come back in the stats.
        self.work.queries += 1;
        self.work.slots += result.stats.total_slots() as u64;
        self.work.query_reps += result.stats.query_reps as u64;
        self.work.query_adjusts += result.stats.adjusts as u64;

        let antenna_pos = self.scene.antenna(port).position;
        // Reflector-free scenes on the batched engine route observations
        // through the channel cache: the deterministic half of the
        // measurement is memoised under the scene's epoch (with a
        // bit-exact position guard for mobile tags) and replayed through
        // `measure_parts`, which draws the same two noise samples a fresh
        // `observe` would — a hit is bit-identical to a miss.
        // Reflector-bearing links are never cached: reflector motion is
        // not position-guarded.
        let use_cache = self.cfg.engine == EngineKind::Batched && self.scene.reflectors.is_empty();
        if use_cache {
            self.cache.ensure_epoch(self.scene.epoch());
        }
        let mut reflectors = std::mem::take(&mut self.reflector_scratch);
        for read in &result.reads {
            let t_abs = t_round_start + read.t;
            let tag_pos = self.scene.tag_position(read.tag_idx, t_abs);
            let tag_key = self.scene.tags[read.tag_idx].key;
            let chan = self.cfg.channel_plan.channel_at(t_abs);
            // One channel evaluation per delivered read: the LOS path
            // plus every reflector image is re-derived, and the noise
            // model draws twice (phase, RSS). These are *logical* work
            // counters — a cache hit still counts the evaluation it
            // stands in for, so `perf.work.*` totals stay byte-identical
            // across engines and cache states.
            self.work.channel_evals += 1;
            self.work.rng_draws += 2;
            let rf = if use_cache {
                self.work.geometry_recomputes += 1;
                let link = LinkGeometry {
                    antenna: antenna_pos,
                    tag: tag_pos,
                    reflectors: &[],
                };
                let (phase_base, forty_log) = self.cache.evaluate(
                    &channel_model,
                    &link,
                    read.tag_idx,
                    tag_key,
                    port,
                    chan.index,
                    chan.wavelength(),
                );
                channel_model.measure_parts(phase_base, forty_log, chan, port, t_abs, &mut self.rng)
            } else {
                self.scene.reflectors_at_into(t_abs, &mut reflectors);
                self.work.geometry_recomputes += 1 + reflectors.len() as u64;
                let link = LinkGeometry {
                    antenna: antenna_pos,
                    tag: tag_pos,
                    reflectors: &reflectors,
                };
                channel_model.observe(&link, tag_key, port, chan, t_abs, &mut self.rng)
            };
            reports.push(TagReport {
                epc: read.epc,
                tag_idx: read.tag_idx,
                rf,
            });
        }
        self.reflector_scratch = reflectors;
        self.events.push(RoundEvent {
            rospec_id,
            ai_spec: ai_idx,
            antenna: port,
            t_start: t_round_start,
            t_end: self.clock,
            reads: result.reads.len(),
            stats: result.stats,
        });
        // Promote the round into the telemetry stream: slot-outcome
        // counters, Q-adaptation adjustments, and the duration histogram,
        // then close the round span. Ordering matters to offline
        // consumers: a round's counters and observations are emitted
        // immediately *before* its span event, so `tagwatch-obs` can
        // attribute them to the round without timestamps on counters.
        result.record(&self.telemetry);
        // Sim-clock heartbeat: the round's end instant as a gauge, so a
        // live monitor's staleness watchdog keeps pace even while the
        // enclosing cycle span is still open.
        self.telemetry.gauge_set("round.sim_now", self.clock);
        self.telemetry
            .observe("round.q_final", sizer.current_q() as f64);
        round_span.end(self.clock);
        // Donate the result's reads buffer back to the workspace so the
        // next batched round reuses it instead of allocating.
        self.ws.recycle(result);
    }

    /// Repeats `spec` until at least `duration` seconds of air time have
    /// elapsed, returning all reports.
    pub fn run_for(&mut self, spec: &RoSpec, duration: f64) -> Result<Vec<TagReport>, LlrpError> {
        let mut all = Vec::new();
        self.run_for_into(spec, duration, &mut all)?;
        Ok(all)
    }

    /// [`Reader::run_for`] into a caller-owned buffer (appended, not
    /// cleared), so a steady-state driver can recycle one allocation
    /// across cycles — the [`Reader::execute_into`] counterpart.
    pub fn run_for_into(
        &mut self,
        spec: &RoSpec,
        duration: f64,
        reports: &mut Vec<TagReport>,
    ) -> Result<(), LlrpError> {
        let t_end = self.clock + duration;
        while self.clock < t_end {
            let before = self.clock;
            self.execute_into(spec, reports)?;
            assert!(
                self.clock > before,
                "an executed ROSpec must consume air time"
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    use tagwatch_gen2::BitMask;
    use tagwatch_scene::presets;

    fn random_epcs(n: usize, seed: u64) -> Vec<Epc> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Epc::random(&mut rng)).collect()
    }

    fn basic_reader(n: usize, seed: u64) -> Reader {
        let scene = presets::random_room(n, seed);
        let epcs = random_epcs(n, seed ^ 0xFF);
        Reader::new(scene, &epcs, ReaderConfig::default(), seed ^ 0xABCD)
    }

    #[test]
    fn read_all_reports_every_tag() {
        let mut reader = basic_reader(25, 1);
        let spec = RoSpec::read_all(1, vec![1]);
        let reports = reader.execute(&spec).unwrap();
        assert_eq!(reports.len(), 25);
        let mut idx: Vec<usize> = reports.iter().map(|r| r.tag_idx).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 25);
        assert!(reader.now() > 0.019, "at least the start-up cost elapsed");
    }

    #[test]
    fn reports_carry_consistent_epcs() {
        let mut reader = basic_reader(10, 2);
        let epcs = reader.epcs();
        let reports = reader.execute(&RoSpec::read_all(1, vec![1])).unwrap();
        for r in reports {
            assert_eq!(r.epc, epcs[r.tag_idx]);
        }
    }

    #[test]
    fn selective_spec_reads_only_covered() {
        let mut reader = basic_reader(30, 3);
        let epcs = reader.epcs();
        // Cover exactly tag 5 with its full EPC as the mask.
        let spec = RoSpec::selective(2, vec![1], &[BitMask::exact(epcs[5])]);
        let reports = reader.execute(&spec).unwrap();
        assert!(!reports.is_empty());
        assert!(reports.iter().all(|r| r.tag_idx == 5));
    }

    #[test]
    fn run_for_accumulates_rounds() {
        let mut reader = basic_reader(5, 4);
        let spec = RoSpec::read_all(1, vec![1]);
        let t0 = reader.now();
        let reports = reader.run_for(&spec, 1.0).unwrap();
        assert!(reader.now() - t0 >= 1.0);
        // ~1 s / C(5) ≈ 1/0.030 ≈ 30 rounds of 5 tags each.
        assert!(reports.len() > 100, "got {}", reports.len());
        // Read timestamps are monotone non-decreasing.
        let mut prev = 0.0;
        for r in &reports {
            assert!(r.rf.t >= prev);
            prev = r.rf.t;
        }
    }

    #[test]
    fn irr_decreases_with_population() {
        // The core premise of §2: more companion tags → lower per-tag rate.
        let rate_for = |n: usize| {
            let mut reader = basic_reader(n, 77);
            let spec = RoSpec::read_all(1, vec![1]);
            let reports = reader.run_for(&spec, 3.0).unwrap();
            let reads_of_zero = reports.iter().filter(|r| r.tag_idx == 0).count();
            reads_of_zero as f64 / reader.now()
        };
        let irr1 = rate_for(1);
        let irr40 = rate_for(40);
        assert!(
            irr1 > 3.0 * irr40,
            "expected a steep drop: Λ(1)={irr1:.1} Hz, Λ(40)={irr40:.1} Hz"
        );
        // Absolute scale near the paper's fitted model (~52 Hz at n=1,
        // ~11 Hz at n=40), generous tolerance for protocol overheads.
        assert!((35.0..70.0).contains(&irr1), "Λ(1) = {irr1}");
        assert!((6.0..18.0).contains(&irr40), "Λ(40) = {irr40}");
    }

    #[test]
    fn absent_tags_are_not_read() {
        let mut scene = presets::random_room(3, 5);
        // Tag 2 enters the field only after t = 100 s.
        scene.tags[2].presence = Some((100.0, 200.0));
        let epcs = random_epcs(3, 6);
        let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), 7);
        let reports = reader.execute(&RoSpec::read_all(1, vec![1])).unwrap();
        assert!(reports.iter().all(|r| r.tag_idx != 2));
        // Jump past the entry time: now it appears.
        reader.advance(100.0);
        let reports = reader.execute(&RoSpec::read_all(1, vec![1])).unwrap();
        assert!(reports.iter().any(|r| r.tag_idx == 2));
    }

    #[test]
    fn phase_is_geometry_dependent_and_reproducible() {
        let build = || {
            let scene = presets::random_room(4, 8);
            let epcs = random_epcs(4, 9);
            Reader::new(scene, &epcs, ReaderConfig::deterministic(), 10)
        };
        let mut r1 = build();
        let mut r2 = build();
        let spec = RoSpec::read_all(1, vec![1]);
        let a = r1.execute(&spec).unwrap();
        let b = r2.execute(&spec).unwrap();
        assert_eq!(a, b, "simulation must be bit-reproducible");
        // Different tags (different geometry) get different phases.
        assert!(a.windows(2).any(|w| w[0].rf.phase != w[1].rf.phase));
    }

    #[test]
    fn engines_produce_identical_reports() {
        // The tentpole equivalence claim at the reader boundary: the
        // batched engine (with channel caching live) and the reference
        // engine deliver bit-identical report streams and clocks.
        let build = |engine| {
            let scene = presets::turntable(12, 3, 50);
            let epcs = random_epcs(12, 51);
            let cfg = ReaderConfig {
                engine,
                ..ReaderConfig::default()
            };
            Reader::new(scene, &epcs, cfg, 52)
        };
        let mut reference = build(EngineKind::Reference);
        let mut batched = build(EngineKind::Batched);
        let spec = RoSpec::read_all(1, vec![1]);
        let ra = reference.run_for(&spec, 1.0).unwrap();
        let rb = batched.run_for(&spec, 1.0).unwrap();
        assert_eq!(ra, rb, "report streams must be bit-identical");
        assert_eq!(reference.now(), batched.now());
        // Non-vacuity: the batched run actually served cache hits (static
        // tags re-read on a revisited channel), while the reference engine
        // never touches the cache.
        assert!(batched.channel_cache_stats().hits > 0);
        assert_eq!(
            reference.channel_cache_stats(),
            ChannelCacheStats::default()
        );
    }

    #[test]
    fn execute_into_appends_across_calls() {
        let mut reader = basic_reader(6, 60);
        let spec = RoSpec::read_all(1, vec![1]);
        let mut buf = Vec::new();
        reader.execute_into(&spec, &mut buf).unwrap();
        let first = buf.len();
        assert!(first > 0);
        reader.execute_into(&spec, &mut buf).unwrap();
        assert!(buf.len() > first, "second pass must append, not clear");
    }

    #[test]
    fn events_log_rounds() {
        let mut reader = basic_reader(8, 11);
        reader.execute(&RoSpec::read_all(7, vec![1])).unwrap();
        let events = reader.events.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].rospec_id, 7);
        assert_eq!(events[0].reads, 8);
        assert!(events[0].duration() > 0.019);
    }

    #[test]
    fn rounds_are_promoted_into_telemetry() {
        use tagwatch_telemetry::{MemorySink, Telemetry};
        let mut reader = basic_reader(8, 40);
        let tel = Telemetry::new();
        let sink = MemorySink::new(1 << 12);
        tel.install(Box::new(sink.clone()));
        reader.set_telemetry(tel.clone());
        reader.execute(&RoSpec::read_all(1, vec![1])).unwrap();

        let events = reader.events.take();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("round.count"), Some(events.len() as u64));
        let stats_sum = |f: fn(&RoundEvent) -> usize| events.iter().map(f).sum::<usize>() as u64;
        assert_eq!(
            snap.counter("round.successes"),
            Some(stats_sum(|e| e.stats.successes))
        );
        assert_eq!(
            snap.counter("round.empties"),
            Some(stats_sum(|e| e.stats.empties))
        );
        assert_eq!(snap.counter("round.reads"), Some(stats_sum(|e| e.reads)));
        let h = snap.histogram("round.duration").unwrap();
        assert_eq!(h.count(), events.len() as u64);
        assert!(h.min().unwrap() > 0.0);

        // One simulated-clock span per round, matching the event log's
        // timings, with the final Q observed alongside.
        let spans = sink.spans_named("round");
        assert_eq!(spans.len(), events.len());
        for (span, ev) in spans.iter().zip(&events) {
            assert!((span.start - ev.t_start).abs() < 1e-12);
            assert!((span.duration - ev.duration()).abs() < 1e-9);
        }
        let q = snap.histogram("round.q_final").unwrap();
        assert_eq!(q.count(), events.len() as u64);
        assert!(q.max().unwrap() <= 15.0);
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let mut reader = basic_reader(2, 12);
        let bad = RoSpec {
            id: 1,
            ai_specs: vec![],
        };
        assert!(reader.execute(&bad).is_err());
    }

    #[test]
    fn multi_antenna_round_robin() {
        let scene = presets::tracking_study(2, 13);
        let n = scene.tags.len();
        let epcs = random_epcs(n, 14);
        let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), 15);
        let spec = RoSpec::read_all(1, vec![1, 2, 3, 4]);
        let reports = reader.execute(&spec).unwrap();
        // Every antenna produced reads.
        let mut ports: Vec<u8> = reports.iter().map(|r| r.rf.antenna).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports, vec![1, 2, 3, 4]);
    }

    #[test]
    fn decode_faults_do_not_change_coverage() {
        let scene = presets::random_room(12, 16);
        let epcs = random_epcs(12, 17);
        let cfg = ReaderConfig {
            decode_fail_prob: 0.2,
            ..ReaderConfig::default()
        };
        let mut reader = Reader::new(scene, &epcs, cfg, 18);
        let reports = reader.execute(&RoSpec::read_all(1, vec![1])).unwrap();
        let mut idx: Vec<usize> = reports.iter().map(|r| r.tag_idx).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 12);
    }

    #[test]
    fn mobile_tag_phase_varies_more_than_static() {
        // A tag on the turntable sweeps phase; a static one jitters within
        // noise. This is the physical signal Phase I detects.
        let scene = presets::turntable(2, 1, 19);
        let epcs = random_epcs(2, 20);
        let cfg = ReaderConfig {
            channel_plan: tagwatch_rf::ChannelPlan::single(922.5e6),
            ..ReaderConfig::default()
        };
        let mut reader = Reader::new(scene, &epcs, cfg, 21);
        let reports = reader.run_for(&RoSpec::read_all(1, vec![1]), 2.0).unwrap();
        let spread = |idx: usize| {
            let phases: Vec<f64> = reports
                .iter()
                .filter(|r| r.tag_idx == idx)
                .map(|r| r.rf.phase)
                .collect();
            assert!(phases.len() > 10);
            // Circular spread via resultant length.
            let (mut c, mut s) = (0.0, 0.0);
            for &p in &phases {
                c += p.cos();
                s += p.sin();
            }
            1.0 - (c * c + s * s).sqrt() / phases.len() as f64
        };
        let mobile = spread(0);
        let fixed = spread(1);
        assert!(
            mobile > 5.0 * fixed.max(1e-4),
            "mobile spread {mobile} vs static {fixed}"
        );
    }

    #[test]
    fn dwell_mode_reads_continuously() {
        // Tracking mode: a 100 ms dwell on a 1-tag scene yields many reads
        // of the same tag at far lower per-read cost than restarting
        // rounds.
        let scene = presets::random_room(1, 30);
        let epcs = random_epcs(1, 31);
        let cfg = ReaderConfig {
            link: tagwatch_gen2::LinkTiming::r420_tracking(),
            ..ReaderConfig::default()
        };
        let mut reader = Reader::new(scene, &epcs, cfg, 32);
        let spec = RoSpec::read_all_continuous(1, vec![1], 0.1);
        // Settle link adaptation first.
        reader.execute(&spec).unwrap();
        let t0 = reader.now();
        let reports = reader.execute(&spec).unwrap();
        let elapsed = reader.now() - t0;
        // One dwell ≈ overhead + 100 ms; reads ≈ dwell / per-read cost
        // (~3 ms) ≫ the single read a plain round would deliver.
        assert!(reports.len() > 10, "{} reads in dwell", reports.len());
        assert!(elapsed < 0.2, "dwell overran: {elapsed}");
        // All reads are tag 0, timestamps strictly increasing.
        assert!(reports.iter().all(|r| r.tag_idx == 0));
        let mut prev = 0.0;
        for r in &reports {
            assert!(r.rf.t > prev);
            prev = r.rf.t;
        }
    }

    #[test]
    fn dwell_rate_scales_inversely_with_population() {
        // The Fig. 1 regime: in tracking mode per-tag rate ~ 1/n.
        let rate = |n: usize| {
            let scene = presets::random_room(n, 33);
            let epcs = random_epcs(n, 34);
            let cfg = ReaderConfig {
                link: tagwatch_gen2::LinkTiming::r420_tracking(),
                ..ReaderConfig::default()
            };
            let mut reader = Reader::new(scene, &epcs, cfg, 35);
            let spec = RoSpec::read_all_continuous(1, vec![1], 0.05);
            reader.run_for(&spec, 1.0).unwrap();
            let t0 = reader.now();
            let reports = reader.run_for(&spec, 2.0).unwrap();
            let reads0 = reports.iter().filter(|r| r.tag_idx == 0).count();
            reads0 as f64 / (reader.now() - t0)
        };
        let r1 = rate(1);
        let r5 = rate(5);
        assert!(
            r1 > 2.5 * r5,
            "tracking-mode IRR should drop steeply: {r1:.1} vs {r5:.1}"
        );
    }

    #[test]
    fn field_range_partitions_coverage_by_antenna() {
        // Two antennas 10 m apart; one tag near each. With a 3 m field
        // range, each antenna reads only its neighbour.
        let mut scene = tagwatch_scene::Scene::default();
        scene.antennas.push(tagwatch_scene::Antenna {
            port: 1,
            position: tagwatch_rf::Vec3::new(0.0, 0.0, 2.0),
        });
        scene.antennas.push(tagwatch_scene::Antenna {
            port: 2,
            position: tagwatch_rf::Vec3::new(10.0, 0.0, 2.0),
        });
        scene.add_tag(tagwatch_scene::SceneTag::fixed(
            0,
            tagwatch_rf::Vec3::new(1.0, 0.0, 1.0),
        ));
        scene.add_tag(tagwatch_scene::SceneTag::fixed(
            1,
            tagwatch_rf::Vec3::new(9.0, 0.0, 1.0),
        ));
        let epcs = random_epcs(2, 71);
        let cfg = ReaderConfig {
            field_range_m: Some(3.0),
            ..ReaderConfig::default()
        };
        let mut reader = Reader::new(scene, &epcs, cfg, 72);
        let reports = reader.execute(&RoSpec::read_all(1, vec![1, 2])).unwrap();
        for r in &reports {
            match r.rf.antenna {
                1 => assert_eq!(r.tag_idx, 0, "antenna 1 read a far tag"),
                2 => assert_eq!(r.tag_idx, 1, "antenna 2 read a far tag"),
                other => panic!("unexpected antenna {other}"),
            }
        }
        // Both tags were read by their own antenna.
        assert!(reports.iter().any(|r| r.tag_idx == 0));
        assert!(reports.iter().any(|r| r.tag_idx == 1));
    }

    #[test]
    #[should_panic(expected = "one EPC per scene tag")]
    fn mismatched_epc_count_panics() {
        let scene = presets::random_room(3, 22);
        Reader::new(scene, &random_epcs(2, 23), ReaderConfig::default(), 24);
    }

    mod faults {
        use super::*;
        use tagwatch_fault::{FaultEvent, FaultKind, FaultPlan, PlanInjector, Window};

        fn injector(events: Vec<(FaultKind, f64, f64)>) -> Box<PlanInjector> {
            let mut plan = FaultPlan::empty("reader-test");
            plan.events = events
                .into_iter()
                .map(|(kind, start, end)| FaultEvent {
                    kind,
                    window: Window::new(start, end),
                })
                .collect();
            Box::new(PlanInjector::new(plan))
        }

        #[test]
        fn empty_plan_is_transparent() {
            // An installed injector with nothing to inject must not
            // perturb the simulation: same seed, bit-identical reports.
            let spec = RoSpec::read_all(1, vec![1]);
            let mut clean = basic_reader(15, 90);
            let baseline = clean.run_for(&spec, 0.5).unwrap();
            let mut faulted = basic_reader(15, 90);
            faulted.set_fault_injector(injector(vec![]));
            let observed = faulted.run_for(&spec, 0.5).unwrap();
            assert_eq!(baseline, observed);
            assert_eq!(clean.now(), faulted.now());
        }

        #[test]
        fn full_antenna_outage_blanks_reads_but_air_time_passes() {
            let mut reader = basic_reader(10, 91);
            reader.set_fault_injector(injector(vec![(
                FaultKind::AntennaOutage { antennas: vec![] },
                0.0,
                1e9,
            )]));
            let reports = reader.execute(&RoSpec::read_all(1, vec![1])).unwrap();
            assert!(reports.is_empty());
            assert!(reader.now() > 0.0, "the carrier still burned air time");
        }

        #[test]
        fn partial_outage_only_darkens_listed_ports() {
            let scene = presets::tracking_study(2, 92);
            let n = scene.tags.len();
            let epcs = random_epcs(n, 93);
            let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), 94);
            reader.set_fault_injector(injector(vec![(
                FaultKind::AntennaOutage { antennas: vec![2] },
                0.0,
                1e9,
            )]));
            let reports = reader.execute(&RoSpec::read_all(1, vec![1, 2, 3])).unwrap();
            assert!(!reports.is_empty());
            assert!(reports.iter().all(|r| r.rf.antenna != 2));
            assert!(reports.iter().any(|r| r.rf.antenna == 1));
        }

        #[test]
        fn restart_stalls_the_clock_and_recovers() {
            use tagwatch_telemetry::{MemorySink, Telemetry};
            let mut reader = basic_reader(8, 95);
            let tel = Telemetry::new();
            tel.install(Box::new(MemorySink::new(1 << 12)));
            reader.set_telemetry(tel.clone());
            reader.set_fault_injector(injector(vec![(
                FaultKind::ReaderRestart {
                    preserve_flags: false,
                },
                0.0,
                0.5,
            )]));
            let reports = reader.execute(&RoSpec::read_all(1, vec![1])).unwrap();
            assert!(reader.now() >= 0.5, "the stall consumed the window");
            // Back up after the restart: the same pass still reads all.
            let mut idx: Vec<usize> = reports.iter().map(|r| r.tag_idx).collect();
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), 8);
            let snap = tel.snapshot();
            assert_eq!(snap.counter("fault.reader_restarts"), Some(1));
        }

        #[test]
        fn muted_tag_is_unread_until_the_window_closes() {
            let mut reader = basic_reader(6, 96);
            reader.set_fault_injector(injector(vec![(
                FaultKind::TagMute { tags: vec![0] },
                0.0,
                10.0,
            )]));
            let spec = RoSpec::read_all(1, vec![1]);
            let during = reader.execute(&spec).unwrap();
            assert!(!during.is_empty());
            assert!(during.iter().all(|r| r.tag_idx != 0));
            reader.advance(10.0);
            let after = reader.execute(&spec).unwrap();
            assert!(after.iter().any(|r| r.tag_idx == 0), "mute must lift");
        }

        #[test]
        fn total_reply_corruption_reads_nothing_then_everything() {
            let mut reader = basic_reader(5, 97);
            reader.set_fault_injector(injector(vec![(
                FaultKind::ReplyCorruption { prob: 1.0 },
                0.0,
                5.0,
            )]));
            let spec = RoSpec::read_all(1, vec![1]);
            let during = reader.execute(&spec).unwrap();
            assert!(during.is_empty(), "every EPC was corrupted");
            reader.advance(5.0);
            let after = reader.execute(&spec).unwrap();
            let mut idx: Vec<usize> = after.iter().map(|r| r.tag_idx).collect();
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), 5, "corruption must not lose tags for good");
        }

        #[test]
        fn detuned_tag_goes_dark_and_reenergises() {
            let mut reader = basic_reader(4, 98);
            reader.set_fault_injector(injector(vec![(
                FaultKind::TagDetune { tags: vec![1] },
                0.0,
                10.0,
            )]));
            let spec = RoSpec::read_all(1, vec![1]);
            let during = reader.execute(&spec).unwrap();
            assert!(during.iter().all(|r| r.tag_idx != 1));
            reader.advance(10.0);
            let after = reader.execute(&spec).unwrap();
            assert!(after.iter().any(|r| r.tag_idx == 1), "detune must lift");
        }
    }
}
