//! LLRP-shaped reader operation specs.
//!
//! The paper drives its ImpinJ reader through the LLRP Tool Kit: a
//! `ROSpec` contains `AISpec`s (one per antenna configuration), each of
//! which carries `C1G2Filter`s that become Gen2 `Select` commands (§6,
//! Fig. 11). Tagwatch encodes one bitmask per AISpec ("We adopt the second
//! method by default"), so a scheduling plan with k bitmasks compiles to a
//! ROSpec with k AISpecs, executed sequentially by the reader.
//!
//! This module reproduces that structure as plain typed data — the
//! simulated reader consumes it the way a real reader consumes the XML.

use serde::{Deserialize, Serialize};
use std::fmt;
use tagwatch_gen2::{BitMask, InvFlag, Query, QuerySel, Select, Session};

/// A C1G2 filter: one Select bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct C1G2Filter {
    /// The EPC-bank bitmask this filter asserts.
    pub mask: BitMask,
    /// Request truncated replies (Gen2 Truncate). Honoured only for
    /// prefix masks (`pointer == 0`) on single-filter AISpecs — the only
    /// configuration where the reader can reconstruct full EPCs.
    pub truncate: bool,
}

/// An antenna inventory spec: which antennas to fire and which tag subset
/// participates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AiSpec {
    /// Antenna ports to inventory, in order (1-based, like LLRP).
    pub antennas: Vec<u8>,
    /// Filters OR-ed together to define the participating subset. Empty =
    /// read everything.
    pub filters: Vec<C1G2Filter>,
    /// Dwell-based continuous reading (LLRP AISpec duration stop
    /// trigger): when `Some(T)`, the reader keeps the antenna for `T`
    /// seconds, running alternating-target (dual-target A↔B) inventory
    /// rounds so tags are read repeatedly without per-round start-up
    /// cost. `None` = a single round per antenna (inventory mode).
    pub dwell: Option<f64>,
}

impl AiSpec {
    /// Whether this AISpec reads the whole population.
    pub fn is_read_all(&self) -> bool {
        self.filters.is_empty()
    }

    /// The Select commands the reader issues at the start of this AISpec's
    /// inventory round, plus the Query participation filter.
    ///
    /// * No filters → reset the session's inventoried flag on everyone;
    ///   query with `Sel = All`.
    /// * k ≥ 1 filters → assert SL on the union of the masks (first filter
    ///   assert-else-deassert, the rest assert-else-nothing), re-arm the
    ///   inventoried flag on matching tags, and query with `Sel = SL`.
    pub fn compile(&self, session: Session) -> (Vec<Select>, QuerySel) {
        let mut selects = Vec::with_capacity(self.filters.len().max(1) * 2);
        let sel = self.compile_into(session, &mut selects);
        (selects, sel)
    }

    /// [`AiSpec::compile`] into a caller-owned buffer: clears `out` and
    /// fills it with the Select sequence, returning the Query
    /// participation filter. The reader's hot loop reuses one buffer per
    /// run so recompiling an AISpec allocates nothing in steady state.
    pub fn compile_into(&self, session: Session, out: &mut Vec<Select>) -> QuerySel {
        out.clear();
        if self.filters.is_empty() {
            out.push(Select::reset_inventoried(session));
            return QuerySel::All;
        }
        let truncation_ok = self.filters.len() == 1;
        for (i, f) in self.filters.iter().enumerate() {
            // Re-arm the inventoried flag so the covered tags are readable
            // again this round. Issued *before* the SL select: a truncating
            // Select is only honoured when it is the last one a tag hears.
            out.push(Select {
                target: tagwatch_gen2::SelTarget::Inventoried(session),
                action: tagwatch_gen2::SelAction::AssertElseNothing,
                bank: tagwatch_gen2::MemBank::Epc,
                mask: f.mask,
                truncate: false,
            });
            let mut sel = if i == 0 {
                Select::assert_sl(f.mask)
            } else {
                Select::or_sl(f.mask)
            };
            if f.truncate && truncation_ok && f.mask.pointer == 0 && !f.mask.is_match_all() {
                sel = sel.with_truncate();
            }
            out.push(sel);
        }
        QuerySel::Sl
    }

    /// The Query participation filter this AISpec's rounds use, without
    /// compiling the Select sequence (it is fully determined by whether
    /// any filter exists).
    pub fn query_sel(&self) -> QuerySel {
        if self.filters.is_empty() {
            QuerySel::All
        } else {
            QuerySel::Sl
        }
    }

    /// The Query this AISpec's round starts with.
    pub fn query(&self, session: Session, initial_q: u8) -> Query {
        Query {
            q: initial_q,
            sel: self.query_sel(),
            session,
            target: InvFlag::A,
        }
    }
}

/// A reader operation spec: an ordered list of AISpecs, executed
/// sequentially, then repeated for as long as the spec is enabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoSpec {
    /// Spec identifier (LLRP ROSpecID).
    pub id: u32,
    /// AISpecs executed in order.
    pub ai_specs: Vec<AiSpec>,
}

/// Validation failures for a ROSpec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlrpError {
    /// A ROSpec must contain at least one AISpec.
    NoAiSpecs,
    /// An AISpec must name at least one antenna.
    NoAntennas { ai_spec: usize },
    /// An antenna port appears twice in one AISpec.
    DuplicateAntenna { ai_spec: usize, port: u8 },
    /// A dwell duration was zero, negative, or NaN.
    BadDwell { ai_spec: usize },
}

impl fmt::Display for LlrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlrpError::NoAiSpecs => write!(f, "ROSpec contains no AISpecs"),
            LlrpError::NoAntennas { ai_spec } => {
                write!(f, "AISpec #{ai_spec} names no antennas")
            }
            LlrpError::DuplicateAntenna { ai_spec, port } => {
                write!(f, "AISpec #{ai_spec} lists antenna {port} twice")
            }
            LlrpError::BadDwell { ai_spec } => {
                write!(f, "AISpec #{ai_spec} has a non-positive dwell")
            }
        }
    }
}

impl std::error::Error for LlrpError {}

impl RoSpec {
    /// A read-everything spec over the given antennas — the paper's
    /// baseline ("reading all") and Tagwatch's Phase I.
    pub fn read_all(id: u32, antennas: Vec<u8>) -> Self {
        RoSpec {
            id,
            ai_specs: vec![AiSpec {
                antennas,
                filters: Vec::new(),
                dwell: None,
            }],
        }
    }

    /// A read-everything spec in tracking mode: each antenna is held for
    /// `dwell` seconds of continuous dual-target reading.
    pub fn read_all_continuous(id: u32, antennas: Vec<u8>, dwell: f64) -> Self {
        RoSpec {
            id,
            ai_specs: vec![AiSpec {
                antennas,
                filters: Vec::new(),
                dwell: Some(dwell),
            }],
        }
    }

    /// A selective spec: one AISpec per bitmask (the paper's default
    /// encoding), each on the same antennas — Tagwatch's Phase II.
    pub fn selective(id: u32, antennas: Vec<u8>, masks: &[BitMask]) -> Self {
        Self::selective_with_truncate(id, antennas, masks, false)
    }

    /// [`RoSpec::selective`] with truncated replies requested where legal
    /// (prefix masks).
    pub fn selective_with_truncate(
        id: u32,
        antennas: Vec<u8>,
        masks: &[BitMask],
        truncate: bool,
    ) -> Self {
        RoSpec {
            id,
            ai_specs: masks
                .iter()
                .map(|&mask| AiSpec {
                    antennas: antennas.clone(),
                    filters: vec![C1G2Filter { mask, truncate }],
                    dwell: None,
                })
                .collect(),
        }
    }

    /// Structural validation, mirroring what a real reader rejects at
    /// `ADD_ROSPEC` time.
    pub fn validate(&self) -> Result<(), LlrpError> {
        if self.ai_specs.is_empty() {
            return Err(LlrpError::NoAiSpecs);
        }
        for (i, spec) in self.ai_specs.iter().enumerate() {
            if spec.antennas.is_empty() {
                return Err(LlrpError::NoAntennas { ai_spec: i });
            }
            if let Some(d) = spec.dwell {
                // NaN or non-positive dwells are rejected.
                if d.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err(LlrpError::BadDwell { ai_spec: i });
                }
            }
            // Duplicate scan over the prefix slice: quadratic in the
            // (tiny) antenna list but allocation-free, so re-validating
            // on every execution keeps the hot path off the heap.
            for (j, &p) in spec.antennas.iter().enumerate() {
                if spec.antennas[..j].contains(&p) {
                    return Err(LlrpError::DuplicateAntenna {
                        ai_spec: i,
                        port: p,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total number of Select commands this spec issues per execution —
    /// used for cost accounting (each Select costs `t_select` air time).
    pub fn select_count(&self, session: Session) -> usize {
        self.ai_specs
            .iter()
            .map(|a| a.compile(session).0.len() * a.antennas.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_gen2::Epc;

    #[test]
    fn read_all_compiles_to_open_query() {
        let spec = RoSpec::read_all(1, vec![1, 2]);
        spec.validate().unwrap();
        assert_eq!(spec.ai_specs.len(), 1);
        let (selects, sel) = spec.ai_specs[0].compile(Session::S1);
        assert_eq!(selects.len(), 1);
        assert_eq!(sel, QuerySel::All);
    }

    #[test]
    fn selective_one_aispec_per_mask() {
        let masks = [
            BitMask::new(0b01, 0, 2),
            BitMask::new(0b1, 5, 1),
            BitMask::exact(Epc::from_bits(7)),
        ];
        let spec = RoSpec::selective(2, vec![1], &masks);
        spec.validate().unwrap();
        assert_eq!(spec.ai_specs.len(), 3);
        for (i, ai) in spec.ai_specs.iter().enumerate() {
            assert_eq!(ai.filters.len(), 1);
            assert_eq!(ai.filters[0].mask, masks[i]);
            let (selects, sel) = ai.compile(Session::S1);
            assert_eq!(sel, QuerySel::Sl);
            assert_eq!(selects.len(), 2); // SL assert + inventoried re-arm
        }
    }

    #[test]
    fn multi_filter_aispec_unions() {
        let ai = AiSpec {
            antennas: vec![1],
            filters: vec![
                C1G2Filter {
                    mask: BitMask::new(0b0, 0, 1),
                    truncate: false,
                },
                C1G2Filter {
                    mask: BitMask::new(0b1, 0, 1),
                    truncate: false,
                },
            ],
            dwell: None,
        };
        let (selects, sel) = ai.compile(Session::S0);
        assert_eq!(sel, QuerySel::Sl);
        assert_eq!(selects.len(), 4);
        // First select must be assert-else-deassert, later ones must not
        // clobber previous matches.
        // Per filter: [inventoried re-arm, SL select].
        assert_eq!(
            selects[1].action,
            tagwatch_gen2::SelAction::AssertElseDeassert
        );
        assert_eq!(
            selects[3].action,
            tagwatch_gen2::SelAction::AssertElseNothing
        );
    }

    #[test]
    fn validation_catches_structural_errors() {
        let empty = RoSpec {
            id: 1,
            ai_specs: vec![],
        };
        assert_eq!(empty.validate(), Err(LlrpError::NoAiSpecs));

        let no_ant = RoSpec {
            id: 1,
            ai_specs: vec![AiSpec {
                antennas: vec![],
                filters: vec![],
                dwell: None,
            }],
        };
        assert_eq!(no_ant.validate(), Err(LlrpError::NoAntennas { ai_spec: 0 }));

        let dup = RoSpec {
            id: 1,
            ai_specs: vec![AiSpec {
                antennas: vec![1, 1],
                filters: vec![],
                dwell: None,
            }],
        };
        let bad_dwell = RoSpec {
            id: 1,
            ai_specs: vec![AiSpec {
                antennas: vec![1],
                filters: vec![],
                dwell: Some(0.0),
            }],
        };
        assert_eq!(
            bad_dwell.validate(),
            Err(LlrpError::BadDwell { ai_spec: 0 })
        );
        assert_eq!(
            dup.validate(),
            Err(LlrpError::DuplicateAntenna {
                ai_spec: 0,
                port: 1
            })
        );
    }

    #[test]
    fn truncation_only_on_legal_filters() {
        // Prefix mask, single filter: truncation honoured.
        let spec = RoSpec::selective_with_truncate(1, vec![1], &[BitMask::new(0b1011, 0, 4)], true);
        let (selects, _) = spec.ai_specs[0].compile(Session::S1);
        assert!(selects.last().unwrap().truncate);
        // Non-prefix mask: silently not truncated.
        let spec = RoSpec::selective_with_truncate(1, vec![1], &[BitMask::new(0b1011, 7, 4)], true);
        let (selects, _) = spec.ai_specs[0].compile(Session::S1);
        assert!(selects.iter().all(|s| !s.truncate));
        // Multi-filter AISpec: never truncated.
        let ai = AiSpec {
            antennas: vec![1],
            filters: vec![
                C1G2Filter {
                    mask: BitMask::new(0b0, 0, 1),
                    truncate: true,
                },
                C1G2Filter {
                    mask: BitMask::new(0b1, 0, 1),
                    truncate: true,
                },
            ],
            dwell: None,
        };
        let (selects, _) = ai.compile(Session::S1);
        assert!(selects.iter().all(|s| !s.truncate));
    }

    #[test]
    fn select_count_accounts_per_antenna() {
        let masks = [BitMask::new(0b01, 0, 2)];
        let spec = RoSpec::selective(1, vec![1, 2], &masks);
        // 2 selects per mask × 2 antennas.
        assert_eq!(spec.select_count(Session::S1), 4);
        let all = RoSpec::read_all(1, vec![1, 2, 3, 4]);
        assert_eq!(all.select_count(Session::S1), 4);
    }
}
