//! Reader event stream — round-level observability.
//!
//! Real readers expose round boundaries through LLRP reports; Tagwatch's
//! schedule-cost experiment (Fig. 17) and several tests need the same
//! visibility, so the simulated reader records one event per round.

use serde::{Deserialize, Serialize};
use tagwatch_gen2::SlotStats;

/// One inventory round executed by the reader.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundEvent {
    /// ROSpec that drove this round.
    pub rospec_id: u32,
    /// Index of the AISpec within the ROSpec.
    pub ai_spec: usize,
    /// Antenna the round ran on.
    pub antenna: u8,
    /// Absolute start time, seconds.
    pub t_start: f64,
    /// Absolute end time, seconds.
    pub t_end: f64,
    /// Number of tag reads in the round.
    pub reads: usize,
    /// Slot accounting.
    pub stats: SlotStats,
}

impl RoundEvent {
    /// Round duration in seconds.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Bounded event log. Keeps the most recent `capacity` rounds; callers
/// drain with [`EventLog::take`].
#[derive(Debug, Clone)]
pub struct EventLog {
    events: std::collections::VecDeque<RoundEvent>,
    capacity: usize,
    dropped: usize,
}

impl EventLog {
    /// A log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            events: std::collections::VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest when full. A zero-capacity
    /// log drops every event (it must never grow — `pop_front` on the
    /// empty deque is a no-op, so the pre-fix code stored the event
    /// anyway and the "bounded" log grew without bound).
    pub fn push(&mut self, ev: RoundEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Drains all buffered events.
    pub fn take(&mut self) -> Vec<RoundEvent> {
        self.events.drain(..).collect()
    }

    /// Number of events evicted since creation.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn ev(t: f64) -> RoundEvent {
        RoundEvent {
            rospec_id: 1,
            ai_spec: 0,
            antenna: 1,
            t_start: t,
            t_end: t + 0.05,
            reads: 3,
            stats: SlotStats::default(),
        }
    }

    #[test]
    fn push_and_take() {
        let mut log = EventLog::new(10);
        log.push(ev(0.0));
        log.push(ev(1.0));
        assert_eq!(log.len(), 2);
        let events = log.take();
        assert_eq!(events.len(), 2);
        assert!(log.is_empty());
        assert!((events[0].duration() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = EventLog::new(3);
        for k in 0..5 {
            log.push(ev(k as f64));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let events = log.take();
        assert_eq!(events[0].t_start, 2.0);
    }

    #[test]
    fn zero_capacity_drops_every_event() {
        // Regression: `pop_front` on an empty deque is a no-op, so the
        // old code pushed anyway and a capacity-0 log grew unboundedly.
        let mut log = EventLog::new(0);
        for k in 0..100 {
            log.push(ev(k as f64));
        }
        assert_eq!(log.len(), 0);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 100);
        assert!(log.take().is_empty());
    }
}
