//! # tagwatch-reader — simulated COTS RFID reader
//!
//! Emulates an ImpinJ-R420-class reader: executes LLRP-style `ROSpec`s
//! against the gen2 protocol simulator and the RF channel model, and
//! reports tag reads with EPC, phase, RSS, channel, antenna, and
//! timestamps — the exact interface the paper's Tagwatch middleware
//! consumes (§6).
//!
//! The reader is deliberately *not* clever: it runs Q-adaptive inventory
//! rounds exactly as configured, charging calibrated air time per command.
//! All the intelligence (motion assessment, bitmask scheduling) lives in
//! the `tagwatch` core crate, which only sees [`TagReport`]s — the same
//! boundary a real deployment has.

#![forbid(unsafe_code)]
pub mod config;
pub mod conn;
pub mod events;
pub mod llrp;
pub mod reader;
pub mod xml;

pub use config::{EngineKind, ReaderConfig};
pub use conn::{ReaderConnection, RoSpecState, VerbError};
pub use events::{EventLog, RoundEvent};
pub use llrp::{AiSpec, C1G2Filter, LlrpError, RoSpec};
pub use reader::{Reader, TagReport};
pub use xml::rospec_to_xml;
