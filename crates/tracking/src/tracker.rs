//! Windowed trajectory recovery and accuracy scoring (Fig. 1's metric).
//!
//! The tracker chops a tag's report stream into fixed-length time windows,
//! localizes each window with the hologram (using the previous fix as the
//! prior), and scores the recovered trajectory against ground truth. The
//! connection to reading rate is direct: fewer reads per window → fewer
//! phase constraints → poorer fixes — which is exactly why Fig. 1's
//! accuracy collapses as stationary tags steal air time.

use crate::hologram::Localizer;
use tagwatch_reader::TagReport;
use tagwatch_rf::Vec3;

/// One recovered trajectory fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fix {
    /// Window centre time.
    pub t: f64,
    /// Estimated position.
    pub position: Vec3,
    /// Readings used.
    pub reads: usize,
}

/// Windowed tracker around a [`Localizer`].
#[derive(Debug, Clone)]
pub struct Tracker {
    localizer: Localizer,
    /// Window length in seconds.
    pub window: f64,
    /// Minimum readings per window to attempt a fix.
    pub min_reads: usize,
    /// Minimum *distinct antennas* per window: a single antenna's phase
    /// constrains the tag to a ring, so single-antenna fixes slide
    /// tangentially and corrupt the prior. Windows below this coast.
    pub min_antennas: usize,
    /// Hard cap on the velocity estimate's magnitude, m/s.
    pub max_speed: f64,
    /// Whether to jointly estimate velocity from the window's phases and
    /// predict the prior along it (our extension). `false` reproduces the
    /// quasi-static behaviour of the original Differential Augmented
    /// Hologram the paper tracks with — noticeably more sensitive to low
    /// reading rates, which is the Fig. 1 effect.
    pub velocity_compensation: bool,
    /// Minimum hologram coherence for a fix to be accepted; windows below
    /// it (multipath-corrupted or too sparse) coast instead of corrupting
    /// the prior. 0 disables the gate.
    pub min_score: f64,
    prior: Vec3,
    velocity: Vec3,
    last_fix_t: Option<f64>,
}

impl Tracker {
    /// A tracker starting from a known position (the paper fixes the
    /// train's initial position).
    pub fn new(localizer: Localizer, start: Vec3, window: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        Tracker {
            localizer,
            window,
            min_reads: 1,
            min_antennas: 2,
            max_speed: 2.0,
            velocity_compensation: true,
            min_score: 0.0,
            prior: start,
            velocity: Vec3::ZERO,
            last_fix_t: None,
        }
    }

    /// Current velocity estimate, m/s.
    pub fn velocity(&self) -> Vec3 {
        self.velocity
    }

    /// Recovers a trajectory from a report stream (must belong to one tag,
    /// sorted by time). Windows with too few readings or antennas are
    /// skipped — the prior coasts forward along the velocity estimate, as
    /// a real tracker would.
    pub fn track(&mut self, reports: &[TagReport]) -> Vec<Fix> {
        if reports.is_empty() {
            return Vec::new();
        }
        let t0 = reports[0].rf.t;
        let t_end = reports[reports.len() - 1].rf.t;
        let mut fixes = Vec::new();
        let mut w_start = t0;
        while w_start <= t_end {
            let w_end = w_start + self.window;
            let t_ref = (w_start + w_end) / 2.0;
            let window: Vec<TagReport> = reports
                .iter()
                .filter(|r| r.rf.t >= w_start && r.rf.t < w_end)
                .copied()
                .collect();
            let mut antennas: Vec<u8> = window.iter().map(|r| r.rf.antenna).collect();
            antennas.sort_unstable();
            antennas.dedup();
            if window.len() >= self.min_reads && antennas.len() >= self.min_antennas {
                // Predict the prior to the window centre along the current
                // velocity estimate, clamped so a bad estimate cannot
                // teleport the search region away from the track.
                let predicted = match self.last_fix_t {
                    Some(tp) if self.velocity_compensation => {
                        let mut leap = self.velocity * (t_ref - tp);
                        let cap = self.localizer.cfg.search_half * 0.8;
                        if leap.norm() > cap {
                            leap = leap * (cap / leap.norm());
                        }
                        self.prior + leap
                    }
                    _ => self.prior,
                };
                let located = if self.velocity_compensation {
                    self.localizer
                        .locate_and_velocity(&window, predicted, self.velocity, t_ref)
                } else {
                    self.localizer
                        .locate(&window, predicted)
                        .map(|p| (p, Vec3::ZERO, self.localizer.score(&window, p)))
                };
                if let Some((pos, v, _score)) =
                    located.filter(|&(_, _, score)| score >= self.min_score)
                {
                    let mut v = v;
                    if v.norm() > self.max_speed {
                        v = v * (self.max_speed / v.norm());
                    }
                    // The searched velocity comes straight from the phase
                    // data; trust it (heavy smoothing lags badly on curved
                    // tracks and starves the prior prediction).
                    self.velocity = self.velocity * 0.25 + v * 0.75;
                    self.prior = pos;
                    self.last_fix_t = Some(t_ref);
                    fixes.push(Fix {
                        t: t_ref,
                        position: pos,
                        reads: window.len(),
                    });
                }
            }
            // Half-overlapping windows halve the prediction distance the
            // prior must bridge between fixes.
            w_start += self.window / 2.0;
        }
        fixes
    }
}

/// Accuracy of a recovered trajectory against a ground-truth position
/// function: mean and standard deviation of per-fix error, in metres.
pub fn accuracy<F: Fn(f64) -> Vec3>(fixes: &[Fix], truth: F) -> (f64, f64) {
    if fixes.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let errors: Vec<f64> = fixes.iter().map(|f| f.position.dist(truth(f.t))).collect();
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let var = errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errors.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hologram::HologramConfig;
    use tagwatch_gen2::Epc;
    use tagwatch_rf::{ChannelModel, ChannelPlan, LinkGeometry, RfMeasurement};

    fn corner_antennas() -> Vec<(u8, Vec3)> {
        vec![
            (1, Vec3::new(5.0, 5.0, 2.0)),
            (2, Vec3::new(-5.0, 5.0, 2.0)),
            (3, Vec3::new(-5.0, -5.0, 2.0)),
            (4, Vec3::new(5.0, -5.0, 2.0)),
        ]
    }

    fn circle(t: f64) -> Vec3 {
        let omega = 0.7 / 0.2;
        Vec3::new(0.2 * (omega * t).cos(), 0.2 * (omega * t).sin(), 0.8)
    }

    /// Synthetic report stream: the tag moves on the circle, read
    /// round-robin across antennas at `rate` Hz total.
    fn stream(rate: f64, duration: f64) -> Vec<TagReport> {
        let ants = corner_antennas();
        let model = ChannelModel::noiseless();
        let plan = ChannelPlan::single(922.5e6);
        let chan = plan.channel_at(0.0);
        let mut rng = rand::rngs::mock::StepRng::new(0, 0);
        let n = (rate * duration) as usize;
        (0..n)
            .map(|k| {
                let t = k as f64 / rate;
                let (port, apos) = ants[k % 4];
                let link = LinkGeometry {
                    antenna: apos,
                    tag: circle(t),
                    reflectors: &[],
                };
                let rf: RfMeasurement = model.observe(&link, 42, port, chan, t, &mut rng);
                TagReport {
                    epc: Epc::from_bits(1),
                    tag_idx: 0,
                    rf,
                }
            })
            .collect()
    }

    fn calibrated_tracker() -> Tracker {
        let ants = corner_antennas();
        let mut loc = Localizer::new(&ants, HologramConfig::default());
        // Calibrate from a burst at the known start position.
        let cal = stream(400.0, 0.01);
        loc.calibrate(circle(0.0), &cal);
        Tracker::new(loc, circle(0.0), 0.05)
    }

    #[test]
    fn high_rate_tracking_is_centimetre_accurate() {
        let mut tracker = calibrated_tracker();
        let fixes = tracker.track(&stream(68.0, 3.0));
        assert!(fixes.len() > 30, "{} fixes", fixes.len());
        let (mean, std) = accuracy(&fixes, circle);
        assert!(mean < 0.05, "mean error {mean:.3} m");
        assert!(std.is_finite());
    }

    #[test]
    fn low_rate_tracking_degrades() {
        // The Fig. 1 effect: ~68 Hz vs ~20 Hz sampling of the same motion.
        let (hi, _) = {
            let mut t = calibrated_tracker();
            accuracy(&t.track(&stream(68.0, 3.0)), circle)
        };
        let (lo, _) = {
            let mut t = calibrated_tracker();
            accuracy(&t.track(&stream(12.0, 3.0)), circle)
        };
        // At 12 Hz the 50 ms windows rarely hold the two antennas a fix
        // needs — the tracker degrades to sparse or no fixes at all (NaN),
        // the extreme form of Fig. 1's accuracy collapse.
        assert!(
            lo.is_nan() || lo > hi,
            "low-rate error {lo:.3} should exceed high-rate {hi:.3}"
        );
    }

    #[test]
    fn empty_stream_yields_no_fixes() {
        let mut tracker = calibrated_tracker();
        assert!(tracker.track(&[]).is_empty());
        let (m, s) = accuracy(&[], circle);
        assert!(m.is_nan() && s.is_nan());
    }

    #[test]
    fn min_reads_skips_sparse_windows() {
        let mut tracker = calibrated_tracker();
        tracker.min_reads = 100; // absurd: no window qualifies
        let fixes = tracker.track(&stream(40.0, 1.0));
        assert!(fixes.is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let ants = corner_antennas();
        let loc = Localizer::new(&ants, HologramConfig::default());
        Tracker::new(loc, Vec3::ZERO, 0.0);
    }
}
