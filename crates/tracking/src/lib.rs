//! # tagwatch-tracking — phase-hologram tag localization
//!
//! The application substrate of the paper's §7.3 study: a grid-searched
//! phase hologram (after Tagoram's Differential Augmented Hologram)
//! recovers a mobile tag's trajectory from multi-antenna backscatter
//! phase, and its accuracy is a direct function of the tag's reading
//! rate — the quantity Tagwatch protects.

#![forbid(unsafe_code)]
pub mod hologram;
pub mod tracker;

pub use hologram::{HologramConfig, Localizer};
pub use tracker::{accuracy, Fix, Tracker};
