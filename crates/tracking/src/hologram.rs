//! Phase-hologram localization (the paper's §7.3 application study uses
//! the "Differential Augmented Hologram" of Tagoram, the paper's ref. 30).
//!
//! A backscatter phase reading constrains the tag to lie on a set of
//! rings `4πd/λ + θ_link ≡ θ_meas (mod 2π)` around the antenna. A
//! hologram scores candidate positions by coherently summing the phase
//! residuals of every reading in a short window across all antennas:
//!
//! ```text
//! P(x) = | Σ_readings e^{ j (θ_meas − θ_expected(x)) } | / N
//! ```
//!
//! The per-link hardware offsets `θ_link` are calibrated once from a
//! known starting position — the paper likewise fixes the initial
//! position of the toy train ("We fix the initial position at a known
//! point"). The search runs coarse-to-fine on a grid around a prior,
//! which both bounds cost and resolves the mod-2π ambiguity the way a
//! tracking prior does.

use std::collections::BTreeMap;
use tagwatch_reader::TagReport;
use tagwatch_rf::{wrap_2pi, Complex, Vec3};

/// Localizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HologramConfig {
    /// Half-width of the coarse search square around the prior, metres.
    pub search_half: f64,
    /// Coarse grid step, metres.
    pub coarse_step: f64,
    /// Fine grid step, metres.
    pub fine_step: f64,
    /// The (known, fixed) tag height — the paper tracks in the plane.
    pub z: f64,
}

impl Default for HologramConfig {
    fn default() -> Self {
        HologramConfig {
            // The hologram has exact ambiguity aliases roughly every
            // λ/2 ≈ 0.16 m (nearest ring intersections ≈ 0.11 m); the
            // search must stay inside the alias-free zone around the
            // tracking prior, and the prior is at most one window of
            // motion stale (≈ 3.5 cm at the paper's 0.7 m/s).
            search_half: 0.05,
            coarse_step: 0.01,
            fine_step: 0.002,
            z: 0.8,
        }
    }
}

/// Key of one RF link: (antenna port, channel index).
type LinkKey = (u8, u8);

/// The hologram localizer for one tag.
#[derive(Debug, Clone)]
pub struct Localizer {
    /// Antenna positions by port.
    antennas: BTreeMap<u8, Vec3>,
    /// Calibrated per-link phase offsets.
    offsets: BTreeMap<LinkKey, f64>,
    /// Configuration.
    pub cfg: HologramConfig,
}

impl Localizer {
    /// A localizer knowing the antenna geometry.
    pub fn new(antennas: &[(u8, Vec3)], cfg: HologramConfig) -> Self {
        Localizer {
            antennas: antennas.iter().copied().collect(),
            offsets: BTreeMap::new(),
            cfg,
        }
    }

    /// The phase the LOS model predicts at `pos` for a reading's link,
    /// *excluding* the hardware offset.
    fn geometric_phase(&self, report: &TagReport, pos: Vec3) -> f64 {
        let antenna = self.antennas[&report.rf.antenna];
        let d = antenna.dist(pos);
        wrap_2pi(4.0 * std::f64::consts::PI * d / report.rf.wavelength())
    }

    /// Calibrates per-link offsets from readings taken at a known
    /// position. Readings on already-calibrated links refine the stored
    /// offset (circular average via phasor accumulation).
    pub fn calibrate(&mut self, known_pos: Vec3, reports: &[TagReport]) {
        let mut acc: BTreeMap<LinkKey, Complex> = BTreeMap::new();
        for r in reports {
            if !self.antennas.contains_key(&r.rf.antenna) {
                continue;
            }
            let residual = r.rf.phase - self.geometric_phase(r, known_pos);
            *acc.entry((r.rf.antenna, r.rf.channel))
                .or_insert(Complex::ZERO) += Complex::cis(residual);
        }
        for (key, phasor) in acc {
            self.offsets.insert(key, wrap_2pi(phasor.arg()));
        }
    }

    /// Number of calibrated links.
    pub fn calibrated_links(&self) -> usize {
        self.offsets.len()
    }

    /// Coherent hologram score of a candidate position over a reading
    /// window: 1.0 = all residuals agree perfectly.
    pub fn score(&self, reports: &[TagReport], pos: Vec3) -> f64 {
        self.score_moving(reports, pos, Vec3::ZERO, 0.0)
    }

    /// Motion-compensated hologram score: the tag is hypothesised at
    /// `pos + velocity·(tᵢ − t_ref)` for each reading — the
    /// constant-velocity augmentation of the Differential Augmented
    /// Hologram, which keeps windows coherent even when the tag moves a
    /// sizeable fraction of a wavelength within one window.
    pub fn score_moving(
        &self,
        reports: &[TagReport],
        pos: Vec3,
        velocity: Vec3,
        t_ref: f64,
    ) -> f64 {
        let mut acc = Complex::ZERO;
        let mut n = 0usize;
        for r in reports {
            let key = (r.rf.antenna, r.rf.channel);
            let Some(&offset) = self.offsets.get(&key) else {
                continue; // uncalibrated link contributes nothing
            };
            let hyp = pos + velocity * (r.rf.t - t_ref);
            let expected = self.geometric_phase(r, hyp) + offset;
            acc += Complex::cis(r.rf.phase - expected);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            acc.abs() / n as f64
        }
    }

    /// Locates the tag from a window of readings, searching around
    /// `prior`. Returns `None` when no reading in the window is on a
    /// calibrated link.
    pub fn locate(&self, reports: &[TagReport], prior: Vec3) -> Option<Vec3> {
        self.locate_moving(reports, prior, Vec3::ZERO, 0.0)
    }

    /// Motion-compensated localization: finds the position at `t_ref`
    /// assuming the tag moves at `velocity` within the window.
    pub fn locate_moving(
        &self,
        reports: &[TagReport],
        prior: Vec3,
        velocity: Vec3,
        t_ref: f64,
    ) -> Option<Vec3> {
        if reports
            .iter()
            .all(|r| !self.offsets.contains_key(&(r.rf.antenna, r.rf.channel)))
        {
            return None;
        }
        let coarse = self.grid_search(
            reports,
            prior,
            velocity,
            t_ref,
            self.cfg.search_half,
            self.cfg.coarse_step,
        );
        let fine = self.grid_search(
            reports,
            coarse,
            velocity,
            t_ref,
            2.0 * self.cfg.coarse_step,
            self.cfg.fine_step,
        );
        Some(fine)
    }

    /// Joint position-and-velocity localization: alternates a position
    /// grid search with a horizontal velocity search (phases across the
    /// window carry Doppler-like information), starting from `v_init`.
    /// Returns the refined `(position at t_ref, velocity, score)` —
    /// callers use the score to reject low-coherence (multipath-corrupted)
    /// windows.
    pub fn locate_and_velocity(
        &self,
        reports: &[TagReport],
        prior: Vec3,
        v_init: Vec3,
        t_ref: f64,
    ) -> Option<(Vec3, Vec3, f64)> {
        if reports
            .iter()
            .all(|r| !self.offsets.contains_key(&(r.rf.antenna, r.rf.channel)))
        {
            return None;
        }
        // Velocity has two extra unknowns; with fewer than six calibrated
        // readings the joint problem is underdetermined and the velocity
        // estimate would overfit — keep the caller's estimate instead.
        let calibrated_reads = reports
            .iter()
            .filter(|r| self.offsets.contains_key(&(r.rf.antenna, r.rf.channel)))
            .count();
        let mut pos = prior;
        let mut v = v_init;
        if calibrated_reads >= 6 {
            for _ in 0..2 {
                pos = self.grid_search(
                    reports,
                    pos,
                    v,
                    t_ref,
                    self.cfg.search_half,
                    self.cfg.coarse_step,
                );
                v = self.velocity_search(reports, pos, v, t_ref, 0.5, 0.25);
                v = self.velocity_search(reports, pos, v, t_ref, 0.2, 0.05);
            }
        } else {
            pos = self.grid_search(
                reports,
                pos,
                v,
                t_ref,
                self.cfg.search_half,
                self.cfg.coarse_step,
            );
        }
        pos = self.grid_search(
            reports,
            pos,
            v,
            t_ref,
            2.0 * self.cfg.coarse_step,
            self.cfg.fine_step,
        );
        Some((pos, v, self.score_moving(reports, pos, v, t_ref)))
    }

    /// Best horizontal velocity around `center_v` (± `half` m/s in steps
    /// of `step`) for a fixed position hypothesis.
    fn velocity_search(
        &self,
        reports: &[TagReport],
        pos: Vec3,
        center_v: Vec3,
        t_ref: f64,
        half: f64,
        step: f64,
    ) -> Vec3 {
        let mut best = center_v;
        let mut best_score = f64::NEG_INFINITY;
        let steps = (2.0 * half / step).round() as i64;
        for ix in 0..=steps {
            for iy in 0..=steps {
                let v = Vec3::new(
                    center_v.x - half + ix as f64 * step,
                    center_v.y - half + iy as f64 * step,
                    0.0,
                );
                let s = self.score_moving(reports, pos, v, t_ref);
                if s > best_score {
                    best_score = s;
                    best = v;
                }
            }
        }
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn grid_search(
        &self,
        reports: &[TagReport],
        center: Vec3,
        velocity: Vec3,
        t_ref: f64,
        half: f64,
        step: f64,
    ) -> Vec3 {
        let mut best = center;
        let mut best_score = f64::NEG_INFINITY;
        let steps = (2.0 * half / step).round() as i64;
        for ix in 0..=steps {
            for iy in 0..=steps {
                let pos = Vec3::new(
                    center.x - half + ix as f64 * step,
                    center.y - half + iy as f64 * step,
                    self.cfg.z,
                );
                let s = self.score_moving(reports, pos, velocity, t_ref);
                if s > best_score {
                    best_score = s;
                    best = pos;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_gen2::Epc;
    use tagwatch_rf::{ChannelModel, ChannelPlan, LinkGeometry, RfMeasurement};

    /// Synthesises noise-free reports of a tag at `pos` on all four
    /// corner antennas.
    fn reports_at(pos: Vec3, antennas: &[(u8, Vec3)], t: f64) -> Vec<TagReport> {
        let model = ChannelModel::noiseless();
        let plan = ChannelPlan::single(922.5e6);
        let chan = plan.channel_at(0.0);
        let mut rng = rand::rngs::mock::StepRng::new(0, 0);
        antennas
            .iter()
            .map(|&(port, apos)| {
                let link = LinkGeometry {
                    antenna: apos,
                    tag: pos,
                    reflectors: &[],
                };
                let rf: RfMeasurement = model.observe(&link, 42, port, chan, t, &mut rng);
                TagReport {
                    epc: Epc::from_bits(1),
                    tag_idx: 0,
                    rf,
                }
            })
            .collect()
    }

    fn corner_antennas() -> Vec<(u8, Vec3)> {
        vec![
            (1, Vec3::new(5.0, 5.0, 2.0)),
            (2, Vec3::new(-5.0, 5.0, 2.0)),
            (3, Vec3::new(-5.0, -5.0, 2.0)),
            (4, Vec3::new(5.0, -5.0, 2.0)),
        ]
    }

    #[test]
    fn calibrate_then_locate_static_tag() {
        let ants = corner_antennas();
        let mut loc = Localizer::new(&ants, HologramConfig::default());
        let true_pos = Vec3::new(0.2, 0.0, 0.8);
        loc.calibrate(true_pos, &reports_at(true_pos, &ants, 0.0));
        assert_eq!(loc.calibrated_links(), 4);
        // Locate from a slightly wrong prior.
        let est = loc
            .locate(
                &reports_at(true_pos, &ants, 1.0),
                Vec3::new(0.15, 0.05, 0.8),
            )
            .unwrap();
        assert!(
            est.dist(true_pos) < 0.005,
            "error {:.4} m",
            est.dist(true_pos)
        );
    }

    #[test]
    fn tracks_a_displaced_tag() {
        let ants = corner_antennas();
        let mut loc = Localizer::new(&ants, HologramConfig::default());
        let start = Vec3::new(0.2, 0.0, 0.8);
        loc.calibrate(start, &reports_at(start, &ants, 0.0));
        // Tag moved ~4.5 cm (within the search zone); prior is the old
        // position.
        let moved = Vec3::new(0.17, 0.04, 0.8);
        let est = loc.locate(&reports_at(moved, &ants, 1.0), start).unwrap();
        assert!(est.dist(moved) < 0.01, "error {:.4} m", est.dist(moved));
    }

    #[test]
    fn score_peaks_at_true_position() {
        let ants = corner_antennas();
        let mut loc = Localizer::new(&ants, HologramConfig::default());
        let pos = Vec3::new(0.0, 0.1, 0.8);
        loc.calibrate(pos, &reports_at(pos, &ants, 0.0));
        let window = reports_at(pos, &ants, 1.0);
        let at_true = loc.score(&window, pos);
        assert!(at_true > 0.999);
        let off = loc.score(&window, pos + Vec3::new(0.05, 0.0, 0.0));
        assert!(off < at_true);
    }

    #[test]
    fn uncalibrated_links_are_ignored() {
        let ants = corner_antennas();
        let mut loc = Localizer::new(&ants, HologramConfig::default());
        let pos = Vec3::new(0.0, 0.0, 0.8);
        // Calibrate with antenna 1 only.
        let cal: Vec<TagReport> = reports_at(pos, &ants, 0.0)
            .into_iter()
            .filter(|r| r.rf.antenna == 1)
            .collect();
        loc.calibrate(pos, &cal);
        assert_eq!(loc.calibrated_links(), 1);
        // Window on other antennas only → None.
        let window: Vec<TagReport> = reports_at(pos, &ants, 1.0)
            .into_iter()
            .filter(|r| r.rf.antenna != 1)
            .collect();
        assert!(loc.locate(&window, pos).is_none());
    }

    #[test]
    fn fewer_antennas_weaker_localization() {
        // The physical driver of Fig. 1: fewer usable readings per window
        // (lower IRR) → coarser fixes. With a single antenna the hologram
        // ridge is a ring, so the error along it can be large.
        let ants = corner_antennas();
        let mut loc4 = Localizer::new(&ants, HologramConfig::default());
        let mut loc1 = Localizer::new(&ants[..1], HologramConfig::default());
        let start = Vec3::new(0.2, 0.0, 0.8);
        loc4.calibrate(start, &reports_at(start, &ants, 0.0));
        loc1.calibrate(start, &reports_at(start, &ants[..1], 0.0));
        let moved = Vec3::new(0.17, 0.04, 0.8);
        let e4 = loc4
            .locate(&reports_at(moved, &ants, 1.0), start)
            .unwrap()
            .dist(moved);
        let w1: Vec<TagReport> = reports_at(moved, &ants[..1], 1.0);
        let e1 = loc1.locate(&w1, start).unwrap().dist(moved);
        assert!(e4 < 0.01);
        assert!(e1 > e4, "1-antenna {e1} vs 4-antenna {e4}");
    }
}
