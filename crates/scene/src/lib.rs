//! # tagwatch-scene — physical scenes for the Tagwatch reproduction
//!
//! Kinematic substrate: tags, ambient reflectors (people, metal), and
//! reader antennas, each with a motion model that is a pure function of
//! time. Ground-truth motion labels come from the trajectories, which is
//! what the paper's detection metrics (TPR/FPR, sensitivity) are scored
//! against.
//!
//! [`presets`] reconstructs every experimental apparatus in the paper:
//! the 100-tag office with walking people (§7.1), the toy train and its
//! circular track (§1, §7.3), the 40-tag random rooms (§7.2), the spinning
//! turntable (§7.3), and the TrackPoint sorting gate (§2.4).

#![forbid(unsafe_code)]
pub mod entities;
pub mod presets;
pub mod scene;
pub mod trajectory;

pub use entities::{Antenna, SceneReflector, SceneTag};
pub use scene::Scene;
pub use trajectory::Trajectory;
