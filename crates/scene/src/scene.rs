//! The assembled scene: tags + reflectors + antennas, queried by time.

use crate::entities::{Antenna, SceneReflector, SceneTag};
use serde::{Deserialize, Serialize};
use tagwatch_rf::{Reflector, Vec3};

/// A complete physical scene. The reader simulator holds one of these and
/// asks it for geometry at exact read instants.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Scene {
    /// Tags, indexed consistently with the reader's protocol population.
    pub tags: Vec<SceneTag>,
    /// Ambient reflectors (people, carts, shelving).
    pub reflectors: Vec<SceneReflector>,
    /// Reader antennas.
    pub antennas: Vec<Antenna>,
    /// Geometry epoch: a version counter for the scene's *structure*
    /// (which trajectories exist, where antennas sit). Downstream
    /// caches — the per-(tag, antenna) channel cache in `rf` — key their
    /// entries on this and drop everything when it moves. Bumped by the
    /// mutating methods on this type; code that mutates the public
    /// fields directly must call [`Scene::bump_epoch`] itself. Never
    /// serialized: a deserialized scene starts a fresh epoch history.
    #[serde(skip)]
    pub(crate) epoch: u64,
}

/// Scene identity is its physical content; the epoch is cache metadata
/// (two scenes with identical geometry compare equal regardless of how
/// many edits produced them).
impl PartialEq for Scene {
    fn eq(&self, other: &Self) -> bool {
        self.tags == other.tags
            && self.reflectors == other.reflectors
            && self.antennas == other.antennas
    }
}

impl Scene {
    /// An empty scene with a single antenna at the origin.
    pub fn with_single_antenna() -> Self {
        Scene {
            tags: Vec::new(),
            reflectors: Vec::new(),
            antennas: vec![Antenna {
                port: 1,
                position: Vec3::ZERO,
            }],
            epoch: 0,
        }
    }

    /// The current geometry epoch. Cache entries keyed on an older epoch
    /// are stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Declares a structural geometry change (a trajectory swapped, an
    /// antenna moved, a motion step applied in place): every
    /// epoch-keyed cache downstream must invalidate. The mutating
    /// methods on this type call it automatically.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Adds a tag and returns its index.
    pub fn add_tag(&mut self, tag: SceneTag) -> usize {
        self.tags.push(tag);
        self.bump_epoch();
        self.tags.len() - 1
    }

    /// Adds a reflector.
    pub fn add_reflector(&mut self, r: SceneReflector) {
        self.reflectors.push(r);
        self.bump_epoch();
    }

    /// Position of tag `idx` at time `t`.
    pub fn tag_position(&self, idx: usize, t: f64) -> Vec3 {
        self.tags[idx].position_at(t)
    }

    /// Instantaneous RF reflectors at time `t`.
    pub fn reflectors_at(&self, t: f64) -> Vec<Reflector> {
        self.reflectors.iter().map(|r| r.at(t)).collect()
    }

    /// [`Scene::reflectors_at`] into a caller-owned buffer: clears `out`
    /// and fills it, so per-read hot paths can reuse one allocation for
    /// the whole run.
    pub fn reflectors_at_into(&self, t: f64, out: &mut Vec<Reflector>) {
        out.clear();
        out.extend(self.reflectors.iter().map(|r| r.at(t)));
    }

    /// The antenna with LLRP port number `port`. Panics on unknown port —
    /// a misconfigured ROSpec is a programming error, matching how a real
    /// reader rejects the spec outright.
    pub fn antenna(&self, port: u8) -> &Antenna {
        self.antennas
            .iter()
            .find(|a| a.port == port)
            .unwrap_or_else(|| panic!("no antenna with port {port}")) // lint:allow(panic-policy): documented contract: a bad port is a programming error
    }

    /// Ground-truth motion label of tag `idx` at `t`.
    pub fn tag_moving(&self, idx: usize, t: f64, eps: f64) -> bool {
        self.tags[idx].is_moving_at(t, eps)
    }

    /// Indices of tags present in the field at `t`.
    pub fn present_tags(&self, t: f64) -> Vec<usize> {
        self.tags
            .iter()
            .enumerate()
            .filter(|(_, tag)| tag.present_at(t))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::trajectory::Trajectory;

    #[test]
    fn add_and_query() {
        let mut scene = Scene::with_single_antenna();
        let i = scene.add_tag(SceneTag::fixed(1, Vec3::new(1.0, 0.0, 0.0)));
        let j = scene.add_tag(SceneTag::new(
            2,
            Trajectory::Circle {
                center: Vec3::ZERO,
                radius: 1.0,
                speed: 1.0,
                phase0: 0.0,
            },
        ));
        assert_eq!(i, 0);
        assert_eq!(j, 1);
        assert_eq!(scene.tag_position(0, 5.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(!scene.tag_moving(0, 5.0, 1e-6));
        assert!(scene.tag_moving(1, 5.0, 1e-3));
    }

    #[test]
    fn reflector_snapshot() {
        let mut scene = Scene::with_single_antenna();
        scene.add_reflector(SceneReflector::metal(Vec3::new(2.0, 2.0, 0.0)));
        scene.add_reflector(SceneReflector::person(
            Vec3::ZERO,
            Vec3::new(5.0, 0.0, 0.0),
            1.0,
            0.0,
        ));
        let rs = scene.reflectors_at(2.5);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].position, Vec3::new(2.0, 2.0, 0.0));
        assert_eq!(rs[1].position, Vec3::new(2.5, 0.0, 0.0));
    }

    #[test]
    fn antenna_lookup() {
        let mut scene = Scene::default();
        scene.antennas.push(Antenna {
            port: 3,
            position: Vec3::new(0.0, 5.0, 2.0),
        });
        assert_eq!(scene.antenna(3).position, Vec3::new(0.0, 5.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "no antenna")]
    fn unknown_antenna_panics() {
        Scene::default().antenna(9);
    }

    #[test]
    fn present_tags_respects_windows() {
        let mut scene = Scene::with_single_antenna();
        scene.add_tag(SceneTag::fixed(1, Vec3::ZERO));
        scene.add_tag(SceneTag::fixed(2, Vec3::ZERO).with_presence(10.0, 20.0));
        assert_eq!(scene.present_tags(5.0), vec![0]);
        assert_eq!(scene.present_tags(15.0), vec![0, 1]);
        assert_eq!(scene.present_tags(25.0), vec![0]);
    }
}
