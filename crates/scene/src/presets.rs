//! Pre-built scenes matching the paper's experimental setups.
//!
//! Each constructor documents the section/figure it reproduces. All
//! randomness is seeded, so a preset plus a seed is a complete experiment
//! description.

use crate::entities::{Antenna, SceneReflector, SceneTag};
use crate::scene::Scene;
use crate::trajectory::Trajectory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tagwatch_rf::Vec3;

/// Antenna height used throughout (the paper mounts antennas ~2 m up).
const ANTENNA_Z: f64 = 2.0;

/// Four antennas at `(±5, ±5)` — the §7.3 application-study layout.
pub fn four_corner_antennas() -> Vec<Antenna> {
    vec![
        Antenna {
            port: 1,
            position: Vec3::new(5.0, 5.0, ANTENNA_Z),
        },
        Antenna {
            port: 2,
            position: Vec3::new(-5.0, 5.0, ANTENNA_Z),
        },
        Antenna {
            port: 3,
            position: Vec3::new(-5.0, -5.0, ANTENNA_Z),
        },
        Antenna {
            port: 4,
            position: Vec3::new(5.0, -5.0, ANTENNA_Z),
        },
    ]
}

/// Uniformly random tag position on a `half × half` square around the
/// origin, at tabletop height.
fn random_position(rng: &mut StdRng, half: f64) -> Vec3 {
    Vec3::new(
        rng.gen_range(-half..half),
        rng.gen_range(-half..half),
        rng.gen_range(0.6..1.2),
    )
}

/// §7.1 / Fig. 12 / Fig. 8: `n_tags` stationary tags in an office with
/// `n_people` individuals walking around, one reader antenna.
///
/// "To represent false positives, we deploy 100 stationary tags in our
/// office. Approximately 10 individuals work in the room."
pub fn office_monitoring(n_tags: usize, n_people: usize, seed: u64) -> Scene {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scene = Scene {
        tags: Vec::new(),
        reflectors: Vec::new(),
        antennas: vec![Antenna {
            port: 1,
            position: Vec3::new(0.0, 0.0, ANTENNA_Z),
        }],
        ..Scene::default()
    };
    for k in 0..n_tags {
        scene.add_tag(SceneTag::fixed(k as u64, random_position(&mut rng, 4.0)));
    }
    for _ in 0..n_people {
        let a = random_position(&mut rng, 4.5);
        let b = random_position(&mut rng, 4.5);
        let speed = rng.gen_range(0.6..1.4);
        let offset = rng.gen_range(0.0..20.0);
        scene.add_reflector(SceneReflector::person(
            Vec3::new(a.x, a.y, 1.0),
            Vec3::new(b.x, b.y, 1.0),
            speed,
            offset,
        ));
    }
    scene
}

/// §7.1 accuracy workload: a tag on a toy train moving along an oval
/// (here: circular) track of radius 20 cm at 0.7 m/s, plus office clutter.
pub fn toy_train(seed: u64) -> Scene {
    let mut scene = office_monitoring(0, 2, seed);
    scene.add_tag(SceneTag::new(
        1000,
        Trajectory::Circle {
            center: Vec3::new(1.5, 0.0, 0.8),
            radius: 0.2,
            speed: 0.7,
            phase0: 0.0,
        },
    ));
    scene
}

/// §1 / §7.3 / Fig. 1: the tracking application study. One tag on a toy
/// train (circular track) plus `n_static` stationary tags beside the
/// track, observed by the four corner antennas.
pub fn tracking_study(n_static: usize, seed: u64) -> Scene {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scene = Scene {
        tags: Vec::new(),
        reflectors: Vec::new(),
        antennas: four_corner_antennas(),
        ..Scene::default()
    };
    // Laboratory clutter close to the track: a bench and a shelf within a
    // metre or two, and a person working nearby. Scattering decays on
    // both legs (Γ/(d₁·d₂)), so only nearby clutter matters — and this is
    // what couples tracking accuracy to reading rate: more reads per
    // window average the disturbance down.
    scene.add_reflector(SceneReflector {
        trajectory: Trajectory::Static {
            position: Vec3::new(1.0, -0.7, 0.9),
        },
        coefficient: 0.35,
    });
    scene.add_reflector(SceneReflector {
        trajectory: Trajectory::Static {
            position: Vec3::new(-0.8, 0.9, 0.6),
        },
        coefficient: 0.3,
    });
    scene.add_reflector(SceneReflector {
        trajectory: Trajectory::Patrol {
            a: Vec3::new(-1.8, -1.5, 1.0),
            b: Vec3::new(1.8, -1.0, 1.0),
            speed: 0.9,
            t_offset: 0.0,
        },
        coefficient: 0.3,
    });
    // The mobile tag: index 0 by convention.
    scene.add_tag(SceneTag::new(
        0,
        Trajectory::Circle {
            center: Vec3::new(0.0, 0.0, 0.8),
            radius: 0.2,
            speed: 0.7,
            phase0: 0.0,
        },
    ));
    // Stationary tags "beside the track": within ~0.5–1 m of it.
    for k in 0..n_static {
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = rng.gen_range(0.5..1.0);
        scene.add_tag(SceneTag::fixed(
            1 + k as u64,
            Vec3::new(r * angle.cos(), r * angle.sin(), 0.8),
        ));
    }
    scene
}

/// §7.2: `n` tags with random positions covered by one antenna (the paper
/// deploys 4 × 40; each antenna covers its own 40, so the per-antenna
/// experiment is a 40-tag scene).
pub fn random_room(n: usize, seed: u64) -> Scene {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scene = Scene {
        tags: Vec::new(),
        reflectors: Vec::new(),
        antennas: vec![Antenna {
            port: 1,
            position: Vec3::new(0.0, 0.0, ANTENNA_Z),
        }],
        ..Scene::default()
    };
    for k in 0..n {
        scene.add_tag(SceneTag::fixed(k as u64, random_position(&mut rng, 3.0)));
    }
    scene
}

/// §7.3 / Fig. 18: `n_mobile` of `n_total` tags ride a spinning turntable;
/// the rest are stationary around the room.
pub fn turntable(n_total: usize, n_mobile: usize, seed: u64) -> Scene {
    assert!(n_mobile <= n_total);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scene = Scene {
        tags: Vec::new(),
        reflectors: Vec::new(),
        antennas: vec![Antenna {
            port: 1,
            position: Vec3::new(0.0, 0.0, ANTENNA_Z),
        }],
        ..Scene::default()
    };
    // Mobile tags first (indices 0..n_mobile): spread around the platter.
    for k in 0..n_mobile {
        let phase0 = rng.gen_range(0.0..std::f64::consts::TAU);
        scene.add_tag(SceneTag::new(
            k as u64,
            Trajectory::Circle {
                center: Vec3::new(1.2, 0.0, 0.8),
                radius: 0.15,
                speed: 0.5,
                phase0,
            },
        ));
    }
    for k in n_mobile..n_total {
        scene.add_tag(SceneTag::fixed(k as u64, random_position(&mut rng, 3.0)));
    }
    scene
}

/// §7.1 / Fig. 13 sensitivity workload: one tag that steps `displacement`
/// metres in a random horizontal direction at `t_step`, plus office
/// clutter-free quiet (the paper moves the tag by hand).
pub fn step_displacement(displacement: f64, t_step: f64, seed: u64) -> Scene {
    let mut rng = StdRng::seed_from_u64(seed);
    let dir = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut scene = Scene::with_single_antenna();
    scene.antennas[0].position = Vec3::new(0.0, 0.0, ANTENNA_Z);
    scene.add_tag(SceneTag::new(
        0,
        Trajectory::StepDisplacement {
            origin: Vec3::new(1.5, 0.5, 0.8),
            displacement: Vec3::new(displacement * dir.cos(), displacement * dir.sin(), 0.0),
            t_step,
        },
    ));
    scene
}

/// §2.4 / Fig. 3–4: a TrackPoint-style sorting gate. Conveyor pieces flow
/// through the gate; parked (sorted) tags sit near it, one of them
/// pathologically close (the paper's tag #271).
///
/// `n_parked` stationary tags; `conveyor` pieces are added by the trace
/// generator, which controls arrival times.
pub fn trackpoint_gate(n_parked: usize, seed: u64) -> Scene {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scene = Scene {
        tags: Vec::new(),
        reflectors: Vec::new(),
        antennas: vec![
            Antenna {
                port: 1,
                position: Vec3::new(-0.5, 0.0, 2.2),
            },
            Antenna {
                port: 2,
                position: Vec3::new(0.0, 0.0, 2.2),
            },
            Antenna {
                port: 3,
                position: Vec3::new(0.5, 0.0, 2.2),
            },
        ],
        ..Scene::default()
    };
    for k in 0..n_parked {
        // Parked pieces sit 1–4 m to the side of the belt; the first one is
        // the "vehicle parked right next to the gate" case.
        let pos = if k == 0 {
            Vec3::new(0.0, 1.0, 0.8)
        } else {
            Vec3::new(
                rng.gen_range(-3.0..3.0),
                rng.gen_range(1.0..4.0),
                rng.gen_range(0.2..1.5),
            )
        };
        scene.add_tag(SceneTag::fixed(k as u64, pos));
    }
    scene
}

/// A conveyor piece passing through the gate: enters at `t_arrive`, rides
/// the belt through the antenna line at `speed`, and leaves the field.
pub fn conveyor_piece(key: u64, t_arrive: f64, speed: f64) -> SceneTag {
    let length = 6.0; // metres of belt within read range
    let dwell = length / speed;
    SceneTag::new(
        key,
        Trajectory::Conveyor {
            start: Vec3::new(-length / 2.0, 0.0, 0.9),
            end: Vec3::new(length / 2.0, 0.0, 0.9),
            speed,
            t_depart: t_arrive,
        },
    )
    .with_presence(t_arrive, t_arrive + dwell)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_shape() {
        let s = office_monitoring(100, 10, 1);
        assert_eq!(s.tags.len(), 100);
        assert_eq!(s.reflectors.len(), 10);
        assert_eq!(s.antennas.len(), 1);
        assert!(s.tags.iter().all(|t| t.trajectory.is_static()));
    }

    #[test]
    fn tracking_study_shape() {
        let s = tracking_study(4, 2);
        assert_eq!(s.tags.len(), 5);
        assert_eq!(s.antennas.len(), 4);
        assert!(!s.tags[0].trajectory.is_static());
        assert!(s.tags[1..].iter().all(|t| t.trajectory.is_static()));
        // Mobile tag stays within reach of all antennas.
        let p = s.tag_position(0, 3.3);
        assert!(p.norm() < 1.0);
    }

    #[test]
    fn turntable_split() {
        let s = turntable(40, 5, 3);
        assert_eq!(s.tags.len(), 40);
        let moving = s.tags.iter().filter(|t| !t.trajectory.is_static()).count();
        assert_eq!(moving, 5);
        // Mobile tags are the first indices.
        for i in 0..5 {
            assert!(!s.tags[i].trajectory.is_static());
        }
    }

    #[test]
    fn presets_are_seed_deterministic() {
        assert_eq!(random_room(20, 9), random_room(20, 9));
        assert_ne!(random_room(20, 9), random_room(20, 10));
    }

    #[test]
    fn step_preset_displaces_by_requested_amount() {
        let s = step_displacement(0.03, 5.0, 4);
        let before = s.tag_position(0, 4.9);
        let after = s.tag_position(0, 5.1);
        assert!((before.dist(after) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn conveyor_piece_presence_matches_transit() {
        let piece = conveyor_piece(7, 100.0, 1.0);
        assert!(!piece.present_at(99.9));
        assert!(piece.present_at(100.0));
        assert!(piece.present_at(105.9));
        assert!(!piece.present_at(106.0));
        // Moving while present.
        assert!(piece.is_moving_at(103.0, 1e-6));
    }

    #[test]
    fn gate_has_three_antennas() {
        let s = trackpoint_gate(50, 5);
        assert_eq!(s.antennas.len(), 3);
        assert_eq!(s.tags.len(), 50);
        // Tag 0 is the pathological parked piece near the gate.
        assert!(s.tag_position(0, 0.0).dist(s.antennas[1].position) < 2.0);
    }
}
