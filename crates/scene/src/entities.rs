//! Scene entities: tags, ambient reflectors, and reader antennas.

use crate::trajectory::Trajectory;
use serde::{Deserialize, Serialize};
use tagwatch_rf::{Reflector, Vec3};

/// A physical tag in the scene.
///
/// The scene layer knows nothing about EPCs — the reader layer pairs each
/// `SceneTag` with a protocol state machine by index. `key` is a stable
/// identifier used for per-link hardware offsets in the channel model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneTag {
    /// Stable identity for channel offsets and bookkeeping.
    pub key: u64,
    /// Motion model.
    pub trajectory: Trajectory,
    /// Time window `[enter, leave)` during which the tag is inside the
    /// reader field. `None` = always present. Models the "reading
    /// exceptions" of §4.3 (tags coming in, going out, being blocked).
    pub presence: Option<(f64, f64)>,
}

impl SceneTag {
    /// An always-present tag.
    pub fn new(key: u64, trajectory: Trajectory) -> Self {
        SceneTag {
            key,
            trajectory,
            presence: None,
        }
    }

    /// A stationary tag at `position`.
    pub fn fixed(key: u64, position: Vec3) -> Self {
        SceneTag::new(key, Trajectory::Static { position })
    }

    /// Restrict presence to a time window.
    pub fn with_presence(mut self, enter: f64, leave: f64) -> Self {
        assert!(enter < leave, "presence window must be non-empty");
        self.presence = Some((enter, leave));
        self
    }

    /// Whether the tag is in the field at time `t`.
    pub fn present_at(&self, t: f64) -> bool {
        match self.presence {
            None => true,
            Some((enter, leave)) => (enter..leave).contains(&t),
        }
    }

    /// Position at time `t`.
    pub fn position_at(&self, t: f64) -> Vec3 {
        self.trajectory.position_at(t)
    }

    /// Ground-truth motion label at time `t` (displacement > `eps` over a
    /// short window).
    pub fn is_moving_at(&self, t: f64, eps: f64) -> bool {
        self.trajectory.is_moving_at(t, eps)
    }
}

/// An ambient reflector: a person, cart, or fixed metal surface. These
/// never backscatter IDs; they only perturb the channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneReflector {
    /// Motion model.
    pub trajectory: Trajectory,
    /// Reflection coefficient magnitude (see [`tagwatch_rf::Reflector`]).
    pub coefficient: f64,
}

impl SceneReflector {
    /// A walking person patrolling between two points.
    pub fn person(a: Vec3, b: Vec3, speed: f64, t_offset: f64) -> Self {
        SceneReflector {
            trajectory: Trajectory::Patrol {
                a,
                b,
                speed,
                t_offset,
            },
            coefficient: 0.3,
        }
    }

    /// A fixed metallic surface.
    pub fn metal(position: Vec3) -> Self {
        SceneReflector {
            trajectory: Trajectory::Static { position },
            coefficient: 0.7,
        }
    }

    /// The instantaneous RF-layer reflector at time `t`.
    pub fn at(&self, t: f64) -> Reflector {
        Reflector {
            position: self.trajectory.position_at(t),
            coefficient: self.coefficient,
        }
    }
}

/// A reader antenna port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Antenna {
    /// LLRP-style 1-based port number.
    pub port: u8,
    /// Fixed position.
    pub position: Vec3,
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn presence_window() {
        let tag = SceneTag::fixed(1, Vec3::ZERO).with_presence(2.0, 5.0);
        assert!(!tag.present_at(1.9));
        assert!(tag.present_at(2.0));
        assert!(tag.present_at(4.99));
        assert!(!tag.present_at(5.0));
        let always = SceneTag::fixed(2, Vec3::ZERO);
        assert!(always.present_at(1e9));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_presence_rejected() {
        let _ = SceneTag::fixed(1, Vec3::ZERO).with_presence(5.0, 5.0);
    }

    #[test]
    fn person_reflector_moves() {
        let p = SceneReflector::person(Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0), 1.0, 0.0);
        let a = p.at(0.0);
        let b = p.at(1.5);
        assert!(a.position.dist(b.position) > 1.0);
        assert_eq!(a.coefficient, 0.3);
    }

    #[test]
    fn metal_reflector_static() {
        let m = SceneReflector::metal(Vec3::new(1.0, 1.0, 0.0));
        assert_eq!(m.at(0.0).position, m.at(100.0).position);
        assert_eq!(m.coefficient, 0.7);
    }
}
