//! Motion models for tags and ambient reflectors.
//!
//! Every trajectory is a *pure function of time* — `position_at(t)` — so
//! the whole simulation stays deterministic and random-access in time (the
//! round engine asks for positions at exact read instants, not on a fixed
//! tick).
//!
//! The variants cover the paper's experimental apparatus: toy trains on
//! circular/oval tracks (§1, §7.1, §7.3), turntables (§7.3), conveyors
//! (§2.4), walking people (§4.1, §7.1), and the discrete displacements of
//! the sensitivity study (§7.1, Fig. 13).

use serde::{Deserialize, Serialize};
use tagwatch_rf::Vec3;

/// A motion model: position as a pure function of time (seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Trajectory {
    /// Never moves.
    Static {
        /// Fixed position.
        position: Vec3,
    },
    /// Uniform circular motion in a horizontal plane — toy trains and
    /// turntables.
    Circle {
        /// Circle centre.
        center: Vec3,
        /// Radius in metres.
        radius: f64,
        /// Tangential speed in m/s (negative = clockwise).
        speed: f64,
        /// Angular position at `t = 0`, radians.
        phase0: f64,
    },
    /// Straight-line motion from `start` to `end` at constant speed,
    /// beginning at `t_depart`; holds at `start` before and at `end`
    /// after — a piece on a conveyor.
    Conveyor {
        start: Vec3,
        end: Vec3,
        /// Speed along the segment, m/s (> 0).
        speed: f64,
        /// Departure time, seconds.
        t_depart: f64,
    },
    /// Back-and-forth patrol between two points at constant speed —
    /// a person walking around the office.
    Patrol {
        a: Vec3,
        b: Vec3,
        /// Walking speed, m/s (> 0).
        speed: f64,
        /// Phase offset along the loop at `t = 0`, seconds.
        t_offset: f64,
    },
    /// Piecewise-linear interpolation through time-stamped waypoints;
    /// clamps to the first/last waypoint outside the time range.
    Waypoints {
        /// `(time, position)` pairs with strictly increasing times.
        points: Vec<(f64, Vec3)>,
    },
    /// Stationary at `origin` until `t_step`, then instantly displaced —
    /// the Fig. 13 sensitivity experiment ("move a tag away in a random
    /// direction with a displacement of 1–5 cm").
    StepDisplacement {
        origin: Vec3,
        /// Displacement applied at `t_step`.
        displacement: Vec3,
        /// Step time, seconds.
        t_step: f64,
    },
    /// Quasi-random smooth wander around an origin (sum of incommensurate
    /// sinusoids) — background clutter motion.
    Wander {
        origin: Vec3,
        /// Peak excursion in metres.
        amplitude: f64,
        /// Base frequency in Hz.
        freq: f64,
        /// Per-instance phase seed.
        phase: f64,
    },
}

impl Trajectory {
    /// Position at absolute time `t` (seconds).
    pub fn position_at(&self, t: f64) -> Vec3 {
        match self {
            Trajectory::Static { position } => *position,
            Trajectory::Circle {
                center,
                radius,
                speed,
                phase0,
            } => {
                let omega = if *radius > 0.0 { speed / radius } else { 0.0 };
                let theta = phase0 + omega * t;
                *center + Vec3::new(radius * theta.cos(), radius * theta.sin(), 0.0)
            }
            Trajectory::Conveyor {
                start,
                end,
                speed,
                t_depart,
            } => {
                let len = start.dist(*end);
                if len == 0.0 || t <= *t_depart {
                    return *start;
                }
                let travelled = speed * (t - t_depart);
                let frac = (travelled / len).clamp(0.0, 1.0);
                start.lerp(*end, frac)
            }
            Trajectory::Patrol {
                a,
                b,
                speed,
                t_offset,
            } => {
                let len = a.dist(*b);
                if len == 0.0 {
                    return *a;
                }
                let period = 2.0 * len / speed;
                let mut s = ((t + t_offset) % period + period) % period;
                if s <= len / speed {
                    a.lerp(*b, s * speed / len)
                } else {
                    s -= len / speed;
                    b.lerp(*a, s * speed / len)
                }
            }
            Trajectory::Waypoints { points } => {
                assert!(!points.is_empty(), "waypoint trajectory needs points");
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let i = points.partition_point(|(pt, _)| *pt <= t);
                let (t0, p0) = points[i - 1];
                let (t1, p1) = points[i];
                let frac = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
                p0.lerp(p1, frac)
            }
            Trajectory::StepDisplacement {
                origin,
                displacement,
                t_step,
            } => {
                if t < *t_step {
                    *origin
                } else {
                    *origin + *displacement
                }
            }
            Trajectory::Wander {
                origin,
                amplitude,
                freq,
                phase,
            } => {
                let w = std::f64::consts::TAU * freq;
                // Three incommensurate tones per axis give a non-repeating,
                // smooth, bounded wander.
                let x = (w * t + phase).sin() + 0.5 * (1.618 * w * t + 2.0 * phase).sin();
                let y = (w * t + phase + 1.7).sin() + 0.5 * (1.618 * w * t + 0.3 * phase).cos();
                let z = 0.2 * (0.77 * w * t + phase).sin();
                *origin + Vec3::new(x, y, z) * (*amplitude / 1.5)
            }
        }
    }

    /// Ground-truth "is moving" at time `t`: displacement over a small
    /// window exceeds `eps` metres. This is the label the evaluation
    /// (TPR/FPR in Fig. 12) scores against.
    pub fn is_moving_at(&self, t: f64, eps: f64) -> bool {
        // Symmetric finite difference over 100 ms — long enough to see
        // conveyor/patrol motion, short enough to localise step changes.
        let dt = 0.05;
        let before = self.position_at(t - dt);
        let after = self.position_at(t + dt);
        before.dist(after) > eps
    }

    /// Whether this trajectory ever moves (static check, conservative).
    pub fn is_static(&self) -> bool {
        match self {
            Trajectory::Static { .. } => true,
            Trajectory::Circle { speed, radius, .. } => *speed == 0.0 || *radius == 0.0,
            Trajectory::Conveyor { start, end, .. } => start == end,
            Trajectory::Patrol { a, b, .. } => a == b,
            Trajectory::Waypoints { points } => points.windows(2).all(|w| w[0].1 == w[1].1),
            Trajectory::StepDisplacement { displacement, .. } => displacement.norm() == 0.0,
            Trajectory::Wander { amplitude, .. } => *amplitude == 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn static_never_moves() {
        let tr = Trajectory::Static {
            position: Vec3::new(1.0, 2.0, 3.0),
        };
        assert_eq!(tr.position_at(0.0), tr.position_at(1e6));
        assert!(!tr.is_moving_at(5.0, 1e-6));
        assert!(tr.is_static());
    }

    #[test]
    fn circle_radius_and_speed() {
        let tr = Trajectory::Circle {
            center: Vec3::ZERO,
            radius: 0.2,
            speed: 0.7,
            phase0: 0.0,
        };
        // Always on the circle.
        for k in 0..20 {
            let p = tr.position_at(k as f64 * 0.13);
            assert!((p.dist(Vec3::ZERO) - 0.2).abs() < 1e-12);
        }
        // Speed check via finite difference.
        let dt = 1e-5;
        let v = tr.position_at(1.0 + dt).dist(tr.position_at(1.0)) / dt;
        assert!((v - 0.7).abs() < 1e-3, "speed {v}");
        assert!(tr.is_moving_at(1.0, 1e-3));
        assert!(!tr.is_static());
    }

    #[test]
    fn conveyor_departs_travels_arrives() {
        let tr = Trajectory::Conveyor {
            start: Vec3::ZERO,
            end: Vec3::new(10.0, 0.0, 0.0),
            speed: 2.0,
            t_depart: 1.0,
        };
        assert_eq!(tr.position_at(0.0), Vec3::ZERO);
        assert_eq!(tr.position_at(1.0), Vec3::ZERO);
        assert_eq!(tr.position_at(2.0), Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(tr.position_at(6.0), Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(tr.position_at(100.0), Vec3::new(10.0, 0.0, 0.0));
        assert!(!tr.is_moving_at(0.5, 1e-6));
        assert!(tr.is_moving_at(3.0, 1e-6));
        assert!(!tr.is_moving_at(50.0, 1e-6));
    }

    #[test]
    fn patrol_oscillates() {
        let tr = Trajectory::Patrol {
            a: Vec3::ZERO,
            b: Vec3::new(4.0, 0.0, 0.0),
            speed: 1.0,
            t_offset: 0.0,
        };
        assert_eq!(tr.position_at(0.0), Vec3::ZERO);
        assert_eq!(tr.position_at(4.0), Vec3::new(4.0, 0.0, 0.0));
        assert_eq!(tr.position_at(8.0), Vec3::ZERO);
        assert_eq!(tr.position_at(2.0), Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(tr.position_at(6.0), Vec3::new(2.0, 0.0, 0.0));
        // Periodicity.
        assert_eq!(tr.position_at(1.3), tr.position_at(1.3 + 8.0));
        // Negative time is well-defined.
        assert_eq!(tr.position_at(-2.0), tr.position_at(6.0));
    }

    #[test]
    fn waypoints_interpolate_and_clamp() {
        let tr = Trajectory::Waypoints {
            points: vec![
                (1.0, Vec3::ZERO),
                (3.0, Vec3::new(2.0, 0.0, 0.0)),
                (4.0, Vec3::new(2.0, 2.0, 0.0)),
            ],
        };
        assert_eq!(tr.position_at(0.0), Vec3::ZERO);
        assert_eq!(tr.position_at(2.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(tr.position_at(3.5), Vec3::new(2.0, 1.0, 0.0));
        assert_eq!(tr.position_at(9.0), Vec3::new(2.0, 2.0, 0.0));
    }

    #[test]
    fn step_displacement_is_sharp() {
        let tr = Trajectory::StepDisplacement {
            origin: Vec3::ZERO,
            displacement: Vec3::new(0.02, 0.0, 0.0),
            t_step: 5.0,
        };
        assert_eq!(tr.position_at(4.999), Vec3::ZERO);
        assert_eq!(tr.position_at(5.0), Vec3::new(0.02, 0.0, 0.0));
        assert!(tr.is_moving_at(5.0, 0.01));
        assert!(!tr.is_moving_at(4.0, 0.001));
        assert!(!tr.is_moving_at(6.0, 0.001));
    }

    #[test]
    fn wander_is_bounded_and_smooth() {
        let tr = Trajectory::Wander {
            origin: Vec3::new(1.0, 1.0, 1.0),
            amplitude: 0.5,
            freq: 0.2,
            phase: 0.9,
        };
        let origin = Vec3::new(1.0, 1.0, 1.0);
        for k in 0..500 {
            let t = k as f64 * 0.1;
            let p = tr.position_at(t);
            assert!(p.dist(origin) < 1.0, "excursion at t={t}");
            // Smooth: adjacent samples close.
            let q = tr.position_at(t + 0.01);
            assert!(p.dist(q) < 0.05);
        }
    }

    #[test]
    fn is_static_edge_cases() {
        assert!(Trajectory::Circle {
            center: Vec3::ZERO,
            radius: 0.0,
            speed: 1.0,
            phase0: 0.0
        }
        .is_static());
        assert!(Trajectory::Conveyor {
            start: Vec3::ZERO,
            end: Vec3::ZERO,
            speed: 1.0,
            t_depart: 0.0
        }
        .is_static());
        assert!(Trajectory::StepDisplacement {
            origin: Vec3::ZERO,
            displacement: Vec3::ZERO,
            t_step: 0.0
        }
        .is_static());
    }
}
