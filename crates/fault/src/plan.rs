//! The fault plan model: what goes wrong, when.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s; each event is a
//! [`FaultKind`] active over a half-open [`Window`] `[start, end)` of the
//! *simulated* clock. Windows may overlap freely (effects compose — see
//! [`crate::injector::RoundEffects`]) and may be zero-length (a no-op by
//! construction: a half-open empty interval contains no instant).
//!
//! The plan carries its own graceful-degradation [`crate::Envelope`], so
//! a plan file is a complete, self-judging experiment: the differential
//! harness needs nothing but the plan and a seed.

use crate::envelope::Envelope;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open activation window `[start, end)` on the simulated clock,
/// in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// First instant the fault is active.
    pub start: f64,
    /// First instant the fault is no longer active.
    pub end: f64,
}

impl Window {
    /// A window over `[start, end)`.
    pub fn new(start: f64, end: f64) -> Self {
        Window { start, end }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether the window contains no instant at all.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Window length in seconds (zero for empty windows).
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// One kind of injected fault. Field semantics are *additive* over the
/// clean configuration: a `BurstNoise` sigma adds to the channel model's
/// own sigma, an `SnrCollapse` decode probability adds to the configured
/// decode failure rate, and so on, so a plan composes with any scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultKind {
    /// RF: the listed antenna ports go dark — rounds on them consume air
    /// time but energize no tags. An empty list means *all* ports.
    AntennaOutage {
        #[serde(default)]
        antennas: Vec<u8>,
    },
    /// RF: a burst-interference episode; both sigmas are *added* to the
    /// channel model's receive-chain noise for the window's duration.
    BurstNoise {
        #[serde(default)]
        phase_sigma: f64,
        #[serde(default)]
        rss_sigma_db: f64,
    },
    /// RF: link margin collapses — every read loses `rss_drop_db` of
    /// signal and each tag reply additionally fails to decode with
    /// probability `decode_fail_prob` (added to the configured rate).
    SnrCollapse {
        #[serde(default)]
        rss_drop_db: f64,
        #[serde(default)]
        decode_fail_prob: f64,
    },
    /// Gen2: each `Select` command is lost (never reaches any tag) with
    /// the given probability, independently per tag per command.
    SelectLoss { prob: f64 },
    /// Gen2: each `QueryRep` broadcast is lost with the given
    /// probability (the whole slot boundary vanishes for every tag).
    QueryRepLoss { prob: f64 },
    /// Gen2: a successfully-decoded EPC reply is corrupted with the
    /// given probability — the reader sees garbage, discards the read,
    /// and the slot is charged like a collision.
    ReplyCorruption { prob: f64 },
    /// Gen2: the listed tags (scene indices) stop responding entirely
    /// for the window, but keep their volatile state — a detuned
    /// neighbour or a hand covering the tag, briefly.
    TagMute { tags: Vec<usize> },
    /// Gen2: the listed tags (scene indices) are detuned *hard*: they
    /// lose power at window open (volatile session flags reset, per the
    /// Gen2 persistence model) and rejoin only after the window closes.
    TagDetune { tags: Vec<usize> },
    /// Reader: the reader stalls for the whole window (no commands, air
    /// time still elapses) and restarts at window close. With
    /// `preserve_flags` the tags' session flags survive the stall
    /// (short outage, S2/S3 persistence); without it every tag is
    /// power-cycled — the field dropped long enough to reset them.
    ReaderRestart {
        #[serde(default)]
        preserve_flags: bool,
    },
}

impl FaultKind {
    /// Stable machine-readable name, used in telemetry markers
    /// (`fault.open.<slug>` / `fault.close.<slug>`) and plan files.
    pub fn slug(&self) -> &'static str {
        match self {
            FaultKind::AntennaOutage { .. } => "antenna_outage",
            FaultKind::BurstNoise { .. } => "burst_noise",
            FaultKind::SnrCollapse { .. } => "snr_collapse",
            FaultKind::SelectLoss { .. } => "select_loss",
            FaultKind::QueryRepLoss { .. } => "query_rep_loss",
            FaultKind::ReplyCorruption { .. } => "reply_corruption",
            FaultKind::TagMute { .. } => "tag_mute",
            FaultKind::TagDetune { .. } => "tag_detune",
            FaultKind::ReaderRestart { .. } => "reader_restart",
        }
    }
}

/// One fault with its activation window. The JSON shape nests both
/// halves (`{"fault": {"kind": "select_loss", "prob": 0.1}, "window":
/// {"start": 0.0, "end": 4.0}}`); the TOML subset flattens them into one
/// `[[event]]` table (see [`crate::parse`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What goes wrong.
    #[serde(rename = "fault")]
    pub kind: FaultKind,
    /// When it is active.
    pub window: Window,
}

/// A complete, self-judging fault experiment: named events plus the
/// graceful-degradation envelope they must stay inside.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Human-readable plan name (shows up in reports).
    pub name: String,
    /// The degradation envelope the faulted run must satisfy.
    #[serde(default)]
    pub envelope: Envelope,
    /// The faults, in file order. Order carries no semantics beyond
    /// marker indices — windows may overlap arbitrarily.
    #[serde(default)]
    pub events: Vec<FaultEvent>,
}

/// A structural problem with a plan, reported with the offending event's
/// index (file order).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// Index into [`FaultPlan::events`], or `None` for plan-level issues.
    pub event: Option<usize>,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.event {
            Some(i) => write!(f, "event #{i}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for PlanError {}

fn check_prob(event: usize, name: &str, p: f64) -> Result<(), PlanError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(PlanError {
            event: Some(event),
            message: format!("{name} must be in [0, 1], got {p}"),
        });
    }
    Ok(())
}

fn check_nonneg(event: usize, name: &str, v: f64) -> Result<(), PlanError> {
    if !v.is_finite() || v < 0.0 {
        return Err(PlanError {
            event: Some(event),
            message: format!("{name} must be finite and >= 0, got {v}"),
        });
    }
    Ok(())
}

impl FaultPlan {
    /// An empty plan (no faults, default envelope) — the identity
    /// element: injecting it changes nothing.
    pub fn empty(name: &str) -> Self {
        FaultPlan {
            name: name.to_string(),
            envelope: Envelope::default(),
            events: Vec::new(),
        }
    }

    /// The end of the last non-empty window, i.e. the instant from which
    /// the recovery budget is measured. `None` when the plan injects
    /// nothing.
    pub fn last_window_end(&self) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| !e.window.is_empty())
            .map(|e| e.window.end)
            .reduce(f64::max)
    }

    /// Structural validation: finite windows, probabilities in `[0, 1]`,
    /// non-negative noise magnitudes, a sane envelope. Zero-length and
    /// overlapping windows are *valid* (the former are no-ops, the
    /// latter compose).
    pub fn validate(&self) -> Result<(), PlanError> {
        self.envelope.validate().map_err(|message| PlanError {
            event: None,
            message,
        })?;
        for (i, ev) in self.events.iter().enumerate() {
            let w = ev.window;
            if !w.start.is_finite() || !w.end.is_finite() || w.start < 0.0 {
                return Err(PlanError {
                    event: Some(i),
                    message: format!(
                        "window must be finite with start >= 0, got [{}, {})",
                        w.start, w.end
                    ),
                });
            }
            if w.end < w.start {
                return Err(PlanError {
                    event: Some(i),
                    message: format!("window end {} precedes start {}", w.end, w.start),
                });
            }
            match &ev.kind {
                FaultKind::AntennaOutage { .. } | FaultKind::ReaderRestart { .. } => {}
                FaultKind::BurstNoise {
                    phase_sigma,
                    rss_sigma_db,
                } => {
                    check_nonneg(i, "phase_sigma", *phase_sigma)?;
                    check_nonneg(i, "rss_sigma_db", *rss_sigma_db)?;
                }
                FaultKind::SnrCollapse {
                    rss_drop_db,
                    decode_fail_prob,
                } => {
                    check_nonneg(i, "rss_drop_db", *rss_drop_db)?;
                    check_prob(i, "decode_fail_prob", *decode_fail_prob)?;
                }
                FaultKind::SelectLoss { prob } => check_prob(i, "prob", *prob)?,
                FaultKind::QueryRepLoss { prob } => check_prob(i, "prob", *prob)?,
                FaultKind::ReplyCorruption { prob } => check_prob(i, "prob", *prob)?,
                FaultKind::TagMute { tags } | FaultKind::TagDetune { tags } => {
                    if tags.is_empty() {
                        return Err(PlanError {
                            event: Some(i),
                            message: "tag mute/detune needs at least one tag index".into(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // Window arithmetic carries literals through untouched.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn event(kind: FaultKind, start: f64, end: f64) -> FaultEvent {
        FaultEvent {
            kind,
            window: Window::new(start, end),
        }
    }

    #[test]
    fn window_is_half_open() {
        let w = Window::new(1.0, 2.0);
        assert!(w.contains(1.0));
        assert!(w.contains(1.999));
        assert!(!w.contains(2.0));
        assert!(!w.contains(0.999));
        assert!(!w.is_empty());
        let z = Window::new(3.0, 3.0);
        assert!(z.is_empty());
        assert!(!z.contains(3.0));
        assert_eq!(z.duration(), 0.0);
    }

    #[test]
    fn validation_accepts_overlap_and_zero_length() {
        let mut plan = FaultPlan::empty("ok");
        plan.events = vec![
            event(FaultKind::AntennaOutage { antennas: vec![] }, 0.0, 5.0),
            event(
                FaultKind::BurstNoise {
                    phase_sigma: 0.5,
                    rss_sigma_db: 2.0,
                },
                2.0,
                8.0,
            ),
            event(FaultKind::SelectLoss { prob: 0.3 }, 4.0, 4.0),
        ];
        plan.validate().unwrap();
        assert_eq!(plan.last_window_end(), Some(8.0));
    }

    #[test]
    fn validation_rejects_bad_probabilities_and_windows() {
        let mut plan = FaultPlan::empty("bad");
        plan.events = vec![event(FaultKind::SelectLoss { prob: 1.5 }, 0.0, 1.0)];
        assert!(plan.validate().is_err());

        plan.events = vec![event(FaultKind::QueryRepLoss { prob: 0.5 }, 2.0, 1.0)];
        let err = plan.validate().unwrap_err();
        assert_eq!(err.event, Some(0));

        plan.events = vec![event(
            FaultKind::ReplyCorruption { prob: 0.5 },
            f64::NAN,
            1.0,
        )];
        assert!(plan.validate().is_err());

        plan.events = vec![event(FaultKind::TagMute { tags: vec![] }, 0.0, 1.0)];
        assert!(plan.validate().is_err());
    }

    #[test]
    fn empty_plan_has_no_window_end() {
        let plan = FaultPlan::empty("noop");
        plan.validate().unwrap();
        assert_eq!(plan.last_window_end(), None);

        // Zero-length windows do not extend the recovery horizon either.
        let mut plan = FaultPlan::empty("zl");
        plan.events = vec![event(FaultKind::SelectLoss { prob: 0.1 }, 5.0, 5.0)];
        assert_eq!(plan.last_window_end(), None);
    }

    #[test]
    fn slugs_are_stable() {
        assert_eq!(
            FaultKind::AntennaOutage { antennas: vec![1] }.slug(),
            "antenna_outage"
        );
        assert_eq!(
            FaultKind::ReaderRestart {
                preserve_flags: true
            }
            .slug(),
            "reader_restart"
        );
    }

    #[test]
    fn plans_round_trip_through_json() {
        let mut plan = FaultPlan::empty("rt");
        plan.events = vec![
            event(FaultKind::AntennaOutage { antennas: vec![2] }, 1.0, 2.0),
            event(
                FaultKind::SnrCollapse {
                    rss_drop_db: 10.0,
                    decode_fail_prob: 0.25,
                },
                3.0,
                4.5,
            ),
            event(FaultKind::TagDetune { tags: vec![0, 3] }, 2.0, 9.0),
            event(
                FaultKind::ReaderRestart {
                    preserve_flags: true,
                },
                5.0,
                6.0,
            ),
        ];
        let text = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(back, plan);
    }
}
